"""Event-based energy model (AccelWattch substitute)."""

from .model import EnergyModel, DEFAULT_ENERGY_MODEL

__all__ = ["EnergyModel", "DEFAULT_ENERGY_MODEL"]
