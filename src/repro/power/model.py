"""Event-based energy model (the AccelWattch substitute).

Energy = sum(event_count x unit_energy) + static_power x cycles.  The unit
energies are order-of-magnitude values in arbitrary units (pJ-like): only
*relative* energy across techniques on the same workload matters, exactly
as the paper reports (Fig 15 is normalized to the V100 baseline).

Two effects drive CARS's energy win in the paper and are both captured
here: fewer L1/L2/DRAM events (spills/fills gone) and a shorter runtime
(less static leakage).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.gpu_config import GPUConfig
from ..metrics.counters import SimStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (arbitrary units) and static power (units/cycle)."""

    alu_op: float = 1.0
    regfile_access: float = 0.5  # per µop operand set
    stack_rename: float = 0.2  # CARS RSP/RFP update
    # Per-32B-sector energies.  A warp-level access is 1-32 sectors, so the
    # effective per-access energy is several x the ALU energy; constants are
    # calibrated so the suite's energy-efficiency gain lands slightly above
    # its performance gain, as AccelWattch reports for CARS (Fig 15).
    l1_sector: float = 1.5
    l2_sector: float = 4.5
    dram_sector: float = 15.0
    smem_op: float = 2.0
    static_per_sm_cycle: float = 8.0

    def energy(self, stats: SimStats, config: GPUConfig) -> float:
        """Total energy for one run."""
        mix = stats.issued_by_kind
        exec_ops = (
            mix.get("ALU", 0)
            + mix.get("FPU", 0)
            + mix.get("SFU", 0)
            + mix.get("BRANCH", 0)
            + mix.get("CALL", 0)
            + mix.get("RET", 0)
        )
        smem_ops = mix.get("SMEM", 0)
        stack_ops = mix.get("STACK", 0)
        l1_sectors = sum(stats.l1_load_sectors.values()) + sum(
            stats.l1_store_sectors.values()
        )
        dynamic = (
            exec_ops * (self.alu_op + self.regfile_access)
            + smem_ops * self.smem_op
            + stack_ops * (self.stack_rename + self.regfile_access)
            + l1_sectors * self.l1_sector
            + stats.l2_accesses * self.l2_sector
            + stats.dram_accesses * self.dram_sector
        )
        static = self.static_per_sm_cycle * config.num_sms * stats.cycles
        return dynamic + static

    def efficiency(self, stats: SimStats, config: GPUConfig) -> float:
        """Work per unit energy (higher is better), using warp instructions
        as the work metric so techniques with different µop expansions stay
        comparable."""
        total = self.energy(stats, config)
        return stats.warp_instructions / total if total > 0 else 0.0


DEFAULT_ENERGY_MODEL = EnergyModel()
