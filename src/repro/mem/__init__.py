"""Timing-model memory hierarchy (sectored L1D per SM, shared L2, DRAM)."""

from .cache import SectorCache
from .subsystem import MemorySubsystem, MemRequest

__all__ = ["SectorCache", "MemorySubsystem", "MemRequest"]
