"""Cycle-level memory hierarchy: per-SM L1D -> shared L2 -> DRAM.

Models the two interference channels the paper identifies:

* **bandwidth** — each L1D services at most ``ports`` sector lookups per
  cycle; spill/fill sectors compete with global sectors for those slots;
* **capacity** — sector-granular LRU caches with finite MSHRs; spill
  working sets evict global data.

The ALL-HIT study (Fig 10) is reproduced by ``l1_force_hit``: spill/fill
sectors always hit (no insertions, no L2 traffic) while still consuming an
L1 port slot and paying the hit latency, exactly as the paper specifies.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config.gpu_config import GPUConfig
from ..metrics.counters import (
    SimStats,
    STREAM_GLOBAL as STREAM_GLOBAL_TAG,
    STREAM_SPILL,
    TIMELINE_BUCKET,
)
from ..resilience.faults import active_session
from .cache import SectorCache


class MemRequest:
    """One warp-level memory instruction in flight.

    ``remaining`` counts unserviced sectors; the owner is notified through
    the subsystem's completion callback once it reaches zero (loads only —
    stores complete at issue).
    """

    __slots__ = ("warp", "dst", "remaining", "is_store", "stream", "sm_id",
                 "blocking")

    def __init__(self, warp, dst, remaining, is_store, stream, sm_id,
                 blocking: bool = False) -> None:
        self.warp = warp
        self.dst = dst
        self.remaining = remaining
        self.is_store = is_store
        self.stream = stream
        self.sm_id = sm_id
        # True for CARS trap / context-switch fills: the owning warp's
        # next_issue is parked at NEVER until *this* request completes.
        self.blocking = blocking


_EV_HIT = 0  # payload: MemRequest
_EV_FILL = 1  # payload: (sm_id, sector)


class MemorySubsystem:
    """Shared memory hierarchy for all SMs of the simulated GPU."""

    __slots__ = (
        "config",
        "stats",
        "on_complete",
        "l1",
        "l1_queues",
        "l1_mshrs",
        "l2",
        "l2_queue",
        "l2_mshr",
        "dram_queue",
        "_events",
        "_hit_events",
        "_seq",
        "_inflight_hits",
        "_faults",
    )

    def __init__(
        self,
        config: GPUConfig,
        stats: SimStats,
        on_complete: Callable[[MemRequest, int], None],
    ) -> None:
        self.config = config
        self.stats = stats
        self.on_complete = on_complete
        n = config.num_sms
        self.l1 = [SectorCache(config.l1) for _ in range(n)]
        self.l1_queues: List[Deque[Tuple[int, MemRequest]]] = [deque() for _ in range(n)]
        self.l1_mshrs: List[Dict[int, List[MemRequest]]] = [dict() for _ in range(n)]
        self.l2 = SectorCache(config.l2)
        # (sector, sm_id, is_store); sm_id is -1 for stores.
        self.l2_queue: Deque[Tuple[int, int, bool]] = deque()
        self.l2_mshr: Dict[int, List[int]] = {}
        self.dram_queue: Deque[int] = deque()
        self._events: List[Tuple[int, int, int, object]] = []
        # L1 hit completions, kept off the heap: every hit completes at
        # cycle + hit_latency, so this queue is naturally time-ordered,
        # and a hit completion only notifies its request's warp (no cache
        # state), so its drain order relative to fills is immaterial.
        self._hit_events: Deque[Tuple[int, MemRequest]] = deque()
        self._seq = itertools.count()
        # In-flight hit-latency events, maintained at schedule/drain so
        # stall_class never scans the event heap.
        self._inflight_hits = 0
        # Fault-injection session snapshotted at construction (usually
        # None); see repro.resilience.faults for the activation contract.
        self._faults = active_session()

    # ------------------------------------------------------------------
    # SM-facing API
    # ------------------------------------------------------------------

    def access(self, sm_id: int, sectors: Tuple[int, ...], request: MemRequest) -> None:
        """Enqueue a memory instruction's sectors at the SM's L1D."""
        queue = self.l1_queues[sm_id]
        for sector in sectors:
            queue.append((sector, request))

    def busy(self) -> bool:
        """True while any queue or in-flight event remains."""
        if self._events or self._hit_events or self.l2_queue or self.dram_queue:
            return True
        if any(self.l1_queues) or any(self.l1_mshrs):
            return True
        return bool(self.l2_mshr)

    def next_event_cycle(self) -> Optional[int]:
        """Earliest scheduled completion, or None when nothing is in flight."""
        events = self._events
        hits = self._hit_events
        if events:
            if hits and hits[0][0] < events[0][0]:
                return hits[0][0]
            return events[0][0]
        return hits[0][0] if hits else None

    def has_queued_work(self) -> bool:
        """True when a queue can make progress on the very next cycle."""
        return bool(self.l2_queue or self.dram_queue or any(self.l1_queues))

    def stall_class(self) -> Optional[str]:
        """Which memory stage explains a no-issue cycle, if any.

        Returns ``"mshr"`` (L1D backlog behind a full MSHR file), ``"l1"``
        (sectors queued for L1D ports or in hit-latency service), or
        ``"lower"`` (work in the L2/DRAM path); ``None`` when the whole
        hierarchy is drained.  The in-flight hit/fill distinction reads the
        ``_inflight_hits`` census kept by ``_schedule``/``_drain_events``.
        """
        cfg = self.config
        queue_backlog = False
        for sm_id, queue in enumerate(self.l1_queues):
            if not queue:
                continue
            if len(self.l1_mshrs[sm_id]) >= cfg.l1.mshrs:
                return "mshr"
            queue_backlog = True
        if queue_backlog or self._inflight_hits:
            return "l1"
        if (
            self.l2_queue
            or self.l2_mshr
            or self.dram_queue
            or self._events  # all remaining events are fills
            or any(self.l1_mshrs)
        ):
            return "lower"
        return None

    def census(self) -> Dict[str, object]:
        """Occupancy snapshot of every queue/MSHR, for diagnostic dumps."""
        return {
            "l1_queues": [len(q) for q in self.l1_queues],
            "l1_mshrs": [
                {
                    "sectors": len(mshrs),
                    "waiters": sum(len(w) for w in mshrs.values()),
                }
                for mshrs in self.l1_mshrs
            ],
            "l2_queue": len(self.l2_queue),
            "l2_mshr_sectors": len(self.l2_mshr),
            "dram_queue": len(self.dram_queue),
            "inflight_fills": len(self._events),
            "inflight_hits": self._inflight_hits,
        }

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = {name: getattr(self, name) for name in MemorySubsystem.__slots__}
        # itertools.count isn't picklable; the sequence number is only a
        # heap tiebreaker, so restarting it from any value >= the largest
        # outstanding one preserves relative event order.  Peeking would
        # consume a value, shifting all post-checkpoint tiebreakers by the
        # same amount — harmless, and simpler than tracking a high-water
        # mark.
        state["_seq"] = next(self._seq)
        # The completion callback is the GPU's bound method; GPU.__setstate__
        # rewires it after the whole graph is restored.
        state["on_complete"] = None
        state["_faults"] = None
        return state

    def __setstate__(self, state):
        seq_start = state.pop("_seq")
        for name, value in state.items():
            setattr(self, name, value)
        self._seq = itertools.count(seq_start)

    # ------------------------------------------------------------------
    # Per-cycle processing
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        # Stage-level early-outs: the event-driven main loop calls tick on
        # every live cycle, most of which touch only a subset of stages.
        hits = self._hit_events
        if hits and hits[0][0] <= cycle:
            self._drain_hits(cycle)
        events = self._events
        if events and events[0][0] <= cycle:
            self._drain_events(cycle)
        if any(self.l1_queues):
            self._tick_l1(cycle)
        if self.l2_queue:
            self._tick_l2(cycle)
        if self.dram_queue:
            self._tick_dram(cycle)

    def _schedule(self, t: int, kind: int, payload: object) -> None:
        if kind == _EV_HIT:
            self._inflight_hits += 1
            self._hit_events.append((t, payload))
            return
        heapq.heappush(self._events, (t, next(self._seq), kind, payload))

    def _drain_hits(self, cycle: int) -> None:
        hits = self._hit_events
        on_complete = self.on_complete
        while hits and hits[0][0] <= cycle:
            t, request = hits.popleft()
            self._inflight_hits -= 1
            request.remaining -= 1
            if request.remaining == 0 and not request.is_store:
                on_complete(request, t)

    def _drain_events(self, cycle: int) -> None:
        events = self._events
        faults = self._faults
        while events and events[0][0] <= cycle:
            t, _, kind, payload = heapq.heappop(events)
            if faults is not None:
                action = faults.on_fill(t, payload)
                if action is not None:
                    if action < 0:
                        continue  # dropped: the fill silently vanishes
                    # Delayed: reschedule strictly in the future so this
                    # drain pass cannot immediately re-pop it.
                    retime = t + action
                    if retime <= cycle:
                        retime = cycle + 1
                    heapq.heappush(
                        events, (retime, next(self._seq), kind, payload)
                    )
                    continue
            sm_id, sector = payload
            self._fill_l1(sm_id, sector, t)

    def _tick_l1(self, cycle: int) -> None:
        """Serve up to ``ports`` queued sectors on every SM's L1.

        One call per cycle for all SMs, so the cycle-invariant locals are
        hoisted once.  Both ``stats.record_l1_access`` and
        ``SectorCache.lookup`` are inlined here (keep in lockstep with
        :mod:`repro.mem.cache`): together they run once per serviced
        sector, the hottest rate in the model.
        """
        cfg = self.config
        l1_cfg = cfg.l1
        force_hit = cfg.l1_force_hit
        ports = l1_cfg.ports
        mshr_cap = l1_cfg.mshrs
        faults = self._faults
        if faults is not None:
            mshr_cap = faults.mshr_cap(cycle, mshr_cap)
        hit_events = self._hit_events
        hit_at = cycle + l1_cfg.hit_latency
        l2_queue = self.l2_queue
        l1_caches = self.l1
        l1_mshrs = self.l1_mshrs
        stats = self.stats
        acc = stats.l1_accesses
        hit_ctr = stats.l1_hits
        miss_ctr = stats.l1_misses
        st_ctr = stats.l1_store_sectors
        ld_ctr = stats.l1_load_sectors
        timeline = stats.timeline
        bucket = cycle // TIMELINE_BUCKET
        # Created lazily on the first recorded access (the MSHR-full replay
        # path records nothing, and must not leave an empty bucket behind).
        entry = timeline.get(bucket)
        for sm_id, queue in enumerate(self.l1_queues):
            if not queue:
                continue
            cache = l1_caches[sm_id]
            mshrs = l1_mshrs[sm_id]
            sets = cache._sets
            num_sets = cache._num_sets
            assoc = cache._assoc
            # Counted loop: the queue only shrinks inside (the MSHR-full
            # path re-queues and breaks), so min(len, ports) pops is exact.
            n = len(queue)
            if n > ports:
                n = ports
            for _ in range(n):
                sector, request = queue.popleft()
                stream = request.stream
                if force_hit and stream == STREAM_SPILL:
                    # ALL-HIT: spill/fill sectors always hit; they consume
                    # the port and the hit latency but never traverse the
                    # cache.
                    acc[stream] += 1
                    hit_ctr[stream] += 1
                    if entry is None:
                        entry = timeline[bucket] = [0, 0]
                    entry[1] += 1
                    if request.is_store:
                        st_ctr[stream] += 1
                    else:
                        ld_ctr[stream] += 1
                        self._inflight_hits += 1
                        hit_events.append((hit_at, request))
                    continue
                if request.is_store:
                    local = stream != STREAM_GLOBAL_TAG
                    # cache.lookup(sector, set_dirty=local), inlined.
                    cache.lookups += 1
                    entries = sets[((sector * 0x9E3779B1) >> 12) % num_sets]
                    dirty = entries.get(sector)
                    hit = dirty is not None
                    if hit:
                        cache.hits += 1
                        del entries[sector]
                        entries[sector] = 1 if local else dirty
                    acc[stream] += 1
                    st_ctr[stream] += 1
                    if hit:
                        hit_ctr[stream] += 1
                    else:
                        miss_ctr[stream] += 1
                    if entry is None:
                        entry = timeline[bucket] = [0, 0]
                    if local:
                        entry[1] += 1
                        # Thread-private (spill/local) data is cached
                        # write-back: it occupies L1 capacity (the paper's
                        # capacity-interference channel) and only reaches
                        # the L2 as eviction write-backs.
                        if not hit:
                            # cache.insert(sector, dirty=True), inlined:
                            # the lookup above already missed in this set.
                            if len(entries) >= assoc:
                                victim_sector = next(iter(entries))
                                if entries.pop(victim_sector):
                                    cache.dirty_evictions += 1
                                    l2_queue.append((victim_sector, -1, True))
                                cache.evictions += 1
                            entries[sector] = 1
                            cache.insertions += 1
                    else:
                        entry[0] += 1
                        # Global stores: write-through with allocate.
                        # cache.insert(sector), inlined; on a hit the
                        # insert is a pure LRU touch, which the inlined
                        # lookup above already performed.
                        if not hit:
                            if len(entries) >= assoc:
                                victim_sector = next(iter(entries))
                                if entries.pop(victim_sector):
                                    cache.dirty_evictions += 1
                                    l2_queue.append((victim_sector, -1, True))
                                cache.evictions += 1
                            entries[sector] = 0
                            cache.insertions += 1
                        l2_queue.append((sector, -1, True))
                    continue
                # cache.lookup(sector), inlined.
                cache.lookups += 1
                entries = sets[((sector * 0x9E3779B1) >> 12) % num_sets]
                dirty = entries.get(sector)
                if dirty is not None:
                    cache.hits += 1
                    del entries[sector]
                    entries[sector] = dirty
                    acc[stream] += 1
                    ld_ctr[stream] += 1
                    hit_ctr[stream] += 1
                    if entry is None:
                        entry = timeline[bucket] = [0, 0]
                    if stream == STREAM_GLOBAL_TAG:
                        entry[0] += 1
                    else:
                        entry[1] += 1
                    self._inflight_hits += 1
                    hit_events.append((hit_at, request))
                    continue
                waiters = mshrs.get(sector)
                if waiters is None and len(mshrs) >= mshr_cap:
                    # No MSHR free: replay the access next cycle (not
                    # recorded — it is the same access being retried, not a
                    # new one; the cache lookup above still counts, as it
                    # always has).
                    queue.appendleft((sector, request))
                    break
                acc[stream] += 1
                ld_ctr[stream] += 1
                miss_ctr[stream] += 1
                if entry is None:
                    entry = timeline[bucket] = [0, 0]
                if stream == STREAM_GLOBAL_TAG:
                    entry[0] += 1
                else:
                    entry[1] += 1
                if waiters is not None:
                    waiters.append(request)  # merged miss
                    continue
                mshrs[sector] = [request]
                l2_queue.append((sector, sm_id, False))

    def _tick_l2(self, cycle: int) -> None:
        # Same hoisting treatment as _tick_l1: locals for everything the
        # port loop touches.  Nothing in the loop body grows l2_queue
        # (write-back victims enter it only from L1 fills), so the
        # counted loop serves exactly what the cycle started with.
        cfg = self.config
        queue = self.l2_queue
        stats = self.stats
        l2 = self.l2
        l2_sets = l2._sets
        l2_num_sets = l2._num_sets
        l2_assoc = l2._assoc
        mshr = self.l2_mshr
        mshr_cap = cfg.l2.mshrs
        events = self._events
        seq = self._seq
        push = heapq.heappush
        fill_at = cycle + cfg.l2.hit_latency
        n = len(queue)
        if n > cfg.l2.ports:
            n = cfg.l2.ports
        for _ in range(n):
            sector, sm_id, is_store = queue.popleft()
            entries = l2_sets[((sector * 0x9E3779B1) >> 12) % l2_num_sets]
            if is_store:
                stats.l2_accesses += 1
                # l2.insert(sector), inlined (write-back arrival).
                prev = entries.pop(sector, None)
                if prev is not None:
                    entries[sector] = prev
                else:
                    if len(entries) >= l2_assoc:
                        victim_sector = next(iter(entries))
                        if entries.pop(victim_sector):
                            l2.dirty_evictions += 1
                        l2.evictions += 1
                    entries[sector] = 0
                    l2.insertions += 1
                stats.l2_hits += 1
                continue
            # l2.lookup(sector), inlined.
            l2.lookups += 1
            dirty = entries.get(sector)
            if dirty is not None:
                l2.hits += 1
                del entries[sector]
                entries[sector] = dirty
                stats.l2_accesses += 1
                stats.l2_hits += 1
                # _schedule(fill_at, _EV_FILL, ...), inlined.
                push(events, (fill_at, next(seq), _EV_FILL, (sm_id, sector)))
                continue
            waiters = mshr.get(sector)
            if waiters is not None:
                stats.l2_accesses += 1
                stats.l2_misses += 1
                waiters.append(sm_id)
                continue
            if len(mshr) >= mshr_cap:
                # Replay next cycle; not a new access.
                queue.appendleft((sector, sm_id, False))
                return
            stats.l2_accesses += 1
            stats.l2_misses += 1
            mshr[sector] = [sm_id]
            self.dram_queue.append(sector)

    def _tick_dram(self, cycle: int) -> None:
        cfg = self.config
        queue = self.dram_queue
        stats = self.stats
        events = self._events
        seq = self._seq
        push = heapq.heappush
        fill_at = cycle + cfg.dram_latency
        n = len(queue)
        if n > cfg.dram_ports:
            n = cfg.dram_ports
        for _ in range(n):
            sector = queue.popleft()
            stats.dram_accesses += 1
            push(events, (fill_at, next(seq), _EV_FILL, (-2, sector)))

    # ------------------------------------------------------------------
    # Fill paths
    # ------------------------------------------------------------------

    def _fill_l1(self, sm_id: int, sector: int, cycle: int) -> None:
        if sm_id == -2:
            # DRAM return: fill the L2 and fan out to waiting SMs.
            self.l2.insert(sector)
            for waiter_sm in self.l2_mshr.pop(sector, ()):
                self._fill_l1(waiter_sm, sector, cycle)
            return
        # Fill the L1, pushing any dirty victim down as a write-back.
        # SectorCache.insert, inlined (see cache.py): one run per fill,
        # second only to the L1 port loop in heat.
        cache = self.l1[sm_id]
        entries = cache._sets[((sector * 0x9E3779B1) >> 12) % cache._num_sets]
        prev = entries.pop(sector, None)
        if prev is not None:
            entries[sector] = prev  # already resident: pure LRU touch
        else:
            if len(entries) >= cache._assoc:
                victim_sector = next(iter(entries))
                if entries.pop(victim_sector):
                    cache.dirty_evictions += 1
                    self.l2_queue.append((victim_sector, -1, True))
                cache.evictions += 1
            entries[sector] = 0
            cache.insertions += 1
        on_complete = self.on_complete
        for request in self.l1_mshrs[sm_id].pop(sector, ()):
            request.remaining -= 1
            if request.remaining == 0 and not request.is_store:
                on_complete(request, cycle)
