"""Cycle-level memory hierarchy: per-SM L1D -> shared L2 -> DRAM.

Models the two interference channels the paper identifies:

* **bandwidth** — each L1D services at most ``ports`` sector lookups per
  cycle; spill/fill sectors compete with global sectors for those slots;
* **capacity** — sector-granular LRU caches with finite MSHRs; spill
  working sets evict global data.

The ALL-HIT study (Fig 10) is reproduced by ``l1_force_hit``: spill/fill
sectors always hit (no insertions, no L2 traffic) while still consuming an
L1 port slot and paying the hit latency, exactly as the paper specifies.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config.gpu_config import GPUConfig
from ..metrics.counters import SimStats, STREAM_GLOBAL as STREAM_GLOBAL_TAG, STREAM_SPILL
from .cache import SectorCache


class MemRequest:
    """One warp-level memory instruction in flight.

    ``remaining`` counts unserviced sectors; the owner is notified through
    the subsystem's completion callback once it reaches zero (loads only —
    stores complete at issue).
    """

    __slots__ = ("warp", "dst", "remaining", "is_store", "stream", "sm_id",
                 "blocking")

    def __init__(self, warp, dst, remaining, is_store, stream, sm_id,
                 blocking: bool = False) -> None:
        self.warp = warp
        self.dst = dst
        self.remaining = remaining
        self.is_store = is_store
        self.stream = stream
        self.sm_id = sm_id
        # True for CARS trap / context-switch fills: the owning warp's
        # next_issue is parked at NEVER until *this* request completes.
        self.blocking = blocking


_EV_HIT = 0  # payload: MemRequest
_EV_FILL = 1  # payload: (sm_id, sector)


class MemorySubsystem:
    """Shared memory hierarchy for all SMs of the simulated GPU."""

    def __init__(
        self,
        config: GPUConfig,
        stats: SimStats,
        on_complete: Callable[[MemRequest, int], None],
    ) -> None:
        self.config = config
        self.stats = stats
        self.on_complete = on_complete
        n = config.num_sms
        self.l1 = [SectorCache(config.l1) for _ in range(n)]
        self.l1_queues: List[Deque[Tuple[int, MemRequest]]] = [deque() for _ in range(n)]
        self.l1_mshrs: List[Dict[int, List[MemRequest]]] = [dict() for _ in range(n)]
        self.l2 = SectorCache(config.l2)
        # (sector, sm_id, is_store); sm_id is -1 for stores.
        self.l2_queue: Deque[Tuple[int, int, bool]] = deque()
        self.l2_mshr: Dict[int, List[int]] = {}
        self.dram_queue: Deque[int] = deque()
        self._events: List[Tuple[int, int, int, object]] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # SM-facing API
    # ------------------------------------------------------------------

    def access(self, sm_id: int, sectors: Tuple[int, ...], request: MemRequest) -> None:
        """Enqueue a memory instruction's sectors at the SM's L1D."""
        queue = self.l1_queues[sm_id]
        for sector in sectors:
            queue.append((sector, request))

    def busy(self) -> bool:
        """True while any queue or in-flight event remains."""
        if self._events or self.l2_queue or self.dram_queue:
            return True
        if any(self.l1_queues) or any(self.l1_mshrs):
            return True
        return bool(self.l2_mshr)

    def next_event_cycle(self) -> Optional[int]:
        """Earliest scheduled completion, or None when nothing is in flight."""
        return self._events[0][0] if self._events else None

    def has_queued_work(self) -> bool:
        """True when a queue can make progress on the very next cycle."""
        return bool(self.l2_queue or self.dram_queue or any(self.l1_queues))

    def stall_class(self) -> Optional[str]:
        """Which memory stage explains a no-issue cycle, if any.

        Returns ``"mshr"`` (L1D backlog behind a full MSHR file), ``"l1"``
        (sectors queued for L1D ports or in hit-latency service), or
        ``"lower"`` (work in the L2/DRAM path); ``None`` when the whole
        hierarchy is drained.  The in-flight hit/fill distinction scans
        the event heap *here* — idle stretches are rare next to memory
        events, so classification pays the cost lazily rather than taxing
        every ``_schedule``/``_drain_events`` on the hot path.
        """
        cfg = self.config
        queue_backlog = False
        for sm_id, queue in enumerate(self.l1_queues):
            if not queue:
                continue
            if len(self.l1_mshrs[sm_id]) >= cfg.l1.mshrs:
                return "mshr"
            queue_backlog = True
        events = self._events
        if queue_backlog or any(ev[2] == _EV_HIT for ev in events):
            return "l1"
        if (
            self.l2_queue
            or self.l2_mshr
            or self.dram_queue
            or events  # all remaining events are fills
            or any(self.l1_mshrs)
        ):
            return "lower"
        return None

    # ------------------------------------------------------------------
    # Per-cycle processing
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        self._drain_events(cycle)
        for sm_id in range(self.config.num_sms):
            self._tick_l1(sm_id, cycle)
        self._tick_l2(cycle)
        self._tick_dram(cycle)

    def _schedule(self, t: int, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (t, next(self._seq), kind, payload))

    def _drain_events(self, cycle: int) -> None:
        events = self._events
        while events and events[0][0] <= cycle:
            t, _, kind, payload = heapq.heappop(events)
            if kind == _EV_HIT:
                self._complete_sector(payload, t)
            else:
                sm_id, sector = payload
                self._fill_l1(sm_id, sector, t)

    def _tick_l1(self, sm_id: int, cycle: int) -> None:
        queue = self.l1_queues[sm_id]
        cache = self.l1[sm_id]
        mshrs = self.l1_mshrs[sm_id]
        cfg = self.config
        for _ in range(cfg.l1.ports):
            if not queue:
                return
            sector, request = queue.popleft()
            if cfg.l1_force_hit and request.stream == STREAM_SPILL:
                # ALL-HIT: spill/fill sectors always hit; they consume the
                # port and the hit latency but never traverse the cache.
                self.stats.record_l1_access(request.stream, request.is_store, True, cycle)
                if not request.is_store:
                    self._schedule(cycle + cfg.l1.hit_latency, _EV_HIT, request)
                continue
            if request.is_store:
                local = request.stream != STREAM_GLOBAL_TAG
                hit = cache.lookup(sector, set_dirty=local)
                self.stats.record_l1_access(request.stream, True, hit, cycle)
                if local:
                    # Thread-private (spill/local) data is cached write-back:
                    # it occupies L1 capacity (the paper's capacity-
                    # interference channel) and only reaches the L2 as
                    # eviction write-backs.
                    if not hit:
                        self._insert_l1(sm_id, sector, dirty=True)
                else:
                    # Global stores: write-through with allocate.
                    self._insert_l1(sm_id, sector, dirty=False)
                    self.l2_queue.append((sector, -1, True))
                continue
            if cache.lookup(sector):
                self.stats.record_l1_access(request.stream, False, True, cycle)
                self._schedule(cycle + cfg.l1.hit_latency, _EV_HIT, request)
                continue
            waiters = mshrs.get(sector)
            if waiters is not None:
                self.stats.record_l1_access(request.stream, False, False, cycle)
                waiters.append(request)  # merged miss
                continue
            if len(mshrs) >= cfg.l1.mshrs:
                # No MSHR free: replay the access next cycle (not recorded —
                # it is the same access being retried, not a new one).
                queue.appendleft((sector, request))
                return
            self.stats.record_l1_access(request.stream, False, False, cycle)
            mshrs[sector] = [request]
            self.l2_queue.append((sector, sm_id, False))

    def _tick_l2(self, cycle: int) -> None:
        cfg = self.config
        for _ in range(cfg.l2.ports):
            if not self.l2_queue:
                return
            sector, sm_id, is_store = self.l2_queue.popleft()
            if is_store:
                self.stats.l2_accesses += 1
                self.l2.insert(sector)
                self.stats.l2_hits += 1
                continue
            if self.l2.lookup(sector):
                self.stats.l2_accesses += 1
                self.stats.l2_hits += 1
                self._schedule(
                    cycle + cfg.l2.hit_latency, _EV_FILL, (sm_id, sector)
                )
                continue
            waiters = self.l2_mshr.get(sector)
            if waiters is not None:
                self.stats.l2_accesses += 1
                self.stats.l2_misses += 1
                waiters.append(sm_id)
                continue
            if len(self.l2_mshr) >= cfg.l2.mshrs:
                # Replay next cycle; not a new access.
                self.l2_queue.appendleft((sector, sm_id, False))
                return
            self.stats.l2_accesses += 1
            self.stats.l2_misses += 1
            self.l2_mshr[sector] = [sm_id]
            self.dram_queue.append(sector)

    def _tick_dram(self, cycle: int) -> None:
        cfg = self.config
        for _ in range(cfg.dram_ports):
            if not self.dram_queue:
                return
            sector = self.dram_queue.popleft()
            self.stats.dram_accesses += 1
            self._schedule(cycle + cfg.dram_latency, _EV_FILL, (-2, sector))

    # ------------------------------------------------------------------
    # Fill paths
    # ------------------------------------------------------------------

    def _insert_l1(self, sm_id: int, sector: int, dirty: bool) -> None:
        """Fill the L1, pushing any dirty victim down as a write-back."""
        victim = self.l1[sm_id].insert(sector, dirty=dirty)
        if victim is not None and victim[1]:
            self.l2_queue.append((victim[0], -1, True))

    def _fill_l1(self, sm_id: int, sector: int, cycle: int) -> None:
        if sm_id == -2:
            # DRAM return: fill the L2 and fan out to waiting SMs.
            self.l2.insert(sector)
            for waiter_sm in self.l2_mshr.pop(sector, ()):
                self._fill_l1(waiter_sm, sector, cycle)
            return
        self._insert_l1(sm_id, sector, dirty=False)
        for request in self.l1_mshrs[sm_id].pop(sector, ()):
            self._complete_sector(request, cycle)

    def _complete_sector(self, request: MemRequest, cycle: int) -> None:
        request.remaining -= 1
        if request.remaining == 0 and not request.is_store:
            self.on_complete(request, cycle)
