"""Timing-model caches: sector-granular, set-associative, true-LRU.

A "sectored" simplification of the V100 hierarchy: the 32B sector is both
the allocation and transfer unit (tags are per sector rather than per 128B
line).  Capacity and bandwidth behaviour — the two interference channels
the paper analyses — are preserved; spatial-prefetch effects of full-line
fills are not (see DESIGN.md fidelity notes).

Sectors carry a dirty bit: local-memory (spill) stores are cached
write-back in the L1 (thread-private data needs no coherence), so their
lower-level traffic is eviction write-backs, not write-throughs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config.gpu_config import CacheConfig


class SectorCache:
    """Set-associative LRU cache over sector addresses, with dirty bits."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # sector -> dirty flag.  Dict insertion order *is* the LRU order
        # (oldest first): every LRU-updating touch re-inserts the key at
        # the end, so the victim is always the first key — O(1) true LRU
        # with no per-entry timestamps or victim scans.
        self._sets: List[Dict[int, int]] = [
            dict() for _ in range(config.num_sets)
        ]
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_for(self, sector: int) -> Dict[int, List[int]]:
        # Fibonacci set hashing (GPU caches hash set indices too) so
        # power-of-two-strided streams — e.g. per-warp local-memory
        # windows — don't alias into the same sets.
        hashed = (sector * 0x9E3779B1) >> 12
        return self._sets[hashed % len(self._sets)]

    def lookup(self, sector: int, update_lru: bool = True, set_dirty: bool = False) -> bool:
        """Probe for *sector*; refresh LRU order on hit.

        The L1 port loop in ``subsystem._tick_l1`` inlines this body —
        any change here must be mirrored there.
        """
        self.lookups += 1
        # _set_for, inlined: this and insert() are the memory model's
        # hottest instructions.
        entries = self._sets[((sector * 0x9E3779B1) >> 12) % self._num_sets]
        dirty = entries.get(sector)
        if dirty is None:
            return False
        self.hits += 1
        if update_lru:
            del entries[sector]
            entries[sector] = 1 if set_dirty else dirty
        elif set_dirty:
            entries[sector] = 1  # in-place: assignment keeps dict order
        return True

    def insert(self, sector: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Fill *sector*; returns the evicted ``(sector, was_dirty)`` if any."""
        entries = self._sets[((sector * 0x9E3779B1) >> 12) % self._num_sets]
        prev = entries.pop(sector, None)
        if prev is not None:
            entries[sector] = 1 if dirty else prev
            return None
        victim: Optional[Tuple[int, bool]] = None
        if len(entries) >= self._assoc:
            victim_sector = next(iter(entries))
            was_dirty = entries.pop(victim_sector)
            victim = (victim_sector, bool(was_dirty))
            self.evictions += 1
            if was_dirty:
                self.dirty_evictions += 1
        entries[sector] = 1 if dirty else 0
        self.insertions += 1
        return victim

    def contains(self, sector: int) -> bool:
        return sector in self._set_for(sector)

    def is_dirty(self, sector: int) -> bool:
        return bool(self._set_for(sector).get(sector))

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def stats_dict(self) -> Dict[str, int]:
        """Lifetime counters + occupancy, for the observability layer.

        The property tests hold ``lookups == hits + (misses implied)`` and
        ``insertions - evictions == occupancy`` against this snapshot.
        """
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.lookups - self.hits,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "occupancy": self.occupancy,
        }
