"""Timing-model caches: sector-granular, set-associative, true-LRU.

A "sectored" simplification of the V100 hierarchy: the 32B sector is both
the allocation and transfer unit (tags are per sector rather than per 128B
line).  Capacity and bandwidth behaviour — the two interference channels
the paper analyses — are preserved; spatial-prefetch effects of full-line
fills are not (see DESIGN.md fidelity notes).

Sectors carry a dirty bit: local-memory (spill) stores are cached
write-back in the L1 (thread-private data needs no coherence), so their
lower-level traffic is eviction write-backs, not write-throughs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config.gpu_config import CacheConfig


class SectorCache:
    """Set-associative LRU cache over sector addresses, with dirty bits."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # sector -> [lru_tick, dirty]
        self._sets: List[Dict[int, List[int]]] = [
            dict() for _ in range(config.num_sets)
        ]
        self._tick = 0
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_for(self, sector: int) -> Dict[int, List[int]]:
        # Fibonacci set hashing (GPU caches hash set indices too) so
        # power-of-two-strided streams — e.g. per-warp local-memory
        # windows — don't alias into the same sets.
        hashed = (sector * 0x9E3779B1) >> 12
        return self._sets[hashed % len(self._sets)]

    def lookup(self, sector: int, update_lru: bool = True, set_dirty: bool = False) -> bool:
        """Probe for *sector*; refresh LRU order on hit."""
        self.lookups += 1
        self._tick += 1
        entries = self._set_for(sector)
        entry = entries.get(sector)
        if entry is not None:
            self.hits += 1
            if update_lru:
                entry[0] = self._tick
            if set_dirty:
                entry[1] = 1
            return True
        return False

    def insert(self, sector: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Fill *sector*; returns the evicted ``(sector, was_dirty)`` if any."""
        self._tick += 1
        entries = self._set_for(sector)
        entry = entries.get(sector)
        if entry is not None:
            entry[0] = self._tick
            if dirty:
                entry[1] = 1
            return None
        victim: Optional[Tuple[int, bool]] = None
        if len(entries) >= self.config.assoc:
            victim_sector = min(entries, key=lambda s: entries[s][0])
            victim = (victim_sector, bool(entries[victim_sector][1]))
            del entries[victim_sector]
            self.evictions += 1
            if victim[1]:
                self.dirty_evictions += 1
        entries[sector] = [self._tick, 1 if dirty else 0]
        self.insertions += 1
        return victim

    def contains(self, sector: int) -> bool:
        return sector in self._set_for(sector)

    def is_dirty(self, sector: int) -> bool:
        entry = self._set_for(sector).get(sector)
        return bool(entry and entry[1])

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def stats_dict(self) -> Dict[str, int]:
        """Lifetime counters + occupancy, for the observability layer.

        The property tests hold ``lookups == hits + (misses implied)`` and
        ``insertions - evictions == occupancy`` against this snapshot.
        """
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.lookups - self.hits,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "occupancy": self.occupancy,
        }
