"""Launch-time register-stack allocation (Section III-B).

At kernel launch the other occupancy limiters (shared memory, block slots,
warp slots) are known, so CARS can compute the register space guaranteed to
be available per warp.  If that space already covers High-watermark, every
warp simply gets it ("there is register space to spare").  Otherwise the
dynamic selection mechanism (:mod:`repro.cars.policy`) walks the allocation
ladder between Low- and High-watermark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..callgraph.analysis import KernelStackAnalysis
from ..config.gpu_config import GPUConfig


@dataclass(frozen=True)
class AllocationPlan:
    """The launch-time decision for one kernel.

    Attributes:
        levels: regs/warp ladder (Low ... High); a single entry means the
            decision is static.
        static_level: index into ``levels`` when no dynamic selection is
            needed (call-free kernel, or space to spare); None when the
            dynamic state machine must choose.
        guaranteed_regs_per_warp: register space per warp implied by the
            *other* occupancy limits.
    """

    levels: List[int]
    static_level: Optional[int]
    guaranteed_regs_per_warp: int

    @property
    def dynamic(self) -> bool:
        return self.static_level is None


def _warps_limit_without_registers(
    config: GPUConfig, warps_per_block: int, shared_mem_bytes: int
) -> int:
    """Max concurrent warps/SM considering every limiter except registers."""
    blocks_by_slots = config.max_blocks_per_sm
    blocks_by_warps = config.max_warps_per_sm // warps_per_block
    if shared_mem_bytes > 0:
        blocks_by_smem = config.shared_mem_per_sm // shared_mem_bytes
    else:
        blocks_by_smem = blocks_by_slots
    blocks = max(1, min(blocks_by_slots, blocks_by_warps, blocks_by_smem))
    return blocks * warps_per_block


def plan_allocation(
    analysis: KernelStackAnalysis,
    config: GPUConfig,
    warps_per_block: int,
    shared_mem_bytes: int,
) -> AllocationPlan:
    """Make the launch-time allocation decision for one kernel."""
    warps = _warps_limit_without_registers(config, warps_per_block, shared_mem_bytes)
    guaranteed = config.registers_per_sm // warps

    if not analysis.has_calls:
        # Function-free kernels are untouched: base frame only.
        return AllocationPlan(
            levels=[analysis.kernel_fru],
            static_level=0,
            guaranteed_regs_per_warp=guaranteed,
        )

    levels = analysis.allocation_levels()
    if guaranteed >= analysis.high_watermark:
        # Space to spare: every warp gets the large allocation.
        return AllocationPlan(
            levels=[max(guaranteed, analysis.high_watermark)],
            static_level=0,
            guaranteed_regs_per_warp=guaranteed,
        )
    return AllocationPlan(
        levels=levels,
        static_level=None,
        guaranteed_regs_per_warp=guaranteed,
    )
