"""CARS: Concurrency-Aware Register Stacks — the paper's contribution."""

from .register_stack import (
    Frame,
    RegisterRenamer,
    RegisterStackError,
    WarpRegisterStack,
)
from .allocation import AllocationPlan, plan_allocation
from .policy import DynamicReservationPolicy, PolicyMemory

__all__ = [
    "Frame",
    "RegisterRenamer",
    "RegisterStackError",
    "WarpRegisterStack",
    "AllocationPlan",
    "plan_allocation",
    "DynamicReservationPolicy",
    "PolicyMemory",
]
