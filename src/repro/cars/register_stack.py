"""Per-warp register stacks: RFP/RSP renaming and circular frame residency.

Two cooperating models live here:

* :class:`RegisterRenamer` — the paper's base+offset renaming (Section
  III-A, Fig 3b): callee-saved architectural registers R16..R16+k are
  redirected to ``RFP + (r - 16)`` inside the warp's stack region.  The
  timing model doesn't need physical indices, but the renamer is the core
  mechanism of the paper, so it is implemented and property-tested in full.

* :class:`WarpRegisterStack` — frame accounting with the circular
  wrap-around eviction of Fig 6: when a call's frame does not fit, frames
  are spilled from the *bottom* of the stack (oldest first) and filled back
  when control returns to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.instructions import CALLEE_SAVED_BASE
from ..resilience.errors import InvariantViolation
from ..resilience.faults import active_session


class RegisterStackError(InvariantViolation):
    """Raised on stack protocol violations (return without call, ...)."""


class RegisterRenamer:
    """Base+offset physical register indexing with a register stack.

    The baseline index for warp *i*'s architectural register *j* is
    ``base[i] + j``.  With CARS, callee-saved registers that have been
    pushed for the current frame are instead renamed into the stack region
    at ``base[i] + RFP + (j - 16)`` (all offsets here are relative to the
    warp's base, which never changes during the block's life).
    """

    def __init__(self, kernel_frame_regs: int, stack_regs: int) -> None:
        if kernel_frame_regs <= 0:
            raise ValueError("kernel frame must be positive")
        if stack_regs < 0:
            raise ValueError("stack size cannot be negative")
        self.kernel_frame_regs = kernel_frame_regs
        self.stack_regs = stack_regs
        # RSP/RFP are offsets into the stack region (which begins right
        # after the kernel frame, contiguous with the base allotment).
        self.rsp = 0
        self.rfp = 0
        self._saved_rfps: List[int] = []
        self._frame_pushed: List[int] = []  # pushed registers per frame

    @property
    def stack_base(self) -> int:
        return self.kernel_frame_regs

    @property
    def frame_live_regs(self) -> int:
        """Registers currently renamed for the active frame."""
        return self.rsp - self.rfp

    def physical_index(self, arch_reg: int) -> int:
        """Physical index (warp-relative) for *arch_reg* (Section III-A)."""
        renamed_span = self.rsp - self.rfp
        if (
            arch_reg >= CALLEE_SAVED_BASE
            and arch_reg < CALLEE_SAVED_BASE + renamed_span
        ):
            return self.stack_base + self.rfp + (arch_reg - CALLEE_SAVED_BASE)
        return arch_reg

    def call(self) -> None:
        """Function call: save the caller's RFP on the stack, point the RFP
        at the free region above the stack pointer."""
        self._saved_rfps.append(self.rfp)
        self._frame_pushed.append(0)
        self.rsp += 1  # the saved-RFP slot
        self.rfp = self.rsp

    def push(self, count: int) -> None:
        """Prologue push: rename *count* callee-saved registers."""
        if not self._saved_rfps:
            raise RegisterStackError("PUSH outside any call frame")
        if count < 0:
            raise ValueError("negative push count")
        self.rsp += count
        self._frame_pushed[-1] += count

    def pop(self, count: int) -> None:
        """Epilogue pop: restore names (no data movement, Section IV-A)."""
        if not self._frame_pushed or self._frame_pushed[-1] < count:
            raise RegisterStackError("POP exceeds frame's pushed registers")
        # Names are restored lazily: the span shrinks at frame release so
        # divergent epilogues can re-execute the pop without moving RSP.

    def ret(self) -> None:
        """Frame release: RSP returns to the RFP, caller's RFP restored."""
        if not self._saved_rfps:
            raise RegisterStackError("RET without a matching CALL")
        self.rsp = self.rfp - 1  # release the frame and the saved-RFP slot
        self.rfp = self._saved_rfps.pop()
        self._frame_pushed.pop()

    @property
    def depth(self) -> int:
        return len(self._saved_rfps)


@dataclass
class Frame:
    """One function activation on the hardware register stack.

    ``start`` is the frame's offset in the *logical* (unbounded) register
    stack — stable for the frame's lifetime, so spilled registers always
    map to the same local-memory addresses and fills can hit in cache.
    """

    start: int
    fru: int  # resident registers (logical size minus overflow)
    logical_fru: int  # full frame size, including overflow
    resident: bool = True


class WarpRegisterStack:
    """Frame residency with wrap-around spilling (Fig 6).

    ``call(fru)`` reserves a frame, spilling from the *bottom* of the stack
    (oldest frames first) when free space is insufficient; ``ret()``
    releases the top frame and reports the frame to fill back when the
    newly exposed frame was spilled.  All counts are warp-wide registers.

    Invariant: resident frames always form a contiguous suffix of the
    stack (eviction is strictly oldest-first), which guarantees a frame
    exposed by ``ret`` always fits when refilled.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity = capacity
        self.frames: List[Frame] = []
        self.spills = 0  # cumulative registers spilled (traps)
        self.fills = 0  # cumulative registers filled back
        self.traps = 0  # calls that had to spill (Table III numerator)
        self.peak_depth = 0  # deepest concurrent frame count observed
        self._next_start = 0
        # Snapshotted at construction: a fault-injection session corrupts
        # bookkeeping through on_stack_call and arms the per-operation
        # invariant sweep; None (the production case) costs one comparison.
        self._faults = active_session()

    @property
    def resident_regs(self) -> int:
        return sum(f.fru for f in self.frames if f.resident)

    @property
    def rsp(self) -> int:
        """Logical stack-pointer offset (next free logical register)."""
        return self._next_start

    @property
    def rfp(self) -> int:
        """Logical frame-pointer offset (start of the active frame)."""
        return self.frames[-1].start if self.frames else 0

    def __getstate__(self):
        # Fault sessions are injection-scoped; a checkpointed stack must
        # not smuggle a stale copy into the resumed process.
        state = dict(self.__dict__)
        state["_faults"] = None
        return state

    def state_dict(self) -> dict:
        """Bookkeeping snapshot for diagnostic dumps."""
        return {
            "rsp": self.rsp,
            "rfp": self.rfp,
            "depth": self.depth,
            "resident_regs": self.resident_regs,
            "capacity": self.capacity,
            "spills": self.spills,
            "fills": self.fills,
            "traps": self.traps,
            "peak_depth": self.peak_depth,
        }

    @property
    def total_regs(self) -> int:
        return sum(f.logical_fru for f in self.frames)

    @property
    def depth(self) -> int:
        return len(self.frames)

    def free_regs(self) -> int:
        return self.capacity - self.resident_regs

    def call(self, fru: int) -> List[Tuple[int, int]]:
        """Enter a frame of size *fru*.

        Returns the (start, count) register ranges that had to be spilled
        to local memory — empty when the frame fits (no trap).
        """
        if fru < 0:
            raise ValueError("negative FRU")
        spilled: List[Tuple[int, int]] = []
        # Evict the oldest resident frames (wrap-around, Fig 6) until the
        # new frame fits.  A frame larger than the whole stack region still
        # enters after everything else is evicted; its overflow is counted
        # as spilled since those registers can never be renamed.
        demand = min(fru, self.capacity)
        for frame in self.frames:
            if self.free_regs() >= demand:
                break
            if frame.resident:
                frame.resident = False
                # A zero-FRU frame holds no registers: evicting it keeps the
                # contiguous-suffix invariant but moves no data, so it must
                # not emit a (start, 0) spill range (those would collide with
                # a real frame sharing the same logical start).
                if frame.fru:
                    spilled.append((frame.start, frame.fru))
        overflow = max(0, fru - self.capacity)
        resident_part = fru - overflow
        start = self._next_start
        if overflow:
            spilled.append((start + resident_part, overflow))
        self.frames.append(
            Frame(start=start, fru=resident_part, logical_fru=fru, resident=True)
        )
        self._next_start += fru
        if len(self.frames) > self.peak_depth:
            self.peak_depth = len(self.frames)
        if spilled:
            self.traps += 1
            self.spills += sum(count for _, count in spilled)
        if self._faults is not None:
            self._faults.on_stack_call(self)
            self.check_invariants()
        return spilled

    def check_invariants(self) -> None:
        """Raise :class:`RegisterStackError` on a corrupted stack.

        The fuzz battery calls this after every operation; production code
        never needs to (the operations preserve these by construction).
        """
        if self.resident_regs > self.capacity:
            raise RegisterStackError(
                f"resident registers {self.resident_regs} exceed "
                f"capacity {self.capacity}"
            )
        seen_resident = False
        for frame in self.frames:
            if frame.resident:
                seen_resident = True
            elif seen_resident:
                raise RegisterStackError(
                    "spilled frame above a resident one: eviction must be "
                    "oldest-first (Fig 6 wrap-around)"
                )
        if self.frames and not self.frames[-1].resident:
            raise RegisterStackError("top frame is not resident")
        expected_start = 0
        for frame in self.frames:
            if frame.start != expected_start:
                raise RegisterStackError(
                    f"frame start {frame.start} != logical offset "
                    f"{expected_start}"
                )
            expected_start += frame.logical_fru
        if expected_start != self._next_start:
            raise RegisterStackError(
                f"logical stack height {expected_start} != next start "
                f"{self._next_start}"
            )

    def ret(self) -> Optional[Tuple[int, int]]:
        """Leave the top frame.

        Returns the (start, count) range to fill back from local memory
        when the newly exposed frame was spilled, else None.
        """
        if not self.frames:
            raise RegisterStackError("return from an empty register stack")
        if self._faults is not None:
            self.check_invariants()
        popped = self.frames.pop()
        self._next_start -= popped.logical_fru
        if self.frames and not self.frames[-1].resident:
            frame = self.frames[-1]
            frame.resident = True
            if frame.fru == 0:
                # Nothing was spilled for a zero-FRU frame, so there is
                # nothing to fill back (and no blocking fill to issue).
                return None
            self.fills += frame.fru
            return (frame.start, frame.fru)
        return None
