"""The dynamic register-reservation state machine (Fig 5).

When High-watermark would limit occupancy, CARS seeds half the SMs in
Low-watermark mode and half in High-watermark mode, measures per-thread-
block performance for each allocation level, and moves each SM's level one
step toward whatever is measured best as new blocks spawn.  At kernel end
the best-performing level is remembered per kernel name and seeds the next
invocation of the same kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class _LevelStats:
    blocks: int = 0
    total_runtime: int = 0

    @property
    def average(self) -> float:
        return self.total_runtime / self.blocks if self.blocks else float("inf")


class PolicyMemory:
    """Cross-launch memory: best-performing level per kernel name."""

    def __init__(self) -> None:
        self._best_level: Dict[str, int] = {}
        self._level_history: Dict[str, List[int]] = {}

    def best_level(self, kernel: str) -> Optional[int]:
        return self._best_level.get(kernel)

    def remember(self, kernel: str, level: int) -> None:
        self._best_level[kernel] = level
        self._level_history.setdefault(kernel, []).append(level)

    def history(self, kernel: str) -> List[int]:
        return list(self._level_history.get(kernel, ()))


class DynamicReservationPolicy:
    """Per-kernel-launch instance of the Fig 5 state machine."""

    def __init__(
        self,
        kernel: str,
        levels: List[int],
        num_sms: int,
        memory: Optional[PolicyMemory] = None,
        *,
        min_samples: int = 1,
    ) -> None:
        if not levels:
            raise ValueError("empty allocation ladder")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        self.kernel = kernel
        self.levels = levels
        self.num_sms = num_sms
        self.memory = memory
        self.stats: Dict[int, _LevelStats] = {}
        self._sm_level: List[int] = []
        top = len(levels) - 1
        seed = memory.best_level(kernel) if memory is not None else None
        if seed is not None and 0 <= seed <= top:
            # A previous invocation of this kernel chose a winner: start
            # every SM there (Fig 5's cross-launch arrow).
            self._sm_level = [seed] * num_sms
        else:
            # Half the SMs start Low, half start High.
            half = num_sms // 2
            self._sm_level = [0] * (num_sms - half) + [top] * half

    # ------------------------------------------------------------------

    def level_for_new_block(self, sm_id: int) -> int:
        """Allocation level a newly spawned block on *sm_id* should use."""
        self._adjust(sm_id)
        return self._sm_level[sm_id]

    def regs_for_level(self, level: int) -> int:
        return self.levels[level]

    def record_block(self, sm_id: int, level: int, runtime: int) -> None:
        entry = self.stats.setdefault(level, _LevelStats())
        entry.blocks += 1
        entry.total_runtime += runtime

    # ------------------------------------------------------------------

    def _measured_levels(self) -> List[int]:
        return [lvl for lvl, s in self.stats.items() if s.blocks > 0]

    def best_measured_level(self) -> Optional[int]:
        measured = self._measured_levels()
        if not measured:
            return None
        return min(measured, key=lambda lvl: self.stats[lvl].average)

    def _adjust(self, sm_id: int) -> None:
        """Move this SM's level one step toward the best measured level.

        The comparison only starts once ``min_samples`` blocks have
        completed at each of two allocation levels (the paper's default,
        ``min_samples=1``, waits for one High- and one Low-watermark
        block before engaging the machine; larger thresholds keep the
        seed populations running longer before trusting the averages).
        """
        measured = [
            lvl for lvl, s in self.stats.items()
            if s.blocks >= self.min_samples
        ]
        if len(measured) < 2:
            return
        current = self._sm_level[sm_id]
        best = min(measured, key=lambda lvl: self.stats[lvl].average)
        if best == current:
            return
        # "If the current selection performs worse than the recorded
        # performance of a higher or lower allocation, adjust accordingly."
        current_avg = self.stats.get(current, _LevelStats()).average
        if self.stats[best].average < current_avg:
            step = 1 if best > current else -1
            self._sm_level[sm_id] = current + step

    def finalize(self) -> int:
        """Kernel end: remember the winner for the next invocation."""
        best = self.best_measured_level()
        if best is None:
            best = self._sm_level[0]
        if self.memory is not None:
            self.memory.remember(self.kernel, best)
        return best
