"""Asyncio job scheduler over the executor.

One scheduler owns the job table, the queue, and the retry machinery;
the executor stays a dumb, synchronous engine behind a lock.  Design
points (``docs/architecture.md`` §16):

* **Dedupe against the store** — jobs run through
  ``Executor.run_many``, whose memo → store → simulate pipeline means a
  request whose result already exists (from a previous life of the
  service, or a concurrent duplicate job that finished first) costs a
  JSON read, not a simulation.  The journal records the job either way;
  only genuinely missing work computes.
* **Deadlines with cancellation** — a job's ``deadline`` is absolute
  wall-clock time.  Queued jobs past it are cancelled at dequeue;
  running jobs are abandoned via ``asyncio.wait_for`` and journaled
  ``cancelled``/``deadline_exceeded``.  The worker thread itself cannot
  be killed mid-simulation — it finishes in the background and its
  result still lands in the store, so a resubmission is nearly free.
* **Retry with backoff + jitter** — only *transient* failures
  (``ExecutorError.transient``) retry: delay =
  ``min(cap, base * 2**(attempt-1)) * (0.5 + rand())``, seeded, so two
  recovering services do not stampede in lockstep.  Deterministic
  :class:`~repro.resilience.errors.SimulationError`\\ s fail immediately
  — replaying them cannot go differently.
* **Drain** — a :class:`~repro.resilience.checkpoint.DrainInterrupt`
  from the runner leaves the job journaled ``running``; restart
  recovery re-queues it and the resumable runner continues from the
  checkpoint.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from ..harness._runner import RunResult
from ..harness.executor import Executor, ExecutorError, ExperimentRequest
from ..resilience.checkpoint import DrainInterrupt
from ..resilience.errors import (
    DeadlineExceededError,
    SimulationError,
)
from .admission import AdmissionController
from .errors import (
    JobNotFoundError,
    ResultNotReadyError,
    ServiceUnavailableError,
)
from .jobs import JobRecord, JobState
from .journal import JobJournal

__all__ = ["JobScheduler"]


class JobScheduler:
    """Owns job lifecycle: admission → journal → queue → executor."""

    def __init__(
        self,
        executor: Executor,
        journal: JobJournal,
        admission: AdmissionController,
        *,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        jitter_seed: int = 0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.executor = executor
        self.journal = journal
        self.admission = admission
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self._clock = clock
        # Created lazily inside the running loop: on 3.9 an asyncio.Queue
        # binds its loop at construction, and the scheduler is typically
        # built before asyncio.run() starts the real one.
        self.__queue: Optional["asyncio.Queue[str]"] = None
        self._jobs: Dict[str, JobRecord] = {}
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._done_events: Dict[str, asyncio.Event] = {}
        self._cancel_requested: set = set()
        self._exec_lock = threading.Lock()
        self._workers: List[asyncio.Task] = []
        self._retry_tasks: set = set()
        self.draining = False
        self.counters = {
            "submitted": 0, "done": 0, "failed": 0,
            "cancelled": 0, "retried": 0, "recovered": 0,
        }

    @property
    def _queue(self) -> "asyncio.Queue[str]":
        if self.__queue is None:
            self.__queue = asyncio.Queue()
        return self.__queue

    # -- submission / queries -------------------------------------------

    def submit(
        self,
        tenant: str,
        request: ExperimentRequest,
        *,
        deadline_s: Optional[float] = None,
    ) -> JobRecord:
        """Admit, journal, and queue one job; returns its record."""
        if self.draining:
            raise ServiceUnavailableError(
                "service is draining; not accepting new jobs"
            )
        self.admission.admit(tenant)  # raises the typed refusal
        now = self._clock()
        record = JobRecord(
            job_id=uuid.uuid4().hex[:16],
            tenant=tenant,
            request=request,
            submitted_at=now,
            deadline=(now + deadline_s) if deadline_s else None,
        )
        self._journal(record, note="submitted")
        self.counters["submitted"] += 1
        self._queue.put_nowait(record.job_id)
        return record

    def job(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return record

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        self.job(job_id)  # 404 before returning an empty stream
        return list(self._events.get(job_id, ()))

    def result(self, job_id: str) -> RunResult:
        """The stored result of a ``done`` job (typed refusal otherwise)."""
        record = self.job(job_id)
        if record.state is not JobState.DONE:
            raise ResultNotReadyError(
                f"job {job_id} is {record.state.value}, not done"
            )
        stored = self.executor.store.load(record.store_key)
        if stored is None:  # schema bumped / cache cleared between polls
            raise ResultNotReadyError(
                f"job {job_id}: stored result is gone; resubmit"
            )
        return stored

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job now, or flag a running one for abandon."""
        record = self.job(job_id)
        if record.terminal:
            return record
        if record.state in (JobState.SUBMITTED, JobState.RETRYING):
            self.admission.on_dequeue(record.tenant)
            record = record.advance(
                JobState.CANCELLED, error="cancelled by client",
                error_code="cancelled",
            )
            self._journal(record, note="cancelled by client")
            self.counters["cancelled"] += 1
            self._finish(record.job_id)
        else:
            self._cancel_requested.add(job_id)
        return record

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until *job_id* reaches a terminal state."""
        record = self.job(job_id)
        if record.terminal:
            return record
        event = self._done_events.setdefault(job_id, asyncio.Event())
        await asyncio.wait_for(event.wait(), timeout)
        return self.job(job_id)

    # -- recovery -------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Replay the journal; re-queue every non-terminal job."""
        jobs, report = self.journal.recover()
        requeued = 0
        for job_id in sorted(jobs):
            record = jobs[job_id]
            self._jobs[job_id] = record
            if record.terminal:
                continue
            record = record.recovered()
            self._journal(record, note="recovered after restart")
            self.admission.requeue(record.tenant)
            self._queue.put_nowait(job_id)
            requeued += 1
        self.counters["recovered"] += requeued
        report["requeued"] = requeued
        return report

    # -- the worker loop ------------------------------------------------

    def start(self, workers: int = 1) -> None:
        for _ in range(max(1, workers)):
            self._workers.append(asyncio.ensure_future(self._worker()))

    async def stop(self) -> None:
        """Stop workers (does not drain; see the service's drain path)."""
        self.draining = True
        for task in self._workers:
            task.cancel()
        for task in list(self._retry_tasks):
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()

    async def _worker(self) -> None:
        while True:
            job_id = await self._queue.get()
            try:
                await self._process(job_id)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: a bug must not kill the loop
                record = self._jobs.get(job_id)
                if record is not None and not record.terminal:
                    self._fail(record, exc)

    async def _process(self, job_id: str) -> None:
        record = self._jobs.get(job_id)
        if record is None or record.terminal:
            return
        tenant = record.tenant
        if job_id in self._cancel_requested:
            self._cancel_requested.discard(job_id)
            self.admission.on_dequeue(tenant)
            record = record.advance(
                JobState.CANCELLED, error="cancelled by client",
                error_code="cancelled",
            )
            self._journal(record, note="cancelled before start")
            self.counters["cancelled"] += 1
            self._finish(job_id)
            return
        now = self._clock()
        if record.deadline is not None and now >= record.deadline:
            self.admission.on_dequeue(tenant)
            self._cancel_deadline(record, where="queued")
            return
        if not self.admission.may_start(tenant):
            # At the tenant's concurrency cap: rotate to the back.
            await asyncio.sleep(0.05)
            self._queue.put_nowait(job_id)
            return

        self.admission.on_start(tenant)
        record = record.advance(
            JobState.RUNNING, attempts=record.attempts + 1
        )
        self._journal(record, note=f"attempt {record.attempts}")
        budget = (
            None if record.deadline is None
            else max(0.01, record.deadline - self._clock())
        )
        try:
            key, result = await asyncio.wait_for(
                asyncio.to_thread(self._execute, record), timeout=budget
            )
        except asyncio.TimeoutError:
            self.admission.on_finish(tenant, success=None)
            self._cancel_deadline(record, where="running")
        except DrainInterrupt:
            # Checkpointed and stopped on purpose.  Leave the job
            # journaled ``running``: restart recovery re-queues it and
            # the resumable runner continues from the checkpoint.
            self.admission.on_finish(tenant, success=None)
        except ExecutorError as exc:
            self.admission.on_finish(tenant, success=None)
            if exc.transient and record.attempts < self.max_attempts:
                self._schedule_retry(record, exc)
            else:
                self.admission.breaker(tenant).record_failure()
                self._fail(record, exc)
        except SimulationError as exc:
            self.admission.on_finish(tenant, success=False)
            self._fail(record, exc)
        except Exception as exc:
            # Untyped escape (factory bug, store I/O): final, counted
            # against the tenant's breaker like any other failure.
            self.admission.on_finish(tenant, success=False)
            self._fail(record, exc)
        else:
            self.admission.on_finish(tenant, success=True)
            record = record.advance(JobState.DONE, store_key=key)
            self._journal(record, note="result stored")
            self.counters["done"] += 1
            self._emit_progress(job_id, result)
            self._finish(job_id)

    def _execute(self, record: JobRecord):
        """Synchronous executor round (runs in a thread, serialized)."""
        with self._exec_lock:
            # run_many first: it routes a workload-factory failure
            # through the retry/typing machinery, where a bare key_for
            # call would raise it raw.  Afterwards the key is cached.
            result = self.executor.run_many([record.request])[record.request]
            return self.executor.key_for(record.request), result

    # -- outcome plumbing -----------------------------------------------

    def _schedule_retry(self, record: JobRecord, exc: BaseException) -> None:
        delay = min(
            self.backoff_cap,
            self.backoff_base * (2 ** (record.attempts - 1)),
        ) * (0.5 + self._rng.random())
        record = record.advance(
            JobState.RETRYING, error=repr(exc), error_code="transient",
        )
        self._journal(
            record, note=f"transient failure; retry in {delay:.2f}s"
        )
        self.counters["retried"] += 1
        self.admission.requeue(record.tenant)

        async def requeue() -> None:
            await asyncio.sleep(delay)
            if not self.draining:
                self._queue.put_nowait(record.job_id)

        task = asyncio.ensure_future(requeue())
        self._retry_tasks.add(task)
        task.add_done_callback(self._retry_tasks.discard)

    def _cancel_deadline(self, record: JobRecord, *, where: str) -> None:
        err = DeadlineExceededError(
            f"job {record.job_id} exceeded its deadline while {where}"
        )
        record = record.advance(
            JobState.CANCELLED, error=str(err), error_code=err.code,
        )
        self._journal(record, note=f"deadline exceeded ({where})")
        self.counters["cancelled"] += 1
        self._finish(record.job_id)

    def _fail(self, record: JobRecord, exc: BaseException) -> None:
        # Prefer the typed cause over the ExecutorError wrapper so the
        # journaled code names the real failure class.
        cause = exc.__cause__ if isinstance(exc, ExecutorError) else None
        source = cause if isinstance(cause, SimulationError) else exc
        code = getattr(source, "code", "") or type(source).__name__
        record = record.advance(
            JobState.FAILED, error=repr(exc), error_code=code,
        )
        self._journal(record, note="failed")
        self.counters["failed"] += 1
        self._finish(record.job_id)

    def _finish(self, job_id: str) -> None:
        event = self._done_events.get(job_id)
        if event is not None:
            event.set()

    def _journal(self, record: JobRecord, *, note: str = "") -> None:
        self._jobs[record.job_id] = record
        self.journal.append(record)
        self._events.setdefault(record.job_id, []).append({
            "ts": self._clock(),
            "state": record.state.value,
            "attempts": record.attempts,
            "note": note,
        })

    def _emit_progress(self, job_id: str, result: RunResult) -> None:
        # Per-job CPI/objective streaming (repro.obs): the final event of
        # a successful job carries the run's observable summary.
        try:
            from ..obs.objective import progress_event
            payload = progress_event(result.stats)
        except Exception:
            payload = {"cycles": result.stats.cycles}
        self._events[job_id].append({
            "ts": self._clock(), "state": "done", "progress": payload,
        })

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "queue_depth": self._queue.qsize(),
            "jobs": len(self._jobs),
            "executor": self.executor.stats.as_dict(),
            "admission": self.admission.snapshot(),
        }

    def jobs_in_state(self, *states: JobState) -> List[JobRecord]:
        wanted = set(states)
        return [r for r in self._jobs.values() if r.state in wanted]
