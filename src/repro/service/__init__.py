"""Resilient simulation-as-a-service layer.

Wraps the executor / result-store / resilience stack in a long-running,
crash-safe job service (``docs/architecture.md`` §16):

* :mod:`~repro.service.journal` — append-only WAL of job state
  transitions; ``kill -9`` + restart recovers every job.
* :mod:`~repro.service.jobs` — :class:`JobState` / :class:`JobRecord`,
  the unit the journal persists.
* :mod:`~repro.service.admission` — per-tenant quotas, token-bucket
  rate limiting, per-client circuit breaker, load shedding.
* :mod:`~repro.service.runner` — drain-aware, checkpoint-resuming
  request runner plugged into ``Executor(runner=...)``.
* :mod:`~repro.service.scheduler` — asyncio job scheduler: deadlines
  with cancellation, exponential backoff + jitter for transient
  failures, in-flight dedupe against the store.
* :mod:`~repro.service.app` — :class:`SimulationService`, the
  transport-agnostic core composing all of the above.
* :mod:`~repro.service.http` — thin stdlib asyncio HTTP adapter
  (``repro serve``).
* :mod:`~repro.service.client` — :func:`submit_plan` /
  :class:`JobHandle`, the blessed client surface.
* :mod:`~repro.service.chaos` — the seeded chaos battery.

The whole package is digest-exempt (see ``_DIGEST_EXEMPT_PACKAGES``):
it orchestrates *which* simulations run, never what one computes.
"""

from .admission import AdmissionController, TenantQuota, TokenBucket
from .app import ServiceConfig, SimulationService
from .client import JobHandle, ServiceClient, submit_plan
from .errors import (
    CircuitOpenError,
    InvalidRequestError,
    JobNotFoundError,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    ResultNotReadyError,
    ServiceUnavailableError,
    http_status_for,
)
from .jobs import JobRecord, JobState
from .journal import JobJournal
from .scheduler import JobScheduler

__all__ = [
    "AdmissionController",
    "TenantQuota",
    "TokenBucket",
    "ServiceConfig",
    "SimulationService",
    "JobHandle",
    "ServiceClient",
    "submit_plan",
    "CircuitOpenError",
    "InvalidRequestError",
    "JobNotFoundError",
    "QueueFullError",
    "QuotaExceededError",
    "RateLimitedError",
    "ResultNotReadyError",
    "ServiceUnavailableError",
    "http_status_for",
    "JobRecord",
    "JobState",
    "JobJournal",
    "JobScheduler",
]
