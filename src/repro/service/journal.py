"""Crash-safe job journal: an append-only WAL of state transitions.

Layout (``docs/architecture.md`` §16): a directory of numbered segments
``journal-<n>.wal``, each a sequence of JSON lines.  Every line is one
job state transition::

    {"seq": 17, "job": {<JobRecord.to_dict()>}}

``seq`` increases monotonically across segments, so replay order never
depends on timestamps.  Appends are ``write + flush + fsync`` — when
:meth:`append` returns, the transition survives ``kill -9``.

Rotation is compaction: when the active segment passes
``rotate_after`` records, the journal writes a *snapshot* segment
holding just the latest record of every job (terminal jobs included —
clients may still poll them), via the same temp-file + ``os.replace``
dance the result store uses, then deletes the older segments.  A crash
between the rename and the deletes only leaves extra segments behind;
replay is idempotent because the highest ``seq`` per job wins.

Recovery (:meth:`recover`) replays every segment in order and tolerates
a torn final line — the one partial write a ``kill -9`` mid-append can
leave.  A torn line *before* the last one means real corruption and is
counted in the report rather than silently skipped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .jobs import JobRecord

__all__ = ["JobJournal"]

_SEGMENT_GLOB = "journal-*.wal"


def _segment_index(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError):
        return -1


class JobJournal:
    """Append-only, fsynced, segment-rotated journal of job records."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        rotate_after: int = 1024,
    ) -> None:
        if rotate_after < 1:
            raise ValueError("rotate_after must be at least 1")
        self.directory = Path(directory)
        self.rotate_after = rotate_after
        self._seq = 0
        self._active_records = 0
        self._fh = None  # type: Optional[object]
        self._active_path: Optional[Path] = None
        #: latest record per job, maintained on append/recover — rotation
        #: compacts from this table without re-reading segments.
        self.jobs: Dict[str, JobRecord] = {}

    # -- segments -------------------------------------------------------

    def segments(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            self.directory.glob(_SEGMENT_GLOB), key=_segment_index
        )

    def _open_active(self) -> None:
        if self._fh is not None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = self.segments()
        if existing:
            self._active_path = existing[-1]
            # A torn final write may have left the segment without its
            # newline; appending onto that line would corrupt *two*
            # records, so terminate it first.
            with open(self._active_path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                ends_clean = size == 0 or (
                    fh.seek(size - 1) or fh.read(1) == b"\n"
                )
        else:
            self._active_path = self.directory / "journal-000001.wal"
            ends_clean = True
        self._fh = open(self._active_path, "a", encoding="utf-8")
        if not ends_clean:
            self._fh.write("\n")
            self._fh.flush()

    # -- writes ---------------------------------------------------------

    def append(self, record: JobRecord) -> int:
        """Durably journal *record*; returns its sequence number."""
        self._open_active()
        self._seq += 1
        line = json.dumps(
            {"seq": self._seq, "job": record.to_dict()},
            sort_keys=True, separators=(",", ":"),
        )
        fh = self._fh
        assert fh is not None
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.jobs[record.job_id] = record
        self._active_records += 1
        if self._active_records >= self.rotate_after:
            self.rotate()
        return self._seq

    def rotate(self) -> Path:
        """Compact to a fresh snapshot segment; prune the older ones."""
        self.close()
        old = self.segments()
        next_index = (_segment_index(old[-1]) + 1) if old else 1
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"journal-{next_index:06d}.wal"
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for job_id in sorted(self.jobs):
                self._seq += 1
                fh.write(json.dumps(
                    {"seq": self._seq, "job": self.jobs[job_id].to_dict()},
                    sort_keys=True, separators=(",", ":"),
                ) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        for stale in old:
            try:
                stale.unlink()
            except OSError:
                pass
        self._active_path = path
        self._active_records = len(self.jobs)
        self._fh = open(path, "a", encoding="utf-8")
        return path

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- recovery -------------------------------------------------------

    def recover(self) -> Tuple[Dict[str, JobRecord], Dict[str, int]]:
        """Replay every segment; returns ``(jobs, report)``.

        ``jobs`` maps job id to its latest journaled record (highest
        ``seq`` wins).  ``report`` counts ``segments``, ``records``,
        ``torn_tail`` (0/1 — the benign kill-mid-append case) and
        ``corrupt`` (bad lines anywhere else).  The journal is left
        positioned to append after the highest recovered ``seq``.
        """
        best: Dict[str, Tuple[int, JobRecord]] = {}
        report = {"segments": 0, "records": 0, "torn_tail": 0, "corrupt": 0}
        max_seq = 0
        segments = self.segments()
        active_records = 0
        for seg_pos, segment in enumerate(segments):
            report["segments"] += 1
            last_segment = seg_pos == len(segments) - 1
            with open(segment, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
            if last_segment:
                active_records = len(lines)
            for line_pos, line in enumerate(lines):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    seq = int(entry["seq"])
                    record = JobRecord.from_dict(entry["job"])
                except Exception:
                    tail = (
                        last_segment and line_pos == len(lines) - 1
                    )
                    report["torn_tail" if tail else "corrupt"] += 1
                    if tail:
                        # Repair: drop the torn fragment so the next
                        # append starts on a clean line instead of
                        # concatenating onto (and corrupting) it.
                        keep = sum(
                            len(l.encode("utf-8")) for l in lines[:-1]
                        )
                        with open(segment, "rb+") as fh:
                            fh.truncate(keep)
                        active_records -= 1
                    continue
                report["records"] += 1
                max_seq = max(max_seq, seq)
                prev = best.get(record.job_id)
                if prev is None or seq >= prev[0]:
                    best[record.job_id] = (seq, record)
        self.jobs = {job_id: rec for job_id, (_, rec) in best.items()}
        self._seq = max_seq
        self._active_records = active_records
        return dict(self.jobs), report
