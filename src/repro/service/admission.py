"""Per-tenant admission control: quotas, rate limits, circuit breaking.

Every submission passes :meth:`AdmissionController.admit` before any
state is journaled.  Checks, in order (cheapest first, and each raising
its own :class:`~repro.resilience.errors.ServiceError` subclass so the
HTTP adapter can map them to distinct statuses):

1. **load shedding** — the *global* queue is past ``high_watermark``:
   :class:`~repro.service.errors.QueueFullError` (503).  Protects the
   machine from every tenant at once.
2. **circuit breaker** — the tenant's recent submissions kept failing:
   :class:`~repro.service.errors.CircuitOpenError` (503).  This is the
   PR-5 executor breaker promoted to per-client scope: ``threshold``
   consecutive job failures open the circuit, ``cooldown`` seconds
   later one probe job is allowed through (half-open); its success
   closes the circuit, its failure re-opens it for another cooldown.
3. **quotas** — the tenant's own queued/concurrent counts:
   :class:`~repro.service.errors.QuotaExceededError` (429).
4. **rate** — the tenant's token bucket is empty:
   :class:`~repro.service.errors.RateLimitedError` (429) with a
   ``retry_after`` hint.

Clocks are injectable everywhere so tests drive time deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .errors import (
    CircuitOpenError,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
)

__all__ = [
    "AdmissionController",
    "TenantBreaker",
    "TenantQuota",
    "TokenBucket",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capped at ``burst``.

    ``take()`` consumes one token if available; ``retry_after()`` says
    how long until the next token exists.  A non-positive ``rate``
    disables limiting entirely (the bucket is always full).
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = max(1, int(burst))
        self._clock = clock
        self._tokens = float(self.burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def take(self) -> bool:
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        if self.rate <= 0:
            return 0.0
        self._refill()
        missing = max(0.0, 1.0 - self._tokens)
        return missing / self.rate


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission knobs (the controller's defaults apply when a
    tenant has no explicit quota).

    ``max_queued`` counts jobs in ``submitted``/``retrying``;
    ``max_concurrent`` counts ``running`` jobs.  ``rate``/``burst``
    parameterize the submit token bucket (``rate <= 0`` disables it).
    """

    max_queued: int = 64
    max_concurrent: int = 4
    rate: float = 0.0
    burst: int = 8


class TenantBreaker:
    """Per-tenant circuit breaker with cooldown and half-open probing."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown = cooldown
        self._clock = clock
        self._streak = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def open(self) -> bool:
        return self._opened_at is not None

    def allow(self) -> bool:
        """May this tenant submit right now?

        While open, returns False until ``cooldown`` elapses; then one
        probe submission is allowed through (half-open) and the breaker
        waits on its outcome.
        """
        if self._opened_at is None:
            return True
        if self._probing:
            return False
        if self._clock() - self._opened_at >= self.cooldown:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._streak = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._streak += 1
        if self._probing or self._streak >= self.threshold:
            self._opened_at = self._clock()
            self._probing = False


class AdmissionController:
    """Gatekeeper in front of the scheduler; all counters live here."""

    def __init__(
        self,
        *,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        high_watermark: int = 256,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.high_watermark = max(1, int(high_watermark))
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._breakers: Dict[str, TenantBreaker] = {}
        self.queued: Dict[str, int] = {}
        self.running: Dict[str, int] = {}

    # -- lookups --------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.quota_for(tenant)
            bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def breaker(self, tenant: str) -> TenantBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = TenantBreaker(
                self.breaker_threshold, self.breaker_cooldown,
                clock=self._clock,
            )
            self._breakers[tenant] = breaker
        return breaker

    @property
    def total_queued(self) -> int:
        return sum(self.queued.values())

    # -- the gate -------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Raise a typed refusal, or record the admission (queued += 1)."""
        if self.total_queued >= self.high_watermark:
            raise QueueFullError(
                f"queue at high-watermark ({self.high_watermark}); "
                f"shedding load"
            )
        if not self.breaker(tenant).allow():
            raise CircuitOpenError(
                f"tenant {tenant!r}: circuit open after repeated failures; "
                f"retry after cooldown"
            )
        quota = self.quota_for(tenant)
        if self.queued.get(tenant, 0) >= quota.max_queued:
            raise QuotaExceededError(
                f"tenant {tenant!r}: {quota.max_queued} jobs already queued"
            )
        bucket = self._bucket(tenant)
        if not bucket.take():
            raise RateLimitedError(
                f"tenant {tenant!r}: submit rate exceeded",
                retry_after=bucket.retry_after(),
            )
        self.queued[tenant] = self.queued.get(tenant, 0) + 1

    # -- lifecycle accounting (called by the scheduler) -----------------

    def requeue(self, tenant: str) -> None:
        """A recovered/retrying job re-enters the queue (no gate checks —
        it was admitted once already and refusing it now would lose it)."""
        self.queued[tenant] = self.queued.get(tenant, 0) + 1

    def may_start(self, tenant: str) -> bool:
        return (
            self.running.get(tenant, 0)
            < self.quota_for(tenant).max_concurrent
        )

    def on_start(self, tenant: str) -> None:
        self.queued[tenant] = max(0, self.queued.get(tenant, 0) - 1)
        self.running[tenant] = self.running.get(tenant, 0) + 1

    def on_finish(self, tenant: str, *, success: Optional[bool]) -> None:
        """A running job left the executor.

        ``success`` drives the breaker: ``True`` closes it, ``False``
        counts toward opening it, ``None`` leaves it untouched (retries
        and drains are not final outcomes).
        """
        self.running[tenant] = max(0, self.running.get(tenant, 0) - 1)
        if success is True:
            self.breaker(tenant).record_success()
        elif success is False:
            self.breaker(tenant).record_failure()

    def on_dequeue(self, tenant: str) -> None:
        """A queued job left without running (cancelled, deadline)."""
        self.queued[tenant] = max(0, self.queued.get(tenant, 0) - 1)

    def snapshot(self) -> Dict[str, object]:
        return {
            "total_queued": self.total_queued,
            "high_watermark": self.high_watermark,
            "queued": dict(self.queued),
            "running": dict(self.running),
            "open_circuits": sorted(
                t for t, b in self._breakers.items() if b.open
            ),
        }
