"""Thin stdlib asyncio HTTP/1.1 adapter over :class:`SimulationService`.

No framework, no dependency: ``asyncio.start_server`` + a minimal
request parser, enough for the service's small JSON API.  Routes:

====== ============================ =======================================
POST   /v1/jobs                     submit one job
POST   /v1/plans                    submit a list of jobs (one plan)
GET    /v1/jobs/<id>                job record + events
GET    /v1/jobs/<id>/result         the stored RunResult (409 until done)
DELETE /v1/jobs/<id>                cancel
GET    /v1/health                   liveness (store + executor probes)
GET    /v1/ready                    readiness (drain/watermark aware)
GET    /v1/stats                    scheduler + executor + admission stats
POST   /v1/drain                    begin graceful drain
====== ============================ =======================================

Submission body: ``{"tenant": "...", "request": {<ExperimentRequest
.to_dict()>}, "deadline_s": 30.0}`` (plans carry ``"requests": [...]``).
Errors come back as ``{"error": {"code", "message", "status"}}`` with
the status from the typed
:class:`~repro.resilience.errors.ServiceError` mapping, so clients can
rebuild the exact error class (:func:`~repro.service.errors
.error_for_code`).  The tenant is taken from the body, falling back to
the ``X-Repro-Tenant`` header, falling back to ``"default"``.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Callable, Dict, Optional, Tuple

from ..config import PRESETS
from ..harness.executor import ExperimentRequest
from ..resilience.errors import ServiceError
from .app import ServiceConfig, SimulationService
from .errors import InvalidRequestError, JobNotFoundError, http_status_for

__all__ = ["ServiceServer", "serve"]

_MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _record_payload(service: SimulationService, job_id: str) -> Dict[str, Any]:
    record = service.job(job_id)
    payload = record.to_dict()
    payload["events"] = service.events(job_id)
    return payload


def _parse_request_body(body: Dict[str, Any]) -> ExperimentRequest:
    if not isinstance(body, dict) or "workload" not in body:
        raise InvalidRequestError(
            "request body needs at least {'workload': <name>}"
        )
    data = dict(body)
    data.setdefault("technique", "baseline")
    data.setdefault("sweep", [])
    # Hand-written bodies may name a preset ("config": "volta" or
    # nothing) instead of shipping a full GPUConfig dict.
    config = data.get("config", "volta")
    if isinstance(config, str):
        if config not in PRESETS:
            raise InvalidRequestError(
                f"unknown config preset {config!r}; "
                f"one of: {', '.join(sorted(PRESETS))}"
            )
        data["config"] = PRESETS[config].to_dict()
    try:
        return ExperimentRequest.from_dict(data)
    except Exception as exc:
        raise InvalidRequestError(
            f"request body does not describe an experiment: {exc}"
        ) from exc


class ServiceServer:
    """One listening socket bound to one :class:`SimulationService`."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8642,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # Created in start(): 3.9 binds asyncio.Event to the loop at
        # construction time.
        self.__shutdown: Optional[asyncio.Event] = None

    @property
    def _shutdown(self) -> asyncio.Event:
        if self.__shutdown is None:
            self.__shutdown = asyncio.Event()
        return self.__shutdown

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        addr = self._server.sockets[0].getsockname()
        self.port = addr[1]

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT (drains) or :meth:`shutdown`."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._shutdown.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix / nested loop
        await self._shutdown.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()

    # -- request plumbing -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload = await self._dispatch(
                    method, path, headers, body
                )
                blob = json.dumps(payload).encode()
                writer.write(
                    (
                        f"HTTP/1.1 {status} "
                        f"{_REASONS.get(status, 'Unknown')}\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(blob)}\r\n"
                        f"Connection: keep-alive\r\n\r\n"
                    ).encode()
                )
                writer.write(blob)
                await writer.drain()
        except (
            asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = b""
        if 0 < length <= _MAX_BODY:
            body = await reader.readexactly(length)
        return method, path, headers, body

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        try:
            data: Dict[str, Any] = {}
            if body:
                try:
                    data = json.loads(body.decode())
                except ValueError as exc:
                    raise InvalidRequestError(
                        f"body is not JSON: {exc}"
                    ) from exc
            tenant = (
                data.get("tenant")
                or headers.get("x-repro-tenant")
                or "default"
            )
            path = path.split("?", 1)[0].rstrip("/") or "/"

            if path == "/v1/health" and method == "GET":
                return 200, service.health()
            if path == "/v1/ready" and method == "GET":
                report = service.ready()
                return (200 if report["ready"] else 503), report
            if path == "/v1/stats" and method == "GET":
                return 200, service.stats()
            if path == "/v1/drain" and method == "POST":
                asyncio.ensure_future(self._drain_then_exit())
                return 202, {"draining": True}
            if path == "/v1/jobs" and method == "POST":
                record = service.submit(
                    tenant,
                    _parse_request_body(data.get("request", {})),
                    deadline_s=data.get("deadline_s"),
                )
                return 202, {"job_id": record.job_id,
                             "state": record.state.value}
            if path == "/v1/plans" and method == "POST":
                requests = data.get("requests")
                if not isinstance(requests, list) or not requests:
                    raise InvalidRequestError(
                        "plan body needs a non-empty 'requests' list"
                    )
                parsed = [_parse_request_body(r) for r in requests]
                job_ids = [
                    service.submit(
                        tenant, request, deadline_s=data.get("deadline_s")
                    ).job_id
                    for request in parsed
                ]
                return 202, {"job_ids": job_ids}
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/result") and method == "GET":
                    job_id = rest[: -len("/result")]
                    result = service.result(job_id)
                    return 200, {"job_id": job_id,
                                 "result": result.to_dict()}
                if "/" not in rest:
                    if method == "GET":
                        return 200, _record_payload(service, rest)
                    if method == "DELETE":
                        record = service.cancel(rest)
                        return 200, {"job_id": record.job_id,
                                     "state": record.state.value}
            raise JobNotFoundError(f"no route for {method} {path}")
        except ServiceError as exc:
            status = http_status_for(exc)
            error: Dict[str, Any] = {
                "code": exc.code, "message": str(exc), "status": status,
            }
            retry_after = getattr(exc, "retry_after", None)
            if retry_after:
                error["retry_after"] = retry_after
            return status, {"error": error}
        except Exception as exc:  # never let a handler kill the server
            return 500, {"error": {
                "code": "internal", "message": repr(exc), "status": 500,
            }}

    async def _drain_then_exit(self) -> None:
        self._shutdown.set()


def serve(
    config: Optional[ServiceConfig] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready_callback: Optional[Callable[[ServiceServer], None]] = None,
) -> None:
    """Blocking entry point behind ``repro serve``."""

    async def main() -> None:
        server = ServiceServer(
            SimulationService(config), host=host, port=port
        )
        await server.start()
        print(
            f"repro service listening on http://{server.host}:{server.port} "
            f"(journal: {server.service.journal.directory}, "
            f"store: {server.service.store.root})",
            flush=True,
        )
        if ready_callback is not None:
            ready_callback(server)
        await server.serve_forever()

    asyncio.run(main())
