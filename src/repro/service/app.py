"""The transport-agnostic service core: composition + lifecycle.

:class:`SimulationService` wires together the store, the executor (with
the drain-aware resumable runner), the WAL journal, admission control,
and the scheduler.  Adapters (HTTP today, anything later) talk only to
this class; it owns startup recovery, health/readiness probes, and the
SIGTERM drain sequence:

1. stop admitting (``readiness`` flips false, submissions get 503);
2. flip the :class:`~repro.resilience.checkpoint.DrainController` — the
   in-flight launch checkpoints at its next idle boundary and stops;
3. journal + close; a restarted service replays the WAL, re-queues
   every non-terminal job, and the resumable runner continues from
   sidecars/checkpoints — only genuinely lost work recomputes.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..harness.executor import Executor, ExperimentRequest, ResultStore
from ..resilience.checkpoint import DrainController
from .admission import AdmissionController, TenantQuota
from .journal import JobJournal
from .runner import make_resumable_runner
from .scheduler import JobScheduler

__all__ = ["ServiceConfig", "SimulationService"]


@dataclass
class ServiceConfig:
    """Everything a service instance needs, in one picklable bundle.

    ``root`` holds the journal (``journal/``) and per-request resume
    state (``work/``); the result store lives wherever ``store_root``
    points (default: the shared on-disk store, so the service and the
    CLI deduplicate against each other).
    """

    root: Union[str, Path] = "service-state"
    store_root: Optional[str] = None
    #: scheduler
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    jitter_seed: int = 0
    workers: int = 1
    #: executor (retries=1: the scheduler owns retry policy)
    executor_jobs: int = 1
    executor_timeout: Optional[float] = None
    #: admission
    high_watermark: int = 256
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    #: journal
    rotate_after: int = 1024
    #: rolling checkpoint period for long launches (None = only on drain)
    checkpoint_every_cycles: Optional[int] = None


class SimulationService:
    """Crash-safe simulation job service (compose → recover → serve)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        root = Path(self.config.root)
        self.store = ResultStore(self.config.store_root)
        self.drain_controller = DrainController()
        runner = make_resumable_runner(
            root / "work", self.drain_controller,
            every_cycles=self.config.checkpoint_every_cycles,
        )
        self.executor = Executor(
            jobs=self.config.executor_jobs,
            store=self.store,
            timeout=self.config.executor_timeout,
            retries=1,
            backoff_base=0.0,
            # The scheduler owns the retry budget; the per-request
            # quarantine must outlast it so one flaky job never trips
            # the executor breaker before its retries are spent.
            breaker_threshold=self.config.max_attempts + 1,
            runner=runner,
        )
        self.journal = JobJournal(
            root / "journal", rotate_after=self.config.rotate_after
        )
        self.admission = AdmissionController(
            default_quota=self.config.default_quota,
            quotas=self.config.quotas,
            high_watermark=self.config.high_watermark,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown,
        )
        self.scheduler = JobScheduler(
            self.executor,
            self.journal,
            self.admission,
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            jitter_seed=self.config.jitter_seed,
        )
        self.recovery_report: Dict[str, int] = {}
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> Dict[str, int]:
        """Recover the journal and start the worker loop (idempotent)."""
        if self._started:
            return self.recovery_report
        self.recovery_report = self.scheduler.recover()
        self.scheduler.start(self.config.workers)
        self._started = True
        return self.recovery_report

    async def drain(self, timeout: float = 60.0) -> Dict[str, Any]:
        """Graceful shutdown: shed, checkpoint, settle, close.

        Returns a report of what was still in flight.  Safe to call more
        than once (SIGTERM handler + finally block).
        """
        from .jobs import JobState

        self.scheduler.draining = True
        self.drain_controller.drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        # Wait for running jobs to checkpoint out (DrainInterrupt) or
        # finish naturally, bounded by *timeout*.
        while loop.time() < deadline:
            if not any(self.admission.running.values()):
                break
            await asyncio.sleep(0.05)
        await self.scheduler.stop()
        self.journal.close()
        return {
            "running_at_drain": [
                r.job_id
                for r in self.scheduler.jobs_in_state(JobState.RUNNING)
            ],
            "queue_depth": self.scheduler.stats()["queue_depth"],
        }

    # -- adapter surface ------------------------------------------------

    def submit(
        self,
        tenant: str,
        request: ExperimentRequest,
        *,
        deadline_s: Optional[float] = None,
    ):
        return self.scheduler.submit(tenant, request, deadline_s=deadline_s)

    def job(self, job_id: str):
        return self.scheduler.job(job_id)

    def result(self, job_id: str):
        return self.scheduler.result(job_id)

    def cancel(self, job_id: str):
        return self.scheduler.cancel(job_id)

    def events(self, job_id: str):
        return self.scheduler.events(job_id)

    def stats(self) -> Dict[str, Any]:
        return self.scheduler.stats()

    # -- probes ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness: the store root is writable and the executor answers.

        ``ok`` stays true while degraded (e.g. a broken pool pinned the
        executor serial) — degraded is slow, not dead; readiness is the
        probe that gates new traffic.
        """
        store_ok = True
        store_error = ""
        try:
            self.store.root.mkdir(parents=True, exist_ok=True)
            probe = self.store.root / f".probe.{os.getpid()}"
            probe.write_text("ok")
            probe.unlink()
        except OSError as exc:
            store_ok = False
            store_error = str(exc)
        return {
            "ok": store_ok,
            "store": {
                "ok": store_ok, "root": str(self.store.root),
                "error": store_error,
            },
            "executor": {
                "degraded_serial": self.executor._pool_broken,
                "quarantined": self.executor.stats.quarantined,
            },
            "draining": self.scheduler.draining,
        }

    def ready(self) -> Dict[str, Any]:
        """Readiness: started, not draining, queue under the watermark."""
        depth = self.admission.total_queued
        ready = (
            self._started
            and not self.scheduler.draining
            and depth < self.admission.high_watermark
        )
        return {
            "ready": ready,
            "started": self._started,
            "draining": self.scheduler.draining,
            "queue_depth": depth,
            "high_watermark": self.admission.high_watermark,
        }
