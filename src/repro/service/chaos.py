"""Seeded chaos battery for the service layer.

Drives an in-process :class:`~repro.service.app.SimulationService`
through the failure modes the acceptance criteria name, using
deterministic seeds throughout (the PR-5 fault-injection philosophy: a
failing chaos run must reproduce from its seed):

* **transient crashes** — a workload factory armed to crash the first
  N attempts per workload (the same pattern the PR-5 recovery tests
  use) must be *retried to success* by the scheduler's backoff loop;
* **deterministic failures** — seeded
  :class:`~repro.resilience.faults.FaultPlan` corruption makes the
  simulation fail with a typed
  :class:`~repro.resilience.errors.SimulationError`; the job must end
  ``failed`` with that typed code after exactly one attempt;
* **deadlines** — a job submitted with an already-elapsed deadline must
  be ``cancelled`` with the distinct ``deadline_exceeded`` code.

The kill -9 + restart recovery leg needs a real process boundary, so it
lives in ``tests/test_service_chaos.py`` / the CI ``service-smoke``
job, not here.  :func:`run_chaos_battery` returns a report dict and
raises :class:`ChaosReportError` listing every violated expectation.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional

from ..harness.executor import ExperimentRequest, ResultStore, execute_request
from ..resilience.errors import SimulationError
from ..resilience.faults import inject_faults, seeded_plan
from ..resilience.selfcheck import guardrail_workload
from ..workloads import make_workload
from ..workloads.spec import Workload
from .app import ServiceConfig, SimulationService
from .jobs import JobState

__all__ = ["ChaosReportError", "run_chaos_battery"]


class ChaosReportError(SimulationError):
    """The battery found behavior violating the service's contracts."""


#: (workload name -> remaining crashes) shared with the armed factory.
_CRASHES_REMAINING: Dict[str, int] = {}


def _flaky_factory(name: str) -> Workload:
    remaining = _CRASHES_REMAINING.get(name, 0)
    if remaining > 0:
        _CRASHES_REMAINING[name] = remaining - 1
        raise OSError(
            f"chaos: injected transient environment failure for {name!r} "
            f"({remaining - 1} left)"
        )
    if name == "selfcheck":
        return guardrail_workload()
    return make_workload(name)


def run_chaos_battery(
    tmp_root: str,
    *,
    seed: int = 20240924,
    workload: str = "FIB",
    transient_crashes: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the battery under ``tmp_root``; returns the report."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    async def battery() -> Dict[str, Any]:
        violations: List[str] = []
        config = ServiceConfig(
            root=f"{tmp_root}/service",
            store_root=f"{tmp_root}/store",
            max_attempts=transient_crashes + 1,
            backoff_base=0.01,
            backoff_cap=0.05,
            jitter_seed=seed,
        )
        service = SimulationService(config)
        service.executor.workload_factory = _flaky_factory
        service.start()
        report: Dict[str, Any] = {"seed": seed}
        try:
            # -- leg 1: transient crashes are retried to success -------
            note("leg 1: transient worker crashes retry to success")
            _CRASHES_REMAINING[workload] = transient_crashes
            record = service.submit(
                "chaos-transient", ExperimentRequest(workload, "baseline")
            )
            final = await service.scheduler.wait(record.job_id, timeout=60)
            report["transient"] = {
                "state": final.state.value, "attempts": final.attempts,
            }
            if final.state is not JobState.DONE:
                violations.append(
                    f"transient leg: expected done after retries, got "
                    f"{final.state.value} ({final.error})"
                )
            elif not 2 <= final.attempts <= transient_crashes + 1:
                # The executor's store probe may absorb one injected
                # crash outside the attempt accounting, so the exact
                # count can be one lower than crashes + 1 — but success
                # on the very first attempt would mean no retry happened.
                violations.append(
                    f"transient leg: expected 2..{transient_crashes + 1} "
                    f"attempts, got {final.attempts}"
                )

            # -- leg 2: deterministic failures are typed, not retried --
            note("leg 2: deterministic failures surface typed, no retry")
            _CRASHES_REMAINING.pop(workload, None)
            # An unresolvable technique fails deterministically with a
            # typed SimulationError before any simulation state exists
            # — exactly the class of failure that must never replay.
            bad = ExperimentRequest(workload, "no_such_technique")
            record = service.submit("chaos-deterministic", bad)
            final = await service.scheduler.wait(record.job_id, timeout=60)
            report["deterministic"] = {
                "state": final.state.value, "attempts": final.attempts,
                "error_code": final.error_code,
            }
            if final.state is not JobState.FAILED:
                violations.append(
                    f"deterministic leg: expected failed, got "
                    f"{final.state.value}"
                )
            if final.attempts > 1:
                violations.append(
                    f"deterministic leg: {final.attempts} attempts — a "
                    f"deterministic failure must not be replayed"
                )

            # -- leg 2b: seeded fault corruption trips a typed guardrail
            note("leg 2b: seeded stack corruption fails typed via faults")
            guard = ExperimentRequest("selfcheck", "cars_low")
            # Count fault-event ordinals with a clean run (not through
            # the store — it must stay unpolluted), then seed one
            # corrupt_stack fault inside the observed range.
            with inject_faults() as counting:
                execute_request(guard, guardrail_workload())
            plans = seeded_plan(seed, counting.counters, ("corrupt_stack",))
            plan = plans.get("corrupt_stack")
            if plan is None:
                violations.append(
                    "fault leg: counting run observed no stack events"
                )
            else:
                with inject_faults(plan):
                    record = service.submit("chaos-faults", guard)
                    final = await service.scheduler.wait(
                        record.job_id, timeout=60
                    )
                report["faults"] = {
                    "state": final.state.value,
                    "attempts": final.attempts,
                    "error_code": final.error_code,
                }
                if final.state is not JobState.FAILED:
                    violations.append(
                        f"fault leg: expected typed failure, got "
                        f"{final.state.value}"
                    )
                if final.attempts > 1:
                    violations.append(
                        f"fault leg: {final.attempts} attempts — a "
                        f"deterministic guardrail trip must not replay"
                    )
                if final.error_code not in (
                    "InvariantViolation", "RegisterStackError"
                ):
                    # RegisterStackError is the InvariantViolation
                    # subclass the corrupt-stack guardrail raises.
                    violations.append(
                        f"fault leg: expected an InvariantViolation "
                        f"class, got {final.error_code!r}"
                    )

            # -- leg 3: deadline-exceeded jobs are cancelled, typed ----
            note("leg 3: expired deadlines cancel with a distinct code")
            record = service.submit(
                "chaos-deadline",
                ExperimentRequest(workload, "cars"),
                deadline_s=0.000001,
            )
            final = await service.scheduler.wait(record.job_id, timeout=60)
            report["deadline"] = {
                "state": final.state.value,
                "error_code": final.error_code,
            }
            if final.state is not JobState.CANCELLED:
                violations.append(
                    f"deadline leg: expected cancelled, got "
                    f"{final.state.value}"
                )
            if final.error_code != "deadline_exceeded":
                violations.append(
                    f"deadline leg: expected code deadline_exceeded, got "
                    f"{final.error_code!r}"
                )

            # -- leg 4: the survivors' results really landed -----------
            note("leg 4: store integrity after the storm")
            store = ResultStore(config.store_root)
            fsck = store.verify(strict=False)
            report["store"] = fsck
            if fsck["quarantined"]:
                violations.append(
                    f"store leg: fsck quarantined {fsck['quarantined']}"
                )
        finally:
            await service.drain(timeout=5.0)
        report["violations"] = violations
        if violations:
            raise ChaosReportError(
                "chaos battery found "
                f"{len(violations)} violation(s): " + "; ".join(violations)
            )
        return report

    return asyncio.run(battery())
