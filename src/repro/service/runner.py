"""Drain-aware, checkpoint-resuming request runner.

:func:`make_resumable_runner` builds the callable the service plugs into
``Executor(runner=...)``.  It simulates exactly what
:func:`~repro.harness.executor.execute_request` would — the store's
divergence cross-check enforces byte-identical statistics — but breaks
the work into resumable pieces under a per-request working directory
(keyed by the request's store key, so a simulator edit strands no stale
state):

* ``launch-<i>.done`` — sidecar written after each completed kernel
  launch: the pickled ``(SimStats, PolicyMemory)`` pair.  Pickle, not
  JSON: sidecars are crash insurance with the same non-portability
  contract as checkpoints, and the stats must be *exact* for the merged
  total to match an uninterrupted run.
* ``ckpt-<i>/`` — the in-flight launch's checkpoint directory, fed by
  the shared :class:`~repro.resilience.checkpoint.DrainController`.

On SIGTERM the controller makes the in-flight launch checkpoint itself
and raise :class:`~repro.resilience.checkpoint.DrainInterrupt`, which
the executor passes through untouched.  A restarted service re-runs the
request: completed launches reload from sidecars, the interrupted one
resumes from its checkpoint, the rest run fresh — recomputing only work
that was genuinely lost.  ``best_swl`` requests (a sweep of many short
runs) and backends without checkpoint support fall back to the plain
one-shot path.
"""

from __future__ import annotations

import os
import pickle
import shutil
from pathlib import Path
from typing import Callable, Optional, Union

from ..analysis import ensure_module_linted
from ..analysis.interproc import ensure_module_analyzed
from ..callgraph import analyze_kernel, build_call_graph
from ..cars.policy import PolicyMemory
from ..core.backends import resolve_backend
from ..core.techniques import resolve_technique
from ..harness._runner import RunResult
from ..harness.executor import ExperimentRequest, execute_request
from ..metrics.counters import SimStats
from ..resilience.checkpoint import (
    DrainController,
    latest_checkpoint,
    resume_run,
)
from ..workloads.spec import Workload

__all__ = ["make_resumable_runner"]


def _write_sidecar(path: Path, stats: SimStats, memory) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps((stats, memory), protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def make_resumable_runner(
    base_dir: Union[str, Path],
    drain: DrainController,
    *,
    every_cycles: Optional[int] = None,
) -> Callable[[ExperimentRequest, Workload], RunResult]:
    """Runner with per-launch resume state under ``base_dir``.

    ``every_cycles`` additionally enables periodic (rolling) checkpoints
    while a launch is healthy; ``None`` checkpoints only on drain.
    """
    base = Path(base_dir)

    def run(request: ExperimentRequest, workload: Workload) -> RunResult:
        if request.technique == "best_swl":
            return execute_request(request, workload)
        technique = resolve_technique(request.technique)
        backend = resolve_backend(request.config.backend)
        if not backend.supports_checkpoint:
            return execute_request(request, workload)

        # Mirrors run_workload_batch stage for stage; equivalence is
        # enforced by ResultStore.save's divergence cross-check.
        module = workload.module(inlined=technique.use_inlined)
        ensure_module_linted(module, workload.name)
        interproc = ensure_module_analyzed(module, workload.name).summary()
        traces = workload.traces(inlined=technique.use_inlined)
        graph = (
            build_call_graph(module) if technique.requires_analysis else None
        )
        cfg = technique.adjust_config(request.config)
        gpu_cls = resolve_backend(cfg.backend).gpu_cls

        workdir = base / request.store_key(workload)
        memory = PolicyMemory()
        total = SimStats()
        for index, trace in enumerate(traces):
            sidecar = workdir / f"launch-{index:04d}.done"
            if sidecar.is_file():
                try:
                    with open(sidecar, "rb") as fh:
                        kernel_stats, saved_memory = pickle.load(fh)
                except Exception:
                    # Unreadable sidecar (stale build, torn write that
                    # somehow survived the rename): recompute the launch.
                    sidecar.unlink()
                else:
                    if saved_memory is not None:
                        memory = saved_memory
                    total.merge_kernel(kernel_stats)
                    continue
            ckpt_dir = workdir / f"ckpt-{index:04d}"
            policy = drain.policy_for(ckpt_dir, every_cycles=every_cycles)
            resumable = latest_checkpoint(ckpt_dir)
            if resumable is not None:
                gpu, _ = resume_run(resumable, checkpoint=policy)
                kernel_stats = gpu.stats
                ctx = gpu.ctx
            else:
                kernel_stats = SimStats()
                analysis = (
                    analyze_kernel(graph, trace.kernel)
                    if graph is not None else None
                )
                ctx = technique.make_context(
                    trace, cfg, kernel_stats, analysis, memory
                )
                gpu_cls(cfg, ctx, kernel_stats).run(trace, checkpoint=policy)
            # A resumed GPU carries an *unpickled copy* of the policy
            # memory; later launches must continue from that copy, not
            # the fresh one built above.
            resumed_memory = getattr(
                getattr(ctx, "policy", None), "memory", None
            )
            if resumed_memory is not None:
                memory = resumed_memory
            _write_sidecar(sidecar, kernel_stats, memory)
            shutil.rmtree(ckpt_dir, ignore_errors=True)
            total.merge_kernel(kernel_stats)

        shutil.rmtree(workdir, ignore_errors=True)
        return RunResult(workload.name, technique.name, cfg, total, interproc)

    return run
