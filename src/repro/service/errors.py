"""Concrete service failures and their HTTP mapping.

The *base* classes (:class:`~repro.resilience.errors.ServiceError`,
:class:`~repro.resilience.errors.DeadlineExceededError`) live in the
resilience taxonomy so the CLI exit-code mapping and ``repro.api`` can
import them without touching this package; the subclasses here are the
ones the admission controller and scheduler actually raise.  Each
carries an ``http_status`` and a stable ``code`` string, so the HTTP
adapter maps failures to distinct statuses and the client re-raises the
same typed error from a response body (:func:`error_for_code`).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..resilience.errors import (
    DeadlineExceededError,
    ServiceError,
    SimulationError,
)

__all__ = [
    "AdmissionError",
    "CircuitOpenError",
    "InvalidRequestError",
    "JobNotFoundError",
    "QueueFullError",
    "QuotaExceededError",
    "RateLimitedError",
    "ResultNotReadyError",
    "ServiceUnavailableError",
    "error_for_code",
    "http_status_for",
]


class AdmissionError(ServiceError):
    """Base for submissions refused before any work is queued."""

    http_status = 429
    code = "admission_refused"


class QuotaExceededError(AdmissionError):
    """The tenant is at its max-queued or max-concurrent quota."""

    http_status = 429
    code = "quota_exceeded"


class RateLimitedError(AdmissionError):
    """The tenant's token bucket is empty; retry after ``retry_after``."""

    http_status = 429
    code = "rate_limited"

    def __init__(
        self, message: str = "", *, retry_after: float = 0.0, diagnostics=None
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.retry_after = retry_after


class CircuitOpenError(AdmissionError):
    """The tenant's circuit breaker is open after repeated failures."""

    http_status = 503
    code = "circuit_open"


class QueueFullError(AdmissionError):
    """The global queue passed its high-watermark (load shedding)."""

    http_status = 503
    code = "queue_full"


class ServiceUnavailableError(ServiceError):
    """The service is draining (or not yet ready) and takes no new work."""

    http_status = 503
    code = "unavailable"


class InvalidRequestError(ServiceError):
    """The submission body does not describe a valid experiment request."""

    http_status = 400
    code = "invalid_request"


class JobNotFoundError(ServiceError):
    """No journaled job has this id."""

    http_status = 404
    code = "job_not_found"


class ResultNotReadyError(ServiceError):
    """The job exists but has not produced a result (yet, or ever)."""

    http_status = 409
    code = "result_not_ready"


_ERROR_BY_CODE: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        AdmissionError,
        QuotaExceededError,
        RateLimitedError,
        CircuitOpenError,
        QueueFullError,
        ServiceUnavailableError,
        InvalidRequestError,
        JobNotFoundError,
        ResultNotReadyError,
        DeadlineExceededError,
    )
}


def error_for_code(code: str, message: str = "") -> ServiceError:
    """Rebuild the typed error a response body's ``code`` names.

    Unknown codes (an older client against a newer server) degrade to
    the :class:`ServiceError` base rather than failing the decode.
    """
    cls: Optional[Type[ServiceError]] = _ERROR_BY_CODE.get(code)
    if cls is RateLimitedError:
        return RateLimitedError(message)
    if cls is None:
        err = ServiceError(message)
        err.code = code  # preserve what the server actually said
        return err
    return cls(message)


def http_status_for(exc: BaseException) -> int:
    """HTTP response status for *exc*.

    Typed service errors carry their own mapping; any other simulator
    failure is an internal error (the job machinery normally absorbs
    those into job state instead of letting them escape to transport).
    """
    if isinstance(exc, ServiceError):
        return exc.http_status
    if isinstance(exc, SimulationError):
        return 500
    return 500
