"""Job records: the unit of work the journal persists and recovers.

One job is one :class:`~repro.harness.executor.ExperimentRequest` plus
its service-side lifecycle.  The full request rides along in every
``submitted`` journal entry, so recovery needs nothing but the WAL — the
in-memory job table is a pure cache.

State machine::

    submitted ──> running ──> done
        │            │  └───> failed
        │            └──────> retrying ──> running (again)
        └──(deadline/cancel)─> cancelled   (also from running/retrying)

``done``/``failed``/``cancelled`` are terminal.  ``retrying`` is only
entered for *transient* failures (``ExecutorError.transient``);
deterministic :class:`~repro.resilience.errors.SimulationError`\\ s go
straight to ``failed`` — replaying them cannot go differently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Dict, Optional

from ..harness.executor import ExperimentRequest

__all__ = ["JobRecord", "JobState", "TERMINAL_STATES"]


class JobState(str, Enum):
    """Lifecycle states a job moves through (journaled on every change)."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    RETRYING = "retrying"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # journal lines carry the bare value
        return self.value


#: States no transition leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Legal transitions (enforced by :meth:`JobRecord.advance`).
_TRANSITIONS = {
    JobState.SUBMITTED: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {
        JobState.DONE, JobState.FAILED, JobState.RETRYING,
        JobState.CANCELLED,
    },
    JobState.RETRYING: {JobState.RUNNING, JobState.CANCELLED,
                        JobState.FAILED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}


@dataclass(frozen=True)
class JobRecord:
    """One job's journaled state (immutable; transitions make new records).

    ``deadline`` is absolute wall-clock seconds (``time.time()`` scale)
    so it survives a restart; ``None`` means no deadline.  ``error`` and
    ``error_code`` describe the final failure (or cancellation reason);
    ``store_key`` is filled once computed so restart-time dedupe against
    the result store needs no workload compilation.
    """

    job_id: str
    tenant: str
    request: ExperimentRequest
    state: JobState = JobState.SUBMITTED
    submitted_at: float = 0.0
    deadline: Optional[float] = None
    attempts: int = 0
    error: str = ""
    error_code: str = ""
    store_key: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def recovered(self) -> "JobRecord":
        """The record re-queued after a service restart.

        Recovery legitimately rewinds ``running``/``retrying`` back to
        ``submitted`` — the transition table forbids that in normal
        operation, so this bypasses :meth:`advance` on purpose.
        """
        return replace(self, state=JobState.SUBMITTED)

    def advance(self, state: JobState, **changes: Any) -> "JobRecord":
        """A copy in *state* (validating the transition) with *changes*."""
        if state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        return replace(self, state=state, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "request": self.request.to_dict(),
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "deadline": self.deadline,
            "attempts": self.attempts,
            "error": self.error,
            "error_code": self.error_code,
            "store_key": self.store_key,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=data["job_id"],
            tenant=data["tenant"],
            request=ExperimentRequest.from_dict(data["request"]),
            state=JobState(data["state"]),
            submitted_at=data.get("submitted_at", 0.0),
            deadline=data.get("deadline"),
            attempts=data.get("attempts", 0),
            error=data.get("error", ""),
            error_code=data.get("error_code", ""),
            store_key=data.get("store_key", ""),
        )
