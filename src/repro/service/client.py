"""Blessed client surface: :func:`submit_plan` / :class:`JobHandle`.

Stdlib-only (``urllib.request``), mirroring the HTTP adapter.  Typed
service failures round-trip: an error response body's ``code`` rebuilds
the same :class:`~repro.resilience.errors.ServiceError` subclass the
server raised (:func:`~repro.service.errors.error_for_code`), so client
code handles ``RateLimitedError`` / ``DeadlineExceededError`` / … the
same way in-process callers do.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional, Union

from ..harness._runner import RunResult
from ..harness.executor import ExperimentPlan, ExperimentRequest
from ..resilience.errors import ServiceError
from .errors import error_for_code
from .jobs import JobState

__all__ = ["JobHandle", "ServiceClient", "submit_plan"]


class ServiceClient:
    """Minimal JSON-over-HTTP client for one service instance."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8642",
        *,
        tenant: str = "default",
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"X-Repro-Tenant": self.tenant}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                payload = json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode())
            except ValueError:
                payload = {"error": {"code": "service_error",
                                     "message": str(exc)}}
            error = payload.get("error", {})
            raise error_for_code(
                error.get("code", "service_error"),
                error.get("message", str(exc)),
            ) from exc
        return payload

    # -- API ------------------------------------------------------------

    def submit(
        self,
        request: ExperimentRequest,
        *,
        deadline_s: Optional[float] = None,
    ) -> "JobHandle":
        payload = self.call("POST", "/v1/jobs", {
            "tenant": self.tenant,
            "request": request.to_dict(),
            "deadline_s": deadline_s,
        })
        return JobHandle(self, payload["job_id"])

    def submit_plan(
        self,
        requests: Iterable[ExperimentRequest],
        *,
        deadline_s: Optional[float] = None,
    ) -> List["JobHandle"]:
        payload = self.call("POST", "/v1/plans", {
            "tenant": self.tenant,
            "requests": [r.to_dict() for r in requests],
            "deadline_s": deadline_s,
        })
        return [JobHandle(self, job_id) for job_id in payload["job_ids"]]

    def health(self) -> Dict[str, Any]:
        return self.call("GET", "/v1/health")

    def ready(self) -> Dict[str, Any]:
        try:
            return self.call("GET", "/v1/ready")
        except ServiceError as exc:
            return {"ready": False, "error": str(exc)}

    def stats(self) -> Dict[str, Any]:
        return self.call("GET", "/v1/stats")

    def drain(self) -> Dict[str, Any]:
        return self.call("POST", "/v1/drain")


class JobHandle:
    """One submitted job: poll, wait, fetch, cancel."""

    def __init__(self, client: ServiceClient, job_id: str) -> None:
        self.client = client
        self.job_id = job_id

    def __repr__(self) -> str:
        return f"JobHandle({self.job_id!r})"

    def poll(self) -> Dict[str, Any]:
        """The job's current journaled record (plus its event stream)."""
        return self.client.call("GET", f"/v1/jobs/{self.job_id}")

    def state(self) -> JobState:
        return JobState(self.poll()["state"])

    def cancel(self) -> Dict[str, Any]:
        return self.client.call("DELETE", f"/v1/jobs/{self.job_id}")

    def wait(
        self,
        timeout: float = 300.0,
        *,
        poll_interval: float = 0.25,
    ) -> JobState:
        """Poll until the job is terminal (or *timeout* elapses)."""
        deadline = time.monotonic() + timeout
        while True:
            state = self.state()
            if state in (JobState.DONE, JobState.FAILED,
                         JobState.CANCELLED):
                return state
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {self.job_id} still {state.value} after "
                    f"{timeout}s"
                )
            time.sleep(poll_interval)

    def result(
        self, *, wait: bool = True, timeout: float = 300.0
    ) -> RunResult:
        """The finished job's :class:`RunResult`.

        With ``wait=True`` (default) blocks until terminal first.  A job
        that ended ``failed``/``cancelled`` raises the typed error its
        journaled ``error_code`` names.
        """
        if wait:
            state = self.wait(timeout)
            if state is not JobState.DONE:
                record = self.poll()
                raise error_for_code(
                    record.get("error_code") or "service_error",
                    record.get("error")
                    or f"job {self.job_id} ended {state.value}",
                )
        payload = self.client.call(
            "GET", f"/v1/jobs/{self.job_id}/result"
        )
        return RunResult.from_dict(payload["result"])


def submit_plan(
    plan: Union[ExperimentPlan, Iterable[ExperimentRequest]],
    *,
    url: str = "http://127.0.0.1:8642",
    tenant: str = "default",
    deadline_s: Optional[float] = None,
    client: Optional[ServiceClient] = None,
) -> List[JobHandle]:
    """Submit every request of *plan* to a running service.

    *plan* is an :class:`~repro.harness.executor.ExperimentPlan` or any
    iterable of requests.  Returns one :class:`JobHandle` per request,
    in plan order; ``[h.result() for h in handles]`` then mirrors
    ``plan.execute()`` against the remote service.
    """
    if client is None:
        client = ServiceClient(url, tenant=tenant)
    requests = (
        plan.requests if isinstance(plan, ExperimentPlan) else list(plan)
    )
    return client.submit_plan(requests, deadline_s=deadline_s)
