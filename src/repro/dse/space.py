"""The declarative design-space DSL.

A :class:`Space` is a parameter grid with *derived columns* and
*conditions*, declared in the style of the IML-CP-Proxy simulator DSL:

    space = (
        Space()
        .add_parameter("workload", ["SSSP", "MST"])
        .add_parameter("limit", [2, 4, 8])
        .add_function("technique", lambda limit: f"swl_{limit}")
        .add_condition("skip_tiny", lambda limit: limit >= 4)
    )

* ``add_parameter`` axes span the grid (their Cartesian product).
* ``add_function`` columns are computed per row; their dependencies are
  read off the function's signature (any parameter or previously added
  function), with extra constants bound via ``params=``.
* ``add_condition`` predicates prune rows; they run at their declaration
  position, so later (possibly expensive) functions never see pruned
  rows.

The reserved columns ``workload``, ``technique``, ``config`` and
``sweep`` give each surviving row its meaning as one experiment cell:
:meth:`Space.compile_requests` turns them into deduplicated
:class:`~repro.harness.executor.ExperimentRequest` objects, which is the
hook :meth:`ExperimentPlan.from_space
<repro.harness.executor.ExperimentPlan.from_space>` builds on.  Because
requests are content-addressed, two equivalent spaces declared in any
order compile to byte-identical store keys.
"""

from __future__ import annotations

import inspect
from itertools import product
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config.gpu_config import GPUConfig
from ..harness.executor import (
    Executor,
    ExperimentPlan,
    ExperimentRequest,
)
from ..harness._runner import RunResult

#: Row columns with experiment-cell meaning (everything else is free).
RESERVED_COLUMNS = ("workload", "technique", "config", "sweep")


class SpaceError(ValueError):
    """A malformed space declaration (bad name, unknown dependency, …)."""


def _dependencies(
    name: str, fn: Callable[..., Any], bound: Dict[str, Any],
    known: Sequence[str],
) -> Tuple[str, ...]:
    """Column names *fn* reads, from its signature minus bound params."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError) as exc:
        raise SpaceError(f"{name!r}: cannot inspect its signature") from exc
    deps: List[str] = []
    for param in signature.parameters.values():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            raise SpaceError(
                f"{name!r}: *args/**kwargs are ambiguous as dependencies; "
                f"declare explicit column-named parameters"
            )
        if param.name in bound:
            continue
        if param.name not in known:
            if param.default is not param.empty:
                continue  # an optional knob, not a column read
            raise SpaceError(
                f"{name!r} depends on unknown column {param.name!r} "
                f"(known: {', '.join(sorted(known)) or 'none'}; "
                f"declare parameters/functions before what reads them)"
            )
        deps.append(param.name)
    return tuple(deps)


class Space:
    """A declarative parameter grid with derived columns and pruning.

    Every ``add_*`` method validates eagerly and returns ``self`` for
    chaining.  The grid itself is only materialized by :meth:`rows` /
    :meth:`compile_requests`, and its enumeration order is canonical —
    the Cartesian product over parameters *sorted by name* — so the
    declaration order of parameters never changes what (or in which
    order) a compiled plan simulates.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Tuple[Any, ...]] = {}
        #: (kind, name, fn, deps, bound) in declaration order; ``kind``
        #: is "function" (adds a column) or "condition" (prunes).
        self._steps: List[
            Tuple[str, str, Callable[..., Any], Tuple[str, ...],
                  Dict[str, Any]]
        ] = []
        self._columns: List[str] = []

    # -- declaration ----------------------------------------------------

    def _check_new_column(self, name: str) -> None:
        if not isinstance(name, str) or not name.isidentifier():
            raise SpaceError(f"column name must be an identifier: {name!r}")
        if name in self._columns:
            raise SpaceError(f"column {name!r} is already declared")

    def add_parameter(self, name: str, values: Sequence[Any]) -> "Space":
        """Declare grid axis *name* spanning *values* (kept in order,
        deduplicated; must be non-empty)."""
        self._check_new_column(name)
        ordered: List[Any] = []
        for value in values:
            if value not in ordered:
                ordered.append(value)
        if not ordered:
            raise SpaceError(f"parameter {name!r} needs at least one value")
        self._parameters[name] = tuple(ordered)
        self._columns.append(name)
        return self

    def add_function(
        self,
        name: str,
        fn: Callable[..., Any],
        params: Optional[Dict[str, Any]] = None,
    ) -> "Space":
        """Declare derived column *name* computed per row by *fn*.

        *fn*'s parameter names select the columns it reads (declare those
        first); *params* binds extra keyword constants that are passed
        through verbatim and never treated as columns.
        """
        self._check_new_column(name)
        bound = dict(params or {})
        deps = _dependencies(name, fn, bound, self._columns)
        self._steps.append(("function", name, fn, deps, bound))
        self._columns.append(name)
        return self

    def add_condition(
        self,
        name: str,
        fn: Callable[..., Any],
        params: Optional[Dict[str, Any]] = None,
    ) -> "Space":
        """Declare pruning predicate *name*: rows where *fn* is falsy are
        dropped, at this position — later functions never run for them.
        """
        if not isinstance(name, str) or not name.isidentifier():
            raise SpaceError(f"condition name must be an identifier: {name!r}")
        bound = dict(params or {})
        deps = _dependencies(name, fn, bound, self._columns)
        self._steps.append(("condition", name, fn, deps, bound))
        return self

    # -- introspection --------------------------------------------------

    @property
    def columns(self) -> List[str]:
        """Every row column, in declaration order."""
        return list(self._columns)

    def __len__(self) -> int:
        """Surviving rows (materializes the grid)."""
        return sum(1 for _ in self.rows())

    # -- materialization ------------------------------------------------

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Yield surviving rows in canonical order.

        Canonical = the Cartesian product over parameters sorted by
        name, steps applied in declaration order.  Conditions prune
        mid-pipeline; surviving rows carry every parameter and derived
        column.
        """
        names = sorted(self._parameters)
        axes = [self._parameters[name] for name in names]
        for combo in product(*axes):
            row: Dict[str, Any] = dict(zip(names, combo))
            pruned = False
            for kind, name, fn, deps, bound in self._steps:
                kwargs = {dep: row[dep] for dep in deps}
                kwargs.update(bound)
                value = fn(**kwargs)
                if kind == "condition":
                    if not value:
                        pruned = True
                        break
                else:
                    row[name] = value
            if not pruned:
                yield row

    @staticmethod
    def _request_for(row: Dict[str, Any]) -> ExperimentRequest:
        workload = row.get("workload")
        if not isinstance(workload, str):
            raise SpaceError(
                "every row needs a string 'workload' column to compile "
                f"(got {workload!r}); declare it as a parameter or function"
            )
        technique = row.get("technique", "baseline")
        name = technique if isinstance(technique, str) else technique.name
        config = row.get("config")
        if config is None:
            config = GPUConfig()
        elif not isinstance(config, GPUConfig):
            raise SpaceError(
                f"'config' column must be a GPUConfig, got {type(config)!r}"
            )
        sweep = row.get("sweep") or ()
        return ExperimentRequest(
            workload=workload, technique=name, config=config,
            sweep=tuple(sweep),
        )

    def compiled_rows(self) -> List[Tuple[Dict[str, Any], ExperimentRequest]]:
        """Every surviving row paired with its experiment cell."""
        return [(row, self._request_for(row)) for row in self.rows()]

    def compile_requests(self) -> List[ExperimentRequest]:
        """Deduplicated requests in canonical order (the
        :meth:`ExperimentPlan.add_space
        <repro.harness.executor.ExperimentPlan.add_space>` hook)."""
        ordered: List[ExperimentRequest] = []
        seen = set()
        for _, request in self.compiled_rows():
            if request not in seen:
                seen.add(request)
                ordered.append(request)
        return ordered


def explore(
    *,
    space: Space,
    executor: Optional[Executor] = None,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Compile *space*, execute it, and return the enriched rows.

    Each returned row is the DSL row plus two keys: ``request`` (the
    compiled :class:`~repro.harness.executor.ExperimentRequest`) and
    ``result`` (its :class:`~repro.harness._runner.RunResult`).  Rows
    that deduplicate onto the same cell share one result object.  Pass
    an *executor* to reuse its memo/store wiring; otherwise a fresh one
    with *jobs* workers is built.
    """
    if executor is None:
        executor = Executor(jobs=jobs)
    plan = ExperimentPlan.from_space(space=space, executor=executor)
    results: Dict[ExperimentRequest, RunResult] = plan.execute()
    enriched: List[Dict[str, Any]] = []
    for row, request in space.compiled_rows():
        enriched.append({**row, "request": request,
                         "result": results[request]})
    return enriched
