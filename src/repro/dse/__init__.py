"""Design-space exploration: the declarative DSL and the policy tuner.

Two layers, both orchestration-only (this package is digest-exempt — it
decides *which* cells to simulate, never what a cell computes):

* :class:`Space` — a parameter grid with dependency-aware derived
  columns and pruning conditions that compiles to deduplicated
  :class:`~repro.harness.executor.ExperimentRequest` cells;
  :func:`explore` is the one-call compile-execute-join convenience.
* :class:`Tuner` — searches the CARS policy space (:class:`CarsPolicy`:
  watermark scheme x warp scheduler x state-machine threshold) per
  workload class with successive-halving pruning, reporting a
  best-policy-per-workload table against :data:`DEFAULT_POLICY`.

The blessed import path is :mod:`repro.api`, which re-exports
``Space`` / ``Tuner`` / ``explore``; the CLI surface is ``repro tune``.
"""

from .space import RESERVED_COLUMNS, Space, SpaceError, explore
from .tuner import (
    DEFAULT_POLICY,
    TUNE_SCHEMA_VERSION,
    CarsPolicy,
    ClassSearch,
    TuneReport,
    Tuner,
    WorkloadBest,
    default_policy_grid,
)

__all__ = [
    "CarsPolicy",
    "ClassSearch",
    "DEFAULT_POLICY",
    "RESERVED_COLUMNS",
    "Space",
    "SpaceError",
    "TUNE_SCHEMA_VERSION",
    "TuneReport",
    "Tuner",
    "WorkloadBest",
    "default_policy_grid",
    "explore",
]
