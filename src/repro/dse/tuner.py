"""CARS policy auto-tuning over the design-space DSL.

The paper fixes one allocation policy (the Fig 5 dynamic state machine,
greedy-then-oldest issue, engage-after-one-block thresholds) for every
figure.  :class:`Tuner` runs the search the paper never did: per
*workload class* (the Table II bottleneck taxonomy), it explores the
policy space

    watermark scheme x warp scheduler x state-machine threshold

with a grid seeded through the :class:`~repro.dse.space.Space` DSL and
pruned by successive halving — each rung adds one more workload of the
class, ranks the surviving policies by their geomean cycles ratio
against the paper default, and keeps the top ``1/eta`` (the default is
never pruned, so every ratio stays anchored).  Every cell is an
ordinary :class:`~repro.harness.executor.ExperimentRequest`, so the
whole search is store-deduplicated: re-running a finished search
simulates nothing.

The objective is :func:`repro.obs.objective.objective` (cycles); each
winner is reported with its CPI-share delta against the default
(:func:`repro.obs.objective.feature_delta`) so the table shows *what*
the winning policy traded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from math import ceil
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config.gpu_config import GPUConfig
from ..core.techniques import resolve_technique
from ..harness._runner import RunResult, geomean
from ..harness.executor import Executor, ExperimentPlan
from ..obs.objective import OBJECTIVE_METRIC, feature_delta, top_movers
from ..workloads import make_workload
from .space import Space

#: Version of the ``Tuner`` report / ``repro tune --json`` payload.
TUNE_SCHEMA_VERSION = 1

DEFAULT_SCHEMES = ("dynamic", "low", "nxlow2", "nxlow4", "high")
DEFAULT_SCHEDULERS = ("gto", "lrr")
#: Fig 5 engage thresholds explored for the dynamic scheme (static
#: watermarks have no state machine, so only the first value applies).
DEFAULT_MIN_SAMPLES = (1, 2)


@dataclass(frozen=True)
class CarsPolicy:
    """One point of the CARS policy space.

    ``scheme`` picks the reservation mode (``dynamic`` = the Fig 5 state
    machine; ``low`` / ``nxlow<n>`` / ``high`` pin that watermark),
    ``scheduler`` the warp issue order, and ``min_samples`` the state
    machine's engage threshold (blocks per measured level).  The default
    instance is exactly the paper's configuration.
    """

    scheme: str = "dynamic"
    scheduler: str = "gto"
    min_samples: int = 1

    def __post_init__(self) -> None:
        if self.scheduler not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        resolve_technique(self.technique)  # rejects unknown schemes

    @property
    def technique(self) -> str:
        """The technique name pinning this policy's reservation mode."""
        return "cars" if self.scheme == "dynamic" else f"cars_{self.scheme}"

    def apply(self, config: GPUConfig) -> GPUConfig:
        """*config* with this policy's scheduler and thresholds applied."""
        return config.with_scheduler(self.scheduler).with_cars_policy(
            min_samples=self.min_samples
        )

    @property
    def label(self) -> str:
        text = f"{self.scheme}+{self.scheduler}"
        if self.min_samples != 1:
            text += f"+ms{self.min_samples}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "scheduler": self.scheduler,
            "min_samples": self.min_samples,
            "technique": self.technique,
        }


#: The paper's own policy: dynamic state machine, GTO, engage after one
#: block per seed population.
DEFAULT_POLICY = CarsPolicy()


def default_policy_grid(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    min_samples: Sequence[int] = DEFAULT_MIN_SAMPLES,
) -> List[CarsPolicy]:
    """The grid the tuner searches by default (12 policies).

    ``min_samples`` beyond the first value is only meaningful for the
    dynamic scheme — static watermarks have no state machine — so those
    variants are emitted for ``dynamic`` alone, keeping the grid free of
    cells that could only duplicate results under different keys.
    """
    policies: List[CarsPolicy] = []
    for scheme in schemes:
        for scheduler in schedulers:
            thresholds = min_samples if scheme == "dynamic" else min_samples[:1]
            for samples in thresholds:
                policies.append(CarsPolicy(
                    scheme=scheme, scheduler=scheduler, min_samples=samples
                ))
    return policies


@dataclass
class WorkloadBest:
    """The per-workload row of the best-policy table."""

    workload: str
    bottleneck: str
    policy: CarsPolicy
    cycles: int
    default_cycles: int
    #: CPI-share shift of the winner against the default (top movers).
    feature_shift: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.default_cycles / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "bottleneck": self.bottleneck,
            "policy": self.policy.to_dict(),
            "label": self.policy.label,
            "cycles": self.cycles,
            "default_cycles": self.default_cycles,
            "speedup": round(self.speedup, 4),
            "feature_shift": {
                k: round(v, 4) for k, v in self.feature_shift.items()
            },
        }


@dataclass
class ClassSearch:
    """One workload class's successive-halving trajectory."""

    bottleneck: str
    workloads: List[str]  # rung order (seeded)
    rungs: List[Dict[str, Any]] = field(default_factory=list)
    winner: Optional[CarsPolicy] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bottleneck": self.bottleneck,
            "workloads": list(self.workloads),
            "rungs": list(self.rungs),
            "winner": self.winner.to_dict() if self.winner else None,
        }


@dataclass
class TuneReport:
    """Everything one :meth:`Tuner.search` produced."""

    workloads: List[str]
    budget: Optional[int]
    seed: int
    cells: int
    classes: List[ClassSearch]
    best: List[WorkloadBest]
    executor_summary: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TUNE_SCHEMA_VERSION,
            "objective": OBJECTIVE_METRIC,
            "workloads": list(self.workloads),
            "budget": self.budget,
            "seed": self.seed,
            "cells": self.cells,
            "classes": [c.to_dict() for c in self.classes],
            "best": [b.to_dict() for b in self.best],
            "executor": self.executor_summary,
        }

    def render_text(self) -> str:
        lines = [
            f"CARS policy search: {len(self.workloads)} workload(s), "
            f"{len(self.classes)} class(es), {self.cells} cell(s)"
            + (f" (budget {self.budget})" if self.budget is not None else ""),
            "",
            f"{'workload':<12} {'class':<22} {'best policy':<20} "
            f"{'cycles':>9} {'default':>9} {'speedup':>8}",
        ]
        for row in self.best:
            lines.append(
                f"{row.workload:<12} {row.bottleneck or '-':<22} "
                f"{row.policy.label:<20} {row.cycles:>9} "
                f"{row.default_cycles:>9} {row.speedup:>7.3f}x"
            )
            if row.feature_shift:
                shift = ", ".join(
                    f"{bucket} {value:+.3f}"
                    for bucket, value in row.feature_shift.items()
                )
                lines.append(f"{'':<12} cpi-share shift vs default: {shift}")
        if self.executor_summary:
            lines += ["", self.executor_summary]
        return "\n".join(lines)


class Tuner:
    """Search CARS policy per workload class (grid + successive halving).

    Args (keyword-only):
        workloads: workload names to tune over (validated eagerly).
        policies: the policy grid; default :func:`default_policy_grid`.
            The paper-default policy is always included (it anchors the
            ratios and is never pruned).
        budget: optional global cap on evaluated cells; rungs that do
            not fit are skipped (the first rung of a class is trimmed to
            fit rather than skipped, so small budgets still rank).
        seed: shuffles each class's rung (workload) order; everything
            else is deterministic, so equal seeds give equal searches.
        base_config: the hardware config policies are applied to
            (default: the Volta preset).
        executor: reuse an existing :class:`Executor` (its store makes
            repeated searches 100% warm); otherwise a serial one is
            built.
        eta: successive-halving keep factor (survivors = ceil(n/eta)).
    """

    def __init__(
        self,
        *,
        workloads: Sequence[str],
        policies: Optional[Sequence[CarsPolicy]] = None,
        budget: Optional[int] = None,
        seed: int = 0,
        base_config: Optional[GPUConfig] = None,
        executor: Optional[Executor] = None,
        eta: int = 2,
    ) -> None:
        if not workloads:
            raise ValueError("need at least one workload to tune")
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if budget is not None and budget < 2:
            raise ValueError("budget must allow at least two cells")
        self.workloads = list(dict.fromkeys(workloads))
        self.bottlenecks = {
            name: (make_workload(name).bottleneck or "unclassified")
            for name in self.workloads  # KeyError now, not mid-search
        }
        grid = list(policies) if policies is not None else default_policy_grid()
        if DEFAULT_POLICY not in grid:
            grid.insert(0, DEFAULT_POLICY)
        self.policies = grid
        self.budget = budget
        self.seed = seed
        self.base_config = base_config if base_config is not None else GPUConfig()
        self.executor = executor if executor is not None else Executor()
        self.eta = eta

    # -- internals ------------------------------------------------------

    def _evaluate(
        self, workload: str, policies: Sequence[CarsPolicy]
    ) -> Dict[CarsPolicy, RunResult]:
        """One rung: a Space over (workload x policies), executed."""
        space = (
            Space()
            .add_parameter("workload", [workload])
            .add_parameter("policy", policies)
            .add_function("technique", lambda policy: policy.technique)
            .add_function(
                "config",
                lambda policy, base: policy.apply(base),
                params={"base": self.base_config},
            )
        )
        plan = ExperimentPlan.from_space(space=space, executor=self.executor)
        results = plan.execute()
        return {
            row["policy"]: results[request]
            for row, request in space.compiled_rows()
        }

    def _rank(
        self,
        survivors: Sequence[CarsPolicy],
        evaluated: Dict[Tuple[str, CarsPolicy], RunResult],
        rung_workloads: Sequence[str],
    ) -> List[Tuple[CarsPolicy, float]]:
        """Policies ordered by geomean cycles ratio vs the default."""
        order = {policy: i for i, policy in enumerate(self.policies)}

        def ratio(policy: CarsPolicy) -> float:
            ratios = [
                evaluated[(w, policy)].stats.cycles
                / max(1, evaluated[(w, DEFAULT_POLICY)].stats.cycles)
                for w in rung_workloads
            ]
            return geomean(ratios)

        ranked = sorted(
            survivors, key=lambda p: (ratio(p), order.get(p, len(order)))
        )
        return [(policy, ratio(policy)) for policy in ranked]

    def _fit_first_rung(
        self, survivors: List[CarsPolicy], afford: int
    ) -> List[CarsPolicy]:
        """Trim a first rung to the remaining budget, keeping the default."""
        if len(survivors) <= afford:
            return survivors
        trimmed = survivors[:afford]
        if DEFAULT_POLICY not in trimmed:
            trimmed = survivors[:afford - 1] + [DEFAULT_POLICY]
        return trimmed

    # -- search ---------------------------------------------------------

    def search(self) -> TuneReport:
        """Run the full search and return the schema-versioned report."""
        rng = random.Random(self.seed)
        by_class: Dict[str, List[str]] = {}
        for name in self.workloads:
            by_class.setdefault(self.bottlenecks[name], []).append(name)

        cells = 0
        classes: List[ClassSearch] = []
        evaluated: Dict[Tuple[str, CarsPolicy], RunResult] = {}
        for bottleneck in sorted(by_class):
            names = list(by_class[bottleneck])
            rng.shuffle(names)
            search = ClassSearch(bottleneck=bottleneck, workloads=names)
            survivors = list(self.policies)
            rung_workloads: List[str] = []
            for rung, workload in enumerate(names):
                if self.budget is not None:
                    afford = self.budget - cells
                    if rung == 0:
                        survivors = self._fit_first_rung(survivors, afford)
                        if len(survivors) < 2:
                            break  # nothing left to compare
                    elif len(survivors) > afford:
                        break  # this rung no longer fits
                results = self._evaluate(workload, survivors)
                cells += len(results)
                for policy, result in results.items():
                    evaluated[(workload, policy)] = result
                rung_workloads.append(workload)
                ranked = self._rank(survivors, evaluated, rung_workloads)
                search.rungs.append({
                    "workload": workload,
                    "policies": len(survivors),
                    "ranking": [
                        {"label": policy.label, "ratio": round(r, 4)}
                        for policy, r in ranked
                    ],
                })
                if rung < len(names) - 1:
                    keep = max(1, ceil(len(survivors) / self.eta))
                    survivors = [policy for policy, _ in ranked[:keep]]
                    if DEFAULT_POLICY not in survivors:
                        survivors.append(DEFAULT_POLICY)
            if rung_workloads:
                final = self._rank(survivors, evaluated, rung_workloads)
                search.winner = final[0][0]
            classes.append(search)

        best = self._best_table(evaluated)
        return TuneReport(
            workloads=list(self.workloads),
            budget=self.budget,
            seed=self.seed,
            cells=cells,
            classes=classes,
            best=best,
            executor_summary=self.executor.stats.summary(),
        )

    def _best_table(
        self, evaluated: Dict[Tuple[str, CarsPolicy], RunResult]
    ) -> List[WorkloadBest]:
        order = {policy: i for i, policy in enumerate(self.policies)}
        table: List[WorkloadBest] = []
        for workload in self.workloads:
            scored = [
                (result.stats.cycles, order.get(policy, len(order)), policy)
                for (name, policy), result in evaluated.items()
                if name == workload
            ]
            if not scored:
                continue  # budget never reached this workload's rung
            scored.sort(key=lambda item: (item[0], item[1]))
            cycles, _, policy = scored[0]
            default = evaluated.get((workload, DEFAULT_POLICY))
            default_cycles = default.stats.cycles if default else cycles
            shift: Dict[str, float] = {}
            if default is not None and policy != DEFAULT_POLICY:
                shift = top_movers(feature_delta(
                    evaluated[(workload, policy)].stats, default.stats
                ))
            table.append(WorkloadBest(
                workload=workload,
                bottleneck=self.bottlenecks[workload],
                policy=policy,
                cycles=cycles,
                default_cycles=default_cycles,
                feature_shift=shift,
            ))
        return table
