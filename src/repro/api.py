"""Stable public API for the CARS reproduction.

This module is the supported entry point for programmatic use.  Everything
else under ``repro.*`` is implementation detail and may move between
releases; the names exported here (see ``__all__``) are kept stable:

* :class:`Simulation` — one (workload × technique × config) run:
  construct, :meth:`Simulation.run`, read :class:`SimStats` (and the full
  :class:`RunResult` on ``.result``).
* :class:`Sweep` — a batch of simulations over the workload × technique
  grid, deduplicated and served through the parallel executor with its
  content-addressed result store; :meth:`Sweep.report` renders the
  cycles/speedup table.
* :class:`Batch` — one (workload × technique) under N configurations in
  a single pass, sharing every config-independent stage (compile, lint,
  static analysis, traces, call graph) across the members.
* Design-space exploration: :class:`Space` (declarative parameter grid
  with derived columns and pruning, compiling to deduplicated
  :class:`ExperimentPlan` cells — see
  :meth:`ExperimentPlan.from_space`), :func:`explore` (compile, execute,
  join results back onto the rows), and :class:`Tuner` (per-workload-
  class CARS policy search over :class:`CarsPolicy` grids with
  successive-halving pruning; CLI twin: ``repro tune``).  Plan-level
  progress/resume is exposed via :meth:`ExperimentPlan.progress`
  (a :class:`PlanProgress`).
* Timing backends: ``Simulation``/``Sweep``/``Batch`` take
  ``backend="event"`` (the reference event-driven core) or
  ``backend="vectorized"`` (struct-of-arrays NumPy core); both produce
  byte-identical statistics by contract.  :func:`list_backends`
  enumerates the registry.
* The blessed types those return or accept: :class:`RunResult`,
  :class:`SimStats`, :class:`GPUConfig` (plus the :func:`volta` /
  :func:`ampere` presets), :class:`Executor` / :class:`ExperimentPlan`
  (the batch layer ``Sweep`` accepts), and the technique plugin surface:
  :class:`Technique`, :class:`AbiModel`, :func:`list_techniques`,
  :func:`resolve_technique`, :func:`register_technique`,
  :func:`register_technique_family`, :func:`register_abi_model`, and
  :data:`TECHNIQUE_REGISTRY` (read-only view of the fixed names).
* The failure taxonomy every run can raise: :class:`SimulationError` and
  its subclasses :class:`DeadlockError`, :class:`MaxCyclesError`,
  :class:`InvariantViolation`, :class:`WorkerCrashError`,
  :class:`UnknownTechniqueError` — catch the base class around any
  ``run()`` that might wedge; ``exc.diagnostics`` (when present) renders
  a per-warp state dump.
* The service surface (``repro serve``): :func:`submit_plan` submits an
  :class:`ExperimentPlan` (or any iterable of requests) to a running
  service and returns :class:`JobHandle` objects whose ``result()``
  blocks on the remote job; :class:`JobState` enumerates the journaled
  lifecycle, and :class:`ServiceError` (plus its typed subclasses, e.g.
  rate-limit or deadline failures) is what remote submission can raise —
  the HTTP error body round-trips back into the same class the server
  raised.  See docs/architecture.md §16.

Quick start::

    from repro.api import Simulation

    stats = Simulation(workload="MST", technique="cars").run()
    print(stats.cycles, stats.mpki())

Sweeps::

    from repro.api import Sweep

    sweep = Sweep(workloads=["MST", "SSSP"], techniques=["baseline", "cars"])
    results = sweep.run()
    print(sweep.report())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .config.gpu_config import GPUConfig, ampere, volta
from .core.backends import list_backends, resolve_backend
from .core.techniques import (
    AbiModel,
    TECHNIQUE_REGISTRY,
    Technique,
    list_techniques,
    register_abi_model,
    register_technique,
    register_technique_family,
    resolve_technique,
)
from .dse import (
    CarsPolicy,
    DEFAULT_POLICY,
    Space,
    SpaceError,
    TuneReport,
    Tuner,
    explore,
)
from .harness.executor import Executor, ExperimentPlan, PlanProgress
from .harness._runner import (
    RunResult,
    SWL_SWEEP,
    geomean,
    run_best_swl,
    run_workload,
    run_workload_batch,
)
from .harness.tables import format_table
from .metrics.counters import SimStats
from .resilience.errors import (
    DeadlockError,
    InvariantViolation,
    MaxCyclesError,
    ServiceError,
    SimulationError,
    UnknownTechniqueError,
    UnsupportedFeatureError,
    WorkerCrashError,
)
from .service import JobHandle, JobState, submit_plan
from .analysis.interproc import InterprocReport, analyze_module_interproc
from .workloads import Workload, make_workload
from .workloads.suite import SMOKE_NAMES, WORKLOAD_NAMES

__all__ = [
    # the facade objects
    "Simulation",
    "Sweep",
    "Batch",
    # design-space exploration
    "Space",
    "SpaceError",
    "Tuner",
    "CarsPolicy",
    "DEFAULT_POLICY",
    "TuneReport",
    "explore",
    # blessed result / config / batch types
    "RunResult",
    "SimStats",
    "GPUConfig",
    "Executor",
    "ExperimentPlan",
    "PlanProgress",
    # the timing-backend registry surface
    "list_backends",
    # the technique plugin surface
    "Technique",
    "AbiModel",
    "TECHNIQUE_REGISTRY",
    "list_techniques",
    "resolve_technique",
    "register_technique",
    "register_technique_family",
    "register_abi_model",
    # the failure taxonomy
    "SimulationError",
    "DeadlockError",
    "MaxCyclesError",
    "InvariantViolation",
    "WorkerCrashError",
    "UnknownTechniqueError",
    "UnsupportedFeatureError",
    # the service surface (repro serve)
    "submit_plan",
    "JobHandle",
    "JobState",
    "ServiceError",
    # conveniences those types are used with
    "volta",
    "ampere",
    "geomean",
    "WORKLOAD_NAMES",
    "SMOKE_NAMES",
    # static analysis
    "InterprocReport",
    "analyze_workload",
]

#: Accepted by ``technique=``: a registry name or a Technique object.
TechniqueLike = Union[str, Technique]
#: Accepted by ``workload=``: a suite name or a built Workload.
WorkloadLike = Union[str, Workload]


def _resolve_workload(workload: WorkloadLike) -> Workload:
    if isinstance(workload, str):
        return make_workload(workload)
    return workload


def analyze_workload(
    *, workload: WorkloadLike, inlined: bool = False
) -> InterprocReport:
    """Interprocedural register-pressure analysis of a workload binary.

    All arguments are keyword-only (like the rest of the facade).  Pure
    static computation (no simulation): per-kernel frame-depth and
    register-demand bounds, call-site occupancy intervals,
    liveness-tightened FRUs, and per-scheme predictions for every
    capacity-limited arm (CARS watermarks, RegDem arena, register-file
    cache).  Pass ``inlined=True`` to analyze the LTO binary the
    ``lto``/``cars`` techniques simulate.
    """
    resolved = _resolve_workload(workload)
    return analyze_module_interproc(resolved.module(inlined), resolved.name)


class Simulation:
    """One workload simulated under one technique and configuration.

    All constructor arguments are keyword-only.

    Args:
        workload: a suite workload name (see :data:`WORKLOAD_NAMES`) or a
            :class:`~repro.workloads.spec.Workload` you built yourself.
        technique: a :data:`TECHNIQUE_REGISTRY` name (``"baseline"``,
            ``"cars"``, ``"swl_4"``, …), a ``Technique`` object, or
            ``"best_swl"`` for the paper's swept static warp limiter.
        config: a :class:`GPUConfig`; defaults to the Volta-like preset.
        sweep: warp-limit candidates, only meaningful with
            ``technique="best_swl"`` (default: the paper's sweep).
        obs: an optional :class:`repro.obs.ObsSession` for event tracing
            and per-warp stall attribution.
        policy_memory: an optional
            :class:`~repro.cars.policy.PolicyMemory` carried across
            launches (the CARS dynamic policy's cross-launch state).
        backend: timing-backend name (see :func:`list_backends`;
            ``"event"`` or ``"vectorized"``).  ``None`` defers to
            ``config.backend``.  Backends are byte-identical by
            contract, so this changes how the run is computed, never
            what it computes.

    ``run()`` simulates to completion and returns the merged
    :class:`SimStats`; the surrounding :class:`RunResult` (config echo,
    energy model, speedup helpers) is kept on :attr:`result`.
    """

    def __init__(
        self,
        *,
        workload: WorkloadLike,
        technique: TechniqueLike = "baseline",
        config: Optional[GPUConfig] = None,
        sweep: Sequence[int] = SWL_SWEEP,
        obs=None,
        policy_memory=None,
        backend: Optional[str] = None,
    ) -> None:
        self.workload = _resolve_workload(workload)
        self.technique = technique
        self.config = config
        self.sweep = tuple(sweep)
        self.obs = obs
        self.policy_memory = policy_memory
        if backend is not None:
            resolve_backend(backend)  # fail at construction, with hints
        self.backend = backend
        self.result: Optional[RunResult] = None

    def run(self) -> SimStats:
        """Simulate (once); returns the run's :class:`SimStats`."""
        if self.result is None:
            if self.technique == "best_swl":
                self.result = run_best_swl(
                    self.workload, config=self.config, sweep=self.sweep,
                    backend=self.backend,
                )
            else:
                technique = (
                    resolve_technique(self.technique)
                    if isinstance(self.technique, str)
                    else self.technique
                )
                self.result = run_workload(
                    self.workload,
                    technique,
                    config=self.config,
                    obs=self.obs,
                    policy_memory=self.policy_memory,
                    backend=self.backend,
                )
        return self.result.stats

    @property
    def stats(self) -> SimStats:
        """The stats, running the simulation on first access."""
        return self.run()


class Sweep:
    """A (workloads × techniques) grid run through the executor.

    All constructor arguments are keyword-only.

    Args:
        workloads: suite workload names (the executor's result store is
            content-addressed by name, so ad-hoc ``Workload`` objects are
            not accepted here — wrap those in :class:`Simulation`).
        techniques: technique names / objects; ``"best_swl"`` is allowed.
        config: shared :class:`GPUConfig` for every cell (default Volta).
        jobs: worker processes (default 1 = serial, deterministic).
        executor: bring your own :class:`Executor` (overrides ``jobs``).
        backend: timing-backend name applied to every cell (``None``
            keeps ``config.backend``).  Store keys deliberately ignore
            the backend — byte-identical by contract — so a sweep rerun
            under another backend is served from the same warm store.

    ``run()`` executes the plan — deduplicated, memoized, store-backed —
    and returns ``{(workload, technique): RunResult}``.  ``report()``
    renders a per-workload table of cycles plus speedup over the first
    technique in ``techniques``.
    """

    def __init__(
        self,
        *,
        workloads: Sequence[str],
        techniques: Sequence[TechniqueLike] = ("baseline", "cars"),
        config: Optional[GPUConfig] = None,
        jobs: int = 1,
        executor: Optional[Executor] = None,
        backend: Optional[str] = None,
    ) -> None:
        unknown = [w for w in workloads if w not in WORKLOAD_NAMES]
        if unknown:
            raise KeyError(f"unknown workloads: {unknown}")
        self.workloads = list(workloads)
        self.techniques: List[str] = [
            t if isinstance(t, str) else t.name for t in techniques
        ]
        for name in self.techniques:
            if name != "best_swl":
                # Fail at construction (UnknownTechniqueError with
                # suggestions) rather than deep inside a worker pool.
                resolve_technique(name)
        self.config = config if config is not None else volta()
        if backend is not None:
            resolve_backend(backend)  # fail at construction, with hints
            self.config = self.config.with_backend(backend)
        self.executor = executor if executor is not None else Executor(jobs=jobs)
        self._results: Optional[Dict[Tuple[str, str], RunResult]] = None

    def plan(self) -> ExperimentPlan:
        """The deduplicated request batch this sweep will execute."""
        plan = ExperimentPlan(self.executor)
        for workload in self.workloads:
            for technique in self.techniques:
                if technique == "best_swl":
                    plan.add_best_swl(workload, config=self.config)
                else:
                    plan.add(workload, technique, config=self.config)
        return plan

    def run(self) -> Dict[Tuple[str, str], RunResult]:
        """Execute (once); returns ``{(workload, technique): RunResult}``."""
        if self._results is None:
            by_request = self.plan().execute()
            results: Dict[Tuple[str, str], RunResult] = {}
            for request, result in by_request.items():
                results[(request.workload, request.technique)] = result
            self._results = results
        return self._results

    def report(self) -> str:
        """Cycles per cell plus speedup over the first technique."""
        results = self.run()
        baseline_name = self.techniques[0]
        rows: Dict[str, Dict[str, float]] = {}
        for workload in self.workloads:
            row: Dict[str, float] = {}
            base = results[(workload, baseline_name)]
            for technique in self.techniques:
                result = results[(workload, technique)]
                row[f"{technique}_cycles"] = float(result.cycles)
                if technique != baseline_name:
                    row[f"{technique}_speedup"] = (
                        base.cycles / result.cycles if result.cycles else 0.0
                    )
            rows[workload] = row
        return format_table(rows)


class Batch:
    """One workload × one technique simulated under N configurations.

    The batched entry point the vectorized backend's struct-of-arrays
    design targets: every config-independent stage — the compile, the
    ABI/stack-safety lint gate, the interprocedural static analysis, the
    emulator traces, the call graph — runs once and is shared across all
    N timing simulations (a config sweep repeats only the timing model).
    Results are positionally aligned with ``configs`` and equal, member
    for member, what N independent :class:`Simulation` runs would
    produce (pinned by ``tests/test_backend_equivalence.py``).

    All constructor arguments are keyword-only.

    Args:
        workload: a suite workload name or a built ``Workload``.
        technique: a :data:`TECHNIQUE_REGISTRY` name or ``Technique``
            object (``"best_swl"`` is not batchable — it is itself a
            sweep; use :class:`Simulation`).
        configs: the :class:`GPUConfig` members to simulate.
        backend: timing-backend name applied to every member (``None``
            defers to each member's own ``config.backend``).
    """

    def __init__(
        self,
        *,
        workload: WorkloadLike,
        technique: TechniqueLike = "baseline",
        configs: Sequence[GPUConfig],
        backend: Optional[str] = None,
    ) -> None:
        if technique == "best_swl":
            raise ValueError(
                "best_swl is itself a sweep and cannot be batched; "
                "use Simulation(technique='best_swl') per config"
            )
        self.workload = _resolve_workload(workload)
        self.technique = (
            resolve_technique(technique)
            if isinstance(technique, str)
            else technique
        )
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("Batch requires at least one config")
        if backend is not None:
            resolve_backend(backend)  # fail at construction, with hints
        self.backend = backend
        self.results: Optional[List[RunResult]] = None

    def run(self) -> List[RunResult]:
        """Simulate (once); returns results aligned with ``configs``."""
        if self.results is None:
            self.results = run_workload_batch(
                self.workload,
                self.technique,
                configs=self.configs,
                backend=self.backend,
            )
        return self.results
