"""GPU hardware configurations.

Presets are *scaled-down* analogues of the paper's V100 and RTX 3070
targets: fewer SMs, fewer warp slots, and smaller caches so the Python
timing model runs in seconds.  All experiments report results normalized to
the baseline on the identical configuration (as the paper does), so uniform
scaling preserves relative behaviour; see DESIGN.md for the fidelity notes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class CacheConfig:
    """A sector-granular set-associative cache.

    The 32B sector is both the allocation and transfer unit (a "sectored"
    simplification of the V100's 128B-line/32B-sector L1).
    """

    size_bytes: int
    assoc: int
    sector_bytes: int = 32
    hit_latency: int = 20
    ports: int = 4  # sector lookups serviced per cycle
    mshrs: int = 32  # outstanding distinct miss sectors

    @property
    def num_sectors(self) -> int:
        return self.size_bytes // self.sector_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_sectors // self.assoc)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the result store's serialization)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheConfig":
        return cls(**data)


@dataclass(frozen=True)
class GPUConfig:
    """Full simulated-GPU configuration."""

    name: str = "V100-scaled"
    num_sms: int = 4
    max_warps_per_sm: int = 16
    max_blocks_per_sm: int = 4
    registers_per_sm: int = 1024  # warp-wide registers (128B each)
    shared_mem_per_sm: int = 48 * 1024
    schedulers_per_sm: int = 2
    scheduler: str = "gto"  # "gto" (greedy-then-oldest) or "lrr" (loose round-robin)
    # Execution latencies (cycles).
    alu_latency: int = 4
    fpu_latency: int = 4
    sfu_latency: int = 16
    smem_latency: int = 24
    ctrl_latency: int = 2
    stack_op_latency: int = 1  # CARS push/pop renames
    # Memory hierarchy.
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, assoc=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, assoc=8, hit_latency=90, ports=4, mshrs=64
        )
    )
    dram_latency: int = 220
    dram_ports: int = 3  # sectors serviced per cycle, GPU-wide
    # Per-warp limits.
    max_outstanding_loads: int = 8
    # Front end.
    icache_bytes: int = 16 * 1024
    icache_miss_penalty: int = 20
    # Behaviour switches used by the idealized configurations.
    l1_force_hit: bool = False  # the paper's ALL-HIT study
    unlimited_occupancy: bool = False  # Idealized Virtual Warps (Zorua-like)
    warp_limit: Optional[int] = None  # Static Wavefront Limiter (Best-SWL)
    # CARS-specific knobs.
    cars_extra_pipeline_cycles: int = 1  # issue + operand-collector stages
    cars_max_context_switches: int = 64
    # Completed blocks required *per measured allocation level* before the
    # Fig 5 state machine starts steering SMs.  1 is the paper's behaviour
    # (engage once each seed population has retired a block); larger
    # values trade adaptation speed for less noisy runtime averages, and
    # the `repro tune` search explores this as a policy threshold.
    cars_policy_min_samples: int = 1
    # RegDem (shared-memory register demotion): per-warp spill arena carved
    # out of shared memory.  One warp-wide register is 128 B (4 B x 32
    # lanes), so the default arena holds 8 demoted registers per warp; the
    # arena is charged against the block's shared-memory occupancy limit.
    regdem_smem_bytes_per_warp: int = 1024
    # Register-file cache: compiler-managed LRU cache of callee-saved
    # registers, carved out of the per-warp register allocation.
    rfcache_regs: int = 12
    # Static register compression (arXiv 2006.05693): the compiler
    # re-encodes the kernel's register footprint at this percentage of
    # the baseline linker demand, shrinking the allocation the block
    # scheduler sees; every function call pays ``regcomp_extra_cycles``
    # to unpack the callee's compressed frame metadata.
    regcomp_ratio_pct: int = 70
    regcomp_extra_cycles: int = 1
    # Timing backend that simulates this configuration (a name from
    # repro.core.backends; "event" or "vectorized").  Deliberately NOT
    # part of to_dict()/fingerprint(): every registered backend must
    # produce byte-identical results, so the backend choice must never
    # fork the result store (the store's save path cross-checks this —
    # see repro.harness.executor.ResultStore.save).
    backend: str = "event"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form: every *simulation-relevant* field, nested
        caches as dicts.  ``backend`` is excluded — it selects an
        implementation, not a simulated machine."""
        data = dataclasses.asdict(self)
        del data["backend"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GPUConfig":
        data = dict(data)
        data["l1"] = CacheConfig.from_dict(data["l1"])
        data["l2"] = CacheConfig.from_dict(data["l2"])
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable content digest over every simulated-machine field.

        The result store keys runs on this, so two configs that differ in
        any knob — even ones sharing a ``name`` — never alias each other.
        The one exception is ``backend``: backends are interchangeable by
        contract (byte-identical stats), so the same cell simulated under
        either backend shares one store entry.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def with_backend(self, backend: str) -> "GPUConfig":
        """A copy simulated by a different timing backend (same machine:
        ``name``, ``to_dict``, and ``fingerprint`` are unchanged)."""
        return replace(self, backend=backend)

    def with_l1_size(self, size_bytes: int) -> "GPUConfig":
        """A copy with a different L1 capacity (e.g. the 10MB-L1 study)."""
        return replace(
            self,
            name=f"{self.name}-l1-{size_bytes // 1024}k",
            l1=replace(self.l1, size_bytes=size_bytes),
        )

    def with_l1_ports(self, ports: int) -> "GPUConfig":
        """A copy with scaled L1 bandwidth (the Fig 17 port sweep)."""
        return replace(
            self, name=f"{self.name}-ports-{ports}", l1=replace(self.l1, ports=ports)
        )

    def with_warp_limit(self, limit: int) -> "GPUConfig":
        """A copy with an SWL warp limit."""
        return replace(self, name=f"{self.name}-swl-{limit}", warp_limit=limit)

    def with_force_hit(self) -> "GPUConfig":
        return replace(self, name=f"{self.name}-allhit", l1_force_hit=True)

    def with_unlimited_occupancy(self) -> "GPUConfig":
        return replace(
            self, name=f"{self.name}-idealvw", unlimited_occupancy=True
        )

    def with_regdem_arena(self, regs: int) -> "GPUConfig":
        """A copy whose RegDem shared-memory arena holds *regs* registers."""
        return replace(
            self,
            name=f"{self.name}-regdem-{regs}",
            regdem_smem_bytes_per_warp=128 * regs,
        )

    def with_rfcache_regs(self, regs: int) -> "GPUConfig":
        """A copy with a *regs*-entry register-file cache per warp."""
        return replace(self, name=f"{self.name}-rfc-{regs}", rfcache_regs=regs)

    def with_scheduler(self, scheduler: str) -> "GPUConfig":
        """A copy issued under a different warp scheduler (``gto``/``lrr``)."""
        if scheduler == self.scheduler:
            return self
        return replace(
            self, name=f"{self.name}-{scheduler}", scheduler=scheduler
        )

    def with_cars_policy(self, *, min_samples: int) -> "GPUConfig":
        """A copy whose Fig 5 state machine waits for *min_samples*
        completed blocks per allocation level before steering SMs."""
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if min_samples == self.cars_policy_min_samples:
            return self
        return replace(
            self,
            name=f"{self.name}-ms{min_samples}",
            cars_policy_min_samples=min_samples,
        )

    def with_regcomp_ratio(self, pct: int) -> "GPUConfig":
        """A copy whose regcomp arm compresses frames to *pct* percent."""
        if not 1 <= pct <= 100:
            raise ValueError("regcomp ratio must be in 1..100 percent")
        return replace(
            self, name=f"{self.name}-regcomp-{pct}", regcomp_ratio_pct=pct
        )


def volta() -> GPUConfig:
    """Scaled-down NVIDIA V100 (Volta) — the paper's baseline target."""
    return GPUConfig()


def ampere() -> GPUConfig:
    """Scaled-down RTX 3070 (Ampere) — the Fig 18 sensitivity target.

    Relative to the Volta preset it has more SMs but a smaller register
    file and L1 per SM (the RTX 3070 has 96KB more-shared L1 and a lower
    registers-to-warp-slot ratio), which shifts CARS's occupancy tradeoff —
    the effect behind MST flipping to Low-watermark in the paper.
    """
    return GPUConfig(
        name="RTX3070-scaled",
        num_sms=6,
        max_warps_per_sm=12,
        registers_per_sm=1536,
        shared_mem_per_sm=32 * 1024,
        l1=CacheConfig(size_bytes=24 * 1024, assoc=4),
    )


def huge_l1(base: Optional[GPUConfig] = None) -> GPUConfig:
    """The paper's 10MB-L1 idealized configuration (scaled: 2MB here)."""
    cfg = base if base is not None else volta()
    return cfg.with_l1_size(2 * 1024 * 1024)


PRESETS: Dict[str, GPUConfig] = {
    "volta": volta(),
    "ampere": ampere(),
}
