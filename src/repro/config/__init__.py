"""Simulated GPU configurations (scaled V100 / RTX 3070 and ideal variants)."""

from .gpu_config import CacheConfig, GPUConfig, volta, ampere, huge_l1, PRESETS

__all__ = ["CacheConfig", "GPUConfig", "volta", "ampere", "huge_l1", "PRESETS"]
