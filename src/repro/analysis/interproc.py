"""Context-sensitive interprocedural register-pressure analysis.

Where :mod:`repro.callgraph` stops at one scalar per kernel (the paper's
MaxStackDepth), this module walks the call graph *with* the CFG/dataflow
layer underneath and computes, per kernel:

* **Stack-occupancy intervals** at every call site — the best-case
  (Dijkstra over positive frame weights: cycles cannot lower a minimum)
  and worst-case (longest path over the SCC condensation) register-stack
  occupancy on entry to the callee's frame.  Recursion is handled by the
  paper's one-iteration rule (Section III-C) generalized to *annotated
  bounds*: a strongly connected component whose members all declare a
  ``recursion_bound`` contributes at most ``sum(bound_f)`` frames and
  ``sum(bound_f * fru_f)`` registers; an unannotated cycle makes the
  worst case unbounded (reported, never silently truncated).

* **Live callee-saved pressure** — liveness (non-conservative calls) over
  each device function tightens the declared PUSH-range FRU down to the
  registers actually live across some call plus the saved-RFP slot.

* **Per-scheme predictions** for the CARS allocation levels (Low /
  NxLow / High watermarks) *and* the rival plugin arms (``regdem``'s
  shared-memory arena, ``rfcache``'s register-file cache, ``regcomp``'s
  compressed static allocation with zero stack capacity): the *demand
  curve* ``W*(d)`` (worst register demand of any call chain of at most
  ``d`` frames) yields a guaranteed-trap-free depth per capacity, a
  static frame-depth bound that must dominate the simulator's observed
  peak stack depth, a sound trap *lower* bound (a call whose frame
  exceeds the whole capacity always overflows), and a closed-form
  estimate of spill bytes avoided versus the baseline ABI.  ``traps``
  is the generic ABI-overflow event count (CARS traps, RegDem arena
  overflows, rfcache evictions), so the same bounds apply to every arm;
  for the pushed-only arms the per-frame resident cost excludes the
  saved-RFP slot (only pushed registers occupy arena/cache slots),
  which keeps the lower bound sound.

Soundness contract (enforced by the property battery in
``tests/test_interproc.py`` and by ``repro analyze --validate``): for any
execution,

* ``frame_depth_bound`` (when finite) >= observed peak frame depth;
* ``guaranteed_trap_free`` implies zero observed traps;
* ``min_traps_per_call * calls`` <= observed traps;
* observed peak depth <= ``trap_free_depth`` implies zero observed traps.

The analysis is pure static computation over the linked module; results
are cached by :meth:`repro.isa.program.Module.content_digest` (the same
key the lint registry uses) via :func:`ensure_module_analyzed`.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..callgraph import CallGraph, KernelStackAnalysis, analyze_kernel, build_call_graph
from ..config.gpu_config import GPUConfig
from ..isa.opcodes import is_call
from ..isa.program import Function, Module
from .cfg import build_cfg
from .dataflow import Liveness, per_instruction_liveness, solve

#: Version of the ``to_dict`` / ``--json`` payload (golden-tested).
#: v2 added the ``regdem`` / ``rfcache`` scheme predictions; v3 added
#: ``regcomp`` (static register compression, arXiv 2006.05693).
INTERPROC_SCHEMA_VERSION = 3

#: Bytes of baseline spill-store traffic per pushed register: 4 B x 32 lanes.
_BYTES_PER_REG = 4 * 32

#: The canonical schemes predictions are emitted for: the CARS
#: allocation levels (``cars_low`` / ``cars_nxlow2`` / ``cars_high`` pin
#: exactly these) plus the rival plugin arms at their default knobs.
SCHEME_KEYS = ("low", "nxlow2", "high", "regdem", "rfcache", "regcomp")


@dataclass(frozen=True)
class CallSiteInterval:
    """Static stack-occupancy interval for one call-graph edge.

    Occupancy counts device-function frame registers resident on the
    register stack *including the callee's own frame* — i.e. the RSP
    depth just after the call completes, assuming nothing was evicted.
    """

    caller: str
    callee: str
    frame_regs: int  # the callee's frame size (its FRU)
    min_entry_regs: int
    max_entry_regs: Optional[int]  # None when recursion is unbounded

    def to_dict(self) -> Dict[str, Any]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "frame_regs": self.frame_regs,
            "min_entry_regs": self.min_entry_regs,
            "max_entry_regs": self.max_entry_regs,
        }


@dataclass(frozen=True)
class SchemePrediction:
    """Closed-form prediction for one CARS allocation level."""

    scheme: str
    regs_per_warp: int
    stack_capacity: int
    #: Deepest frame count guaranteed not to trap (None = any depth).
    trap_free_depth: Optional[int]
    guaranteed_trap_free: bool
    #: Sound lower bound on traps per dynamic call (0 or 1).
    min_traps_per_call: int
    #: Closed form: 128 B x pushed registers of the one-iteration worst
    #: chain that stay resident at this capacity (write traffic the
    #: baseline ABI would emit per traversal of that chain).
    spill_bytes_avoided: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "regs_per_warp": self.regs_per_warp,
            "stack_capacity": self.stack_capacity,
            "trap_free_depth": self.trap_free_depth,
            "guaranteed_trap_free": self.guaranteed_trap_free,
            "min_traps_per_call": self.min_traps_per_call,
            "spill_bytes_avoided": self.spill_bytes_avoided,
        }


@dataclass(frozen=True)
class KernelInterproc:
    """Everything the interprocedural analysis knows about one kernel."""

    kernel: str
    kernel_fru: int
    #: Static bound on simultaneous device-function frames (None =
    #: unbounded recursion reachable).  Must dominate the simulator's
    #: observed peak stack depth.
    frame_depth_bound: Optional[int]
    #: Static bound on total frame registers ever stacked (None likewise).
    worst_demand: Optional[int]
    cyclic: bool
    #: Reachable recursive functions lacking a recursion_bound annotation.
    unbounded_functions: Tuple[str, ...]
    #: Cumulative demand curve: ``demand_curve[d-1]`` = worst register
    #: demand over chains of at most ``d`` frames (truncated once it
    #: exceeds every scheme's capacity, or at the frame-depth bound).
    demand_curve: Tuple[int, ...]
    call_sites: Tuple[CallSiteInterval, ...]
    #: Liveness-tightened FRU per reachable device function.
    live_fru: Dict[str, int]
    declared_fru: Dict[str, int]
    predictions: Dict[str, SchemePrediction]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "kernel_fru": self.kernel_fru,
            "frame_depth_bound": self.frame_depth_bound,
            "worst_demand": self.worst_demand,
            "cyclic": self.cyclic,
            "unbounded_functions": list(self.unbounded_functions),
            "demand_curve": list(self.demand_curve),
            "call_sites": [site.to_dict() for site in self.call_sites],
            "live_fru": dict(sorted(self.live_fru.items())),
            "declared_fru": dict(sorted(self.declared_fru.items())),
            "predictions": {
                key: self.predictions[key].to_dict()
                for key in sorted(self.predictions)
            },
        }

    def trap_free_depth_for(self, capacity: int) -> Optional[int]:
        """Deepest frame count d with ``W*(d) <= capacity``.

        ``None`` means unlimited: either no chain exists at all or every
        possible chain fits (the curve ended below the capacity).
        """
        depth = 0
        for demand in self.demand_curve:
            if demand > capacity:
                return depth
            depth += 1
        if self.frame_depth_bound is not None and depth >= self.frame_depth_bound:
            return None  # every reachable depth fits
        if not self.demand_curve:
            return None  # call-free kernel
        # The curve was truncated while still under capacity only when it
        # already covered every capacity of interest; be conservative.
        return depth


@dataclass(frozen=True)
class InterprocReport:
    """Per-module interprocedural analysis (one entry per kernel)."""

    name: str
    module_digest: str
    kernels: Dict[str, KernelInterproc]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": INTERPROC_SCHEMA_VERSION,
            "name": self.name,
            "module_digest": self.module_digest,
            "kernels": {
                key: self.kernels[key].to_dict() for key in sorted(self.kernels)
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> Dict[str, Any]:
        """Compact static-feature block attached to ``RunResult``."""
        features: Dict[str, Any] = {"schema": INTERPROC_SCHEMA_VERSION}
        for kernel in sorted(self.kernels):
            info = self.kernels[kernel]
            features[kernel] = {
                "frame_depth_bound": info.frame_depth_bound,
                "worst_demand": info.worst_demand,
                "cyclic": info.cyclic,
                "call_sites": len(info.call_sites),
                "live_fru_total": sum(info.live_fru.values()),
                "declared_fru_total": sum(info.declared_fru.values()),
                "predictions": {
                    key: {
                        "stack_capacity": pred.stack_capacity,
                        "trap_free_depth": pred.trap_free_depth,
                        "guaranteed_trap_free": pred.guaranteed_trap_free,
                        "min_traps_per_call": pred.min_traps_per_call,
                    }
                    for key, pred in sorted(info.predictions.items())
                },
            }
        return features


# ---------------------------------------------------------------------------
# Core computations
# ---------------------------------------------------------------------------


def _component_weight(
    graph: CallGraph,
    component: FrozenSet[str],
    kernel: str,
) -> Optional[Tuple[int, int]]:
    """(frames, registers) a chain can accumulate inside *component*.

    None when the component recurses without a declared bound.  The
    kernel's own activation contributes no stacked frame (its frame is
    the statically allocated base allotment, not a stack entry).
    """
    cyclic = len(component) > 1 or any(
        name in graph.callees(name) for name in component
    )
    frames = 0
    regs = 0
    for name in sorted(component):
        if cyclic:
            bound = graph.recursion_bounds.get(name)
            if bound is None:
                return None
            count = max(0, bound)
        else:
            count = 1
        if name == kernel:
            # The root activation is not a stack frame; re-activations
            # (kernel-level recursion) would be.
            count = max(0, count - 1) if cyclic else 0
        frames += count
        regs += count * graph.fru.get(name, 0)
    return frames, regs


@dataclass(frozen=True)
class _CondensationBounds:
    """Longest-path results over the SCC condensation from one kernel."""

    frame_depth_bound: Optional[int]
    worst_demand: Optional[int]
    #: Per node: worst chain registers up to and including the node's
    #: component (None = unbounded on some path to it).
    arrive_regs: Dict[str, Optional[int]]
    unbounded_functions: Tuple[str, ...]


def _condensation_bounds(
    graph: CallGraph, kernel: str, reachable: FrozenSet[str]
) -> _CondensationBounds:
    components = [c & reachable for c in graph.sccs() if c & reachable]
    comp_of: Dict[str, int] = {}
    for i, members in enumerate(components):
        for name in members:
            comp_of[name] = i
    weights: List[Optional[Tuple[int, int]]] = [
        _component_weight(graph, members, kernel) for members in components
    ]
    unbounded = tuple(
        sorted(
            name
            for i, members in enumerate(components)
            if weights[i] is None
            for name in members
            if graph.recursion_bounds.get(name) is None
        )
    )

    # graph.sccs() yields components callees-first; process callers last
    # so each component's successors are already final.  arrive[i] is the
    # worst (frames, regs) of any condensation path from the kernel's
    # component through component i inclusive; None = not on a path from
    # the kernel, 'inf' = a path through an unbounded component.
    n = len(components)
    arrive: List[Optional[Tuple[Optional[int], Optional[int]]]] = [None] * n
    kernel_comp = comp_of[kernel]
    succs: List[set] = [set() for _ in range(n)]
    for caller in reachable:
        for callee in graph.callees(caller):
            if callee in comp_of and comp_of[callee] != comp_of[caller]:
                succs[comp_of[caller]].add(comp_of[callee])

    def merge(
        current: Optional[Tuple[Optional[int], Optional[int]]],
        frames: Optional[int],
        regs: Optional[int],
    ) -> Tuple[Optional[int], Optional[int]]:
        if current is None:
            return frames, regs
        cur_frames, cur_regs = current
        best_frames = (
            None
            if frames is None or cur_frames is None
            else max(cur_frames, frames)
        )
        best_regs = (
            None if regs is None or cur_regs is None else max(cur_regs, regs)
        )
        return best_frames, best_regs

    def add(
        base: Tuple[Optional[int], Optional[int]],
        weight: Optional[Tuple[int, int]],
    ) -> Tuple[Optional[int], Optional[int]]:
        if weight is None:
            return None, None
        frames, regs = base
        return (
            None if frames is None else frames + weight[0],
            None if regs is None else regs + weight[1],
        )

    # Topological order over the condensation: reverse of sccs() order.
    order = list(range(n - 1, -1, -1))
    position = {comp: pos for pos, comp in enumerate(order)}
    arrive[kernel_comp] = add((0, 0), weights[kernel_comp])
    for comp in order:
        state = arrive[comp]
        if state is None:
            continue
        for succ in succs[comp]:
            assert position[succ] > position[comp], "condensation not a DAG"
            arrive[succ] = merge(arrive[succ], *add(state, weights[succ]))

    best_frames: Optional[int] = 0
    best_regs: Optional[int] = 0
    for state in arrive:
        if state is None:
            continue
        frames, regs = state
        if best_frames is not None:
            best_frames = None if frames is None else max(best_frames, frames)
        if best_regs is not None:
            best_regs = None if regs is None else max(best_regs, regs)

    arrive_regs: Dict[str, Optional[int]] = {}
    for name in reachable:
        state = arrive[comp_of[name]]
        arrive_regs[name] = None if state is None else state[1]
    return _CondensationBounds(
        frame_depth_bound=best_frames,
        worst_demand=best_regs,
        arrive_regs=arrive_regs,
        unbounded_functions=unbounded,
    )


def _demand_curve(
    graph: CallGraph,
    kernel: str,
    max_depth: int,
) -> List[int]:
    """Cumulative worst-case demand ``W*(d)`` for d = 1..max_depth.

    ``W*(d)`` over-approximates the register demand of any call chain of
    at most ``d`` frames (walks may revisit recursive functions more
    often than their declared bounds allow — sound for an upper bound).
    The list is truncated when no deeper chain exists.
    """
    curve: List[int] = []
    best = 0
    frontier: Dict[str, int] = {kernel: 0}
    for _ in range(max_depth):
        nxt: Dict[str, int] = {}
        for node, regs in frontier.items():
            for callee in graph.callees(node):
                value = regs + graph.fru.get(callee, 0)
                if nxt.get(callee, -1) < value:
                    nxt[callee] = value
        if not nxt:
            break
        best = max(best, max(nxt.values()))
        curve.append(best)
        frontier = nxt
    return curve


def _min_entry_regs(
    graph: CallGraph, kernel: str, reachable: FrozenSet[str]
) -> Dict[str, int]:
    """Minimum stacked registers on entry to each function (Dijkstra).

    Frame weights are positive, so cycles can never lower a minimum —
    the shortest acyclic chain is the true best case.
    """
    dist: Dict[str, int] = {kernel: 0}
    heap: List[Tuple[int, str]] = [(0, kernel)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, d):
            continue
        for callee in graph.callees(node):
            nd = d + graph.fru.get(callee, 0)
            if callee not in dist or nd < dist[callee]:
                dist[callee] = nd
                heapq.heappush(heap, (nd, callee))
    return {name: dist[name] for name in reachable if name in dist}


def _live_fru(func: Function) -> int:
    """Liveness-tightened FRU: registers live across some call, plus RFP.

    A function whose pushed registers are all dead across its calls (or
    that makes no calls at all) only ever needs its saved-RFP slot
    resident — the declared FRU can be tightened to that.
    """
    if not func.callee_saved:
        return 1
    start, count = func.callee_saved
    block = frozenset(range(start, start + count))
    cfg = build_cfg(func)
    _, live_out = per_instruction_liveness(
        cfg, solve(Liveness(conservative_calls=False), cfg)
    )
    worst = 0
    for idx, inst in enumerate(func.instructions):
        if not is_call(inst.op):
            continue
        live_saved = len(block & live_out[idx])
        if live_saved > worst:
            worst = live_saved
    return worst + 1


def _call_site_intervals(
    graph: CallGraph,
    kernel: str,
    reachable: FrozenSet[str],
    min_entry: Dict[str, int],
    arrive_regs: Dict[str, Optional[int]],
) -> Tuple[CallSiteInterval, ...]:
    comp_of: Dict[str, int] = {}
    for i, members in enumerate(graph.sccs()):
        for name in members:
            comp_of[name] = i
    sites: List[CallSiteInterval] = []
    for caller in sorted(reachable):
        for callee in sorted(graph.callees(caller)):
            frame = graph.fru.get(callee, 0)
            base = min_entry.get(caller)
            if base is None:
                continue  # unreachable caller (defensive)
            worst_caller = arrive_regs.get(caller)
            if worst_caller is None:
                worst: Optional[int] = None
            elif comp_of.get(callee) == comp_of.get(caller):
                # Recursive edge: the caller's arrival bound already
                # accounts for every bounded activation of the component,
                # including the callee's frame.
                worst = worst_caller
            else:
                worst = worst_caller + frame
            sites.append(
                CallSiteInterval(
                    caller=caller,
                    callee=callee,
                    frame_regs=frame,
                    min_entry_regs=base + frame,
                    max_entry_regs=worst,
                )
            )
    return tuple(sites)


def _scheme_prediction(
    scheme: str,
    regs_per_warp: int,
    base: KernelStackAnalysis,
    info_frame_bound: Optional[int],
    info_worst_demand: Optional[int],
    curve: Sequence[int],
    min_frame: Optional[int],
    chain_regs: int,
    chain_frames: int,
    pushed_only: bool = False,
    capacity: Optional[int] = None,
) -> SchemePrediction:
    # Stack capacity defaults to whatever the allocation leaves above the
    # kernel's own frame; schemes with no register stack at all (regcomp
    # compresses the static allocation but spills every call boundary to
    # memory, exactly like the baseline ABI) override it explicitly —
    # deriving it from ``regs_per_warp`` would invent stack space out of
    # the *compressed* footprint.
    if capacity is None:
        capacity = max(0, regs_per_warp - base.kernel_fru)
    # trap_free_depth from the cumulative curve.
    depth: Optional[int] = 0
    for demand in curve:
        if demand > capacity:
            break
        depth = (depth or 0) + 1
    if not base.has_calls:
        depth = None
    elif depth == len(curve):
        # The curve ended (acyclic, fully enumerated) or was truncated at
        # the frame bound with everything fitting.
        if info_worst_demand is not None and info_worst_demand <= capacity:
            depth = None
    guaranteed = (
        not base.has_calls
        or (info_worst_demand is not None and info_worst_demand <= capacity)
    )
    # Every dynamic call traps when even the smallest reachable frame
    # exceeds the whole capacity.  Pushed-only arms (RegDem arena,
    # register-file cache) never hold the saved-RFP slot, so their
    # per-frame resident cost is one register smaller — using the full
    # FRU here would overstate the lower bound and break soundness.
    min_rate = 0
    min_resident = None
    if min_frame is not None:
        min_resident = min_frame - 1 if pushed_only else min_frame
    if base.has_calls and min_resident is not None and min_resident > capacity:
        min_rate = 1
    resident = min(capacity, chain_regs)
    avoided = max(0, resident - min(chain_frames, resident)) * _BYTES_PER_REG
    return SchemePrediction(
        scheme=scheme,
        regs_per_warp=regs_per_warp,
        stack_capacity=capacity,
        trap_free_depth=depth,
        guaranteed_trap_free=guaranteed,
        min_traps_per_call=min_rate,
        spill_bytes_avoided=avoided,
    )


def analyze_kernel_interproc(
    module: Module, graph: CallGraph, kernel: str
) -> KernelInterproc:
    """Full interprocedural analysis for one kernel root."""
    base = analyze_kernel(graph, kernel)
    reachable = frozenset(graph.reachable(kernel))
    bounds = _condensation_bounds(graph, kernel, reachable)
    # Every scheme's capacity in register slots: the CARS watermarks
    # come from the call-graph analysis itself; the plugin arms use the
    # default config knobs (exactly what the ``regdem`` / ``rfcache``
    # techniques simulate, so ``--validate`` compares like with like).
    defaults = GPUConfig()
    arena_regs = defaults.regdem_smem_bytes_per_warp // _BYTES_PER_REG
    # Static register compression shrinks the scheduler-visible footprint
    # to a percentage of the kernel frame but holds *no* stack space:
    # every call boundary still spills to memory, so its capacity is
    # pinned to 0 rather than derived from the (compressed) allocation.
    regcomp_regs = max(
        1, -(-base.kernel_fru * defaults.regcomp_ratio_pct // 100)
    )
    # scheme -> (scheduler-visible regs/warp, pushed_only, capacity
    # override; None derives capacity from the allocation).
    schemes: Dict[str, Tuple[int, bool, Optional[int]]] = {
        "low": (base.low_watermark, False, None),
        "nxlow2": (base.nxlow_watermark(2), False, None),
        "high": (base.high_watermark, False, None),
        "regdem": (base.kernel_fru + arena_regs, True, None),
        "rfcache": (base.kernel_fru + defaults.rfcache_regs, True, None),
        "regcomp": (regcomp_regs, True, 0),
    }
    capacity_hi = max(
        max(0, regs - base.kernel_fru) if cap is None else cap
        for regs, _, cap in schemes.values()
    )
    max_depth = capacity_hi + 1
    if bounds.frame_depth_bound is not None:
        max_depth = min(max_depth, bounds.frame_depth_bound)
    curve = _demand_curve(graph, kernel, max_depth)
    min_entry = _min_entry_regs(graph, kernel, reachable)
    sites = _call_site_intervals(
        graph, kernel, reachable, min_entry, bounds.arrive_regs
    )
    devices = sorted(reachable - {kernel})
    live_fru = {
        name: _live_fru(module.function(name))
        for name in devices
        if name in module.functions
    }
    declared_fru = {name: graph.fru.get(name, 0) for name in devices}
    min_frame = min(
        (graph.fru.get(site.callee, 0) for site in sites), default=None
    )
    chain_regs = max(0, base.max_stack_depth - base.kernel_fru)
    chain_frames = graph.max_call_depth(kernel)
    return KernelInterproc(
        kernel=kernel,
        kernel_fru=base.kernel_fru,
        frame_depth_bound=bounds.frame_depth_bound,
        worst_demand=bounds.worst_demand,
        cyclic=base.cyclic,
        unbounded_functions=bounds.unbounded_functions,
        demand_curve=tuple(curve),
        call_sites=sites,
        live_fru=live_fru,
        declared_fru=declared_fru,
        predictions={
            scheme: _scheme_prediction(
                scheme,
                regs,
                base,
                bounds.frame_depth_bound,
                bounds.worst_demand,
                curve,
                min_frame,
                chain_regs,
                chain_frames,
                pushed_only=pushed_only,
                capacity=capacity,
            )
            for scheme, (regs, pushed_only, capacity) in schemes.items()
        },
    )


def analyze_module_interproc(module: Module, name: str = "module") -> InterprocReport:
    """Run the interprocedural analysis for every kernel of *module*."""
    graph = build_call_graph(module)
    kernels = {
        func.name: analyze_kernel_interproc(module, graph, func.name)
        for func in module.kernels()
    }
    return InterprocReport(
        name=name, module_digest=module.content_digest(), kernels=kernels
    )


# ---------------------------------------------------------------------------
# Digest-keyed registry (the harness attaches this to every RunResult)
# ---------------------------------------------------------------------------

_ANALYSIS_CACHE: Dict[str, InterprocReport] = {}
_analysis_executions = 0


def analysis_executions() -> int:
    """How many times the full analysis actually ran (cache misses)."""
    return _analysis_executions


def clear_analysis_cache() -> None:
    global _analysis_executions
    _ANALYSIS_CACHE.clear()
    _analysis_executions = 0


def ensure_module_analyzed(module: Module, name: str = "module") -> InterprocReport:
    """Analyze *module* once per content digest (shared across runs)."""
    global _analysis_executions
    digest = module.content_digest()
    report = _ANALYSIS_CACHE.get(digest)
    if report is None:
        report = analyze_module_interproc(module, name)
        _ANALYSIS_CACHE[digest] = report
        _analysis_executions += 1
    return report


# ---------------------------------------------------------------------------
# Prediction-vs-simulation validation (repro analyze --validate)
# ---------------------------------------------------------------------------

#: scheme key -> technique name that pins exactly that capacity.
SCHEME_TECHNIQUES = {
    "low": "cars_low",
    "nxlow2": "cars_nxlow2",
    "high": "cars_high",
    "regdem": "regdem",
    "rfcache": "rfcache",
    "regcomp": "regcomp",
}


def validate_against_stats(
    report: InterprocReport,
    scheme: str,
    launched_kernels: Sequence[str],
    stats: Any,
) -> List[str]:
    """Check the soundness contract against one simulated run.

    *stats* is a :class:`repro.metrics.counters.SimStats` (typed as Any
    to keep this package free of a metrics dependency).  Returns a list
    of human-readable violations — empty means the predictions were
    sound for this run.
    """
    kernels = [report.kernels[k] for k in launched_kernels]
    preds = [info.predictions[scheme] for info in kernels]
    violations: List[str] = []

    depth_bounds = [info.frame_depth_bound for info in kernels]
    if all(bound is not None for bound in depth_bounds):
        bound = max(b for b in depth_bounds if b is not None) if depth_bounds else 0
        if stats.peak_stack_depth > bound:
            violations.append(
                f"{scheme}: observed peak stack depth "
                f"{stats.peak_stack_depth} exceeds the static frame-depth "
                f"bound {bound}"
            )

    if preds and all(p.guaranteed_trap_free for p in preds) and stats.traps:
        violations.append(
            f"{scheme}: predicted guaranteed-trap-free but observed "
            f"{stats.traps} trap(s)"
        )

    if preds:
        min_rate = min(p.min_traps_per_call for p in preds)
        if min_rate * stats.calls > stats.traps:
            violations.append(
                f"{scheme}: trap lower bound {min_rate * stats.calls} "
                f"(rate {min_rate}/call x {stats.calls} calls) exceeds "
                f"observed {stats.traps} trap(s)"
            )

    within_trap_free = all(
        p.trap_free_depth is None or stats.peak_stack_depth <= p.trap_free_depth
        for p in preds
    )
    if preds and within_trap_free and stats.traps:
        depths = [p.trap_free_depth for p in preds]
        violations.append(
            f"{scheme}: observed peak depth {stats.peak_stack_depth} is "
            f"within the trap-free depth {depths} yet {stats.traps} "
            f"trap(s) occurred"
        )
    return violations
