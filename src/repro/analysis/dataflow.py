"""Generic worklist dataflow engine plus the standard instances.

The engine solves forward or backward meet-over-paths problems over a
:class:`repro.analysis.cfg.CFG`.  A problem supplies the lattice through
four hooks (:meth:`~DataflowProblem.boundary`, :meth:`~DataflowProblem.top`,
:meth:`~DataflowProblem.meet`, :meth:`~DataflowProblem.transfer`); the
engine iterates blocks to a fixed point and exposes per-block in/out
values, with helpers to replay a block's transfer for per-instruction
results.

Two classic instances are provided:

* :class:`Liveness` — backward may-analysis over register/predicate
  locations, parameterized by the call-effect model (see
  :func:`inst_uses` / :func:`inst_defs`);
* :class:`ReachingDefinitions` — forward may-analysis over
  ``(location, def_index)`` pairs, seeded with entry pseudo-definitions so
  uses of never-defined locations are observable (the uninitialized-read
  lint rides on this).

Registers and predicates share one location space: architectural register
``r`` is location ``r``; predicate ``p`` is location ``PRED_LOC_BASE + p``.
"""

from __future__ import annotations

from typing import FrozenSet, Generic, List, Optional, Tuple, TypeVar

from ..isa.instructions import Instruction, MAX_REGS, NUM_PREDS
from ..isa.opcodes import Opcode, is_call
from ..isa.program import Function
from ..frontend import abi
from .cfg import CFG, BasicBlock

#: Lattice value type of a dataflow problem.
V = TypeVar("V")

#: Predicate registers live in the same location space, above the GPRs.
PRED_LOC_BASE = MAX_REGS

#: Pseudo def-site marking "defined at function entry" (ABI registers).
ENTRY_DEF = -1

#: Pseudo def-site marking "never defined on some path into this point".
UNINIT_DEF = -2

Location = int
DefSite = Tuple[Location, int]


def pred_loc(pred: int) -> Location:
    """Location of predicate register *pred*."""
    return PRED_LOC_BASE + pred


def is_pred_loc(loc: Location) -> bool:
    return loc >= PRED_LOC_BASE


def loc_name(loc: Location) -> str:
    """Human-readable name of a location (``R5``, ``P0``)."""
    return f"P{loc - PRED_LOC_BASE}" if is_pred_loc(loc) else f"R{loc}"


#: Caller-saved architectural registers (arguments, return value, scratch).
CALLER_SAVED = frozenset(
    range(abi.ARG_REG_BASE, abi.TEMP_REG_BASE + abi.TEMP_REG_COUNT)
)

#: Argument registers a call may read (the arity is not encoded in CALL).
ARG_LOCS = frozenset(range(abi.ARG_REG_BASE, abi.ARG_REG_BASE + abi.MAX_REG_ARGS))


def inst_uses(inst: Instruction, conservative_calls: bool = True) -> FrozenSet[Location]:
    """Locations *inst* reads.

    With ``conservative_calls`` a CALL/CALLI also reads every argument
    register (their arity is unknown statically) and RET reads the return
    register — the right model for dead-store detection.  Without it,
    calls read only their explicit operands (the CALLI selector), which is
    the model for detecting values that *flow across* a call.
    """
    uses = set(inst.srcs)
    if inst.psrc is not None:
        uses.add(pred_loc(inst.psrc))
    if inst.op is Opcode.PUSH:
        start, count = inst.push_regs
        uses.update(range(start, start + count))
    if is_call(inst.op) and conservative_calls:
        uses.update(ARG_LOCS)
    if inst.op is Opcode.RET and conservative_calls:
        uses.add(abi.RETURN_REG)
    return frozenset(uses)


def inst_defs(inst: Instruction) -> FrozenSet[Location]:
    """Locations *inst* writes.  Calls define the return register; POP
    restores (hence defines) its whole register range."""
    defs = set(inst.dst)
    if inst.pdst is not None:
        defs.add(pred_loc(inst.pdst))
    if inst.op is Opcode.POP:
        start, count = inst.push_regs
        defs.update(range(start, start + count))
    if is_call(inst.op):
        defs.add(abi.RETURN_REG)
    return frozenset(defs)


def entry_defined_locations(func: Function) -> FrozenSet[Location]:
    """Locations holding defined values when *func* starts executing:
    the hardware special registers and the ABI argument registers (kernel
    launch parameters land there too)."""
    return frozenset(abi.SPECIAL_REGS.values()) | ARG_LOCS


class DataflowProblem(Generic[V]):
    """Base class for meet-over-paths dataflow problems.

    Subclasses set :attr:`FORWARD` and implement the four lattice hooks.
    Values must be comparable with ``==`` and treated as immutable.
    """

    FORWARD = True

    def boundary(self, cfg: CFG) -> V:
        """Value entering the entry block (forward) / leaving exits (backward)."""
        raise NotImplementedError

    def top(self, cfg: CFG) -> V:
        """Initial optimistic value for every non-boundary block edge."""
        raise NotImplementedError

    def meet(self, a: V, b: V) -> V:
        """Combine values at a control-flow join."""
        raise NotImplementedError

    def transfer(self, cfg: CFG, block: BasicBlock, value: V) -> V:
        """Push *value* through *block* (in execution order when forward,
        reverse order when backward)."""
        raise NotImplementedError


class Solution(Generic[V]):
    """Fixed-point result: per-block values on both sides of each block.

    ``inputs[b]`` is the value entering the transfer of block *b* —
    block-in for forward problems, block-out for backward ones —
    and ``outputs[b]`` the value it produces.
    """

    def __init__(self, problem: DataflowProblem[V], cfg: CFG,
                 inputs: List[V], outputs: List[V]) -> None:
        self.problem = problem
        self.cfg = cfg
        self.inputs = inputs
        self.outputs = outputs

    def block_in(self, index: int) -> V:
        return self.inputs[index] if self.problem.FORWARD else self.outputs[index]

    def block_out(self, index: int) -> V:
        return self.outputs[index] if self.problem.FORWARD else self.inputs[index]


def solve(problem: DataflowProblem[V], cfg: CFG) -> Solution[V]:
    """Run the worklist algorithm to a fixed point."""
    n = len(cfg.blocks)
    inputs: List[V] = [problem.top(cfg) for _ in range(n)]
    outputs: List[V] = [problem.transfer(cfg, b, inputs[b.index])
                        for b in cfg.blocks]

    if problem.FORWARD:
        def feeders(b: BasicBlock) -> List[int]:
            return b.preds

        def dependents(b: BasicBlock) -> List[int]:
            return b.succs
    else:
        def feeders(b: BasicBlock) -> List[int]:
            return b.succs

        def dependents(b: BasicBlock) -> List[int]:
            return b.preds

    boundary = problem.boundary(cfg)
    worklist = list(range(n))
    on_list = [True] * n
    while worklist:
        index = worklist.pop()
        on_list[index] = False
        block = cfg.blocks[index]
        # The boundary value feeds the entry block (forward) or every
        # exit block, i.e. one with no successors (backward).
        at_boundary = index == 0 if problem.FORWARD else not block.succs
        value: Optional[V] = boundary if at_boundary else None
        for feeder in feeders(block):
            value = outputs[feeder] if value is None else problem.meet(
                value, outputs[feeder])
        if value is None:
            value = problem.top(cfg)
        new_out = problem.transfer(cfg, block, value)
        if value != inputs[index] or new_out != outputs[index]:
            inputs[index] = value
            outputs[index] = new_out
            for dep in dependents(block):
                if not on_list[dep]:
                    on_list[dep] = True
                    worklist.append(dep)
    return Solution(problem, cfg, inputs, outputs)


# ---------------------------------------------------------------------------
# Liveness


class Liveness(DataflowProblem[FrozenSet[Location]]):
    """Backward may-analysis: which locations are live at each point.

    ``conservative_calls`` selects the call-effect model of
    :func:`inst_uses`; see there for when each model is appropriate.
    """

    FORWARD = False

    def __init__(self, conservative_calls: bool = True) -> None:
        self.conservative_calls = conservative_calls

    def boundary(self, cfg: CFG) -> FrozenSet[Location]:
        return frozenset()

    def top(self, cfg: CFG) -> FrozenSet[Location]:
        return frozenset()

    def meet(self, a: FrozenSet[Location], b: FrozenSet[Location]) -> FrozenSet[Location]:
        return a | b

    def transfer(self, cfg: CFG, block: BasicBlock,
                 value: FrozenSet[Location]) -> FrozenSet[Location]:
        live = set(value)
        for inst in reversed(cfg.instructions(block)):
            live -= inst_defs(inst)
            live |= inst_uses(inst, self.conservative_calls)
        return frozenset(live)


def per_instruction_liveness(
    cfg: CFG, solution: Solution[FrozenSet[Location]]
) -> Tuple[List[FrozenSet[Location]], List[FrozenSet[Location]]]:
    """Expand a :class:`Liveness` solution to per-instruction live-in/out."""
    problem = solution.problem
    assert isinstance(problem, Liveness)
    n = len(cfg.func.instructions)
    live_in: List[FrozenSet[Location]] = [frozenset()] * n
    live_out: List[FrozenSet[Location]] = [frozenset()] * n
    for block in cfg.blocks:
        live = set(solution.block_out(block.index))
        for idx in range(block.end - 1, block.start - 1, -1):
            inst = cfg.func.instructions[idx]
            live_out[idx] = frozenset(live)
            live -= inst_defs(inst)
            live |= inst_uses(inst, problem.conservative_calls)
            live_in[idx] = frozenset(live)
    return live_in, live_out


# ---------------------------------------------------------------------------
# Reaching definitions


class ReachingDefinitions(DataflowProblem[FrozenSet[DefSite]]):
    """Forward may-analysis over ``(location, def_index)`` pairs.

    The entry boundary seeds every ABI-defined location with
    :data:`ENTRY_DEF` and every other location with :data:`UNINIT_DEF`, so
    downstream consumers can ask "can an undefined value reach this use?"
    without a separate analysis.
    """

    FORWARD = True

    def boundary(self, cfg: CFG) -> FrozenSet[DefSite]:
        defined = entry_defined_locations(cfg.func)
        sites = {(loc, ENTRY_DEF) for loc in defined}
        for reg in range(cfg.func.num_regs):
            if reg not in defined:
                sites.add((reg, UNINIT_DEF))
        for pred in range(PRED_LOC_BASE, PRED_LOC_BASE + NUM_PREDS):
            sites.add((pred, UNINIT_DEF))
        return frozenset(sites)

    def top(self, cfg: CFG) -> FrozenSet[DefSite]:
        return frozenset()

    def meet(self, a: FrozenSet[DefSite], b: FrozenSet[DefSite]) -> FrozenSet[DefSite]:
        return a | b

    def transfer(self, cfg: CFG, block: BasicBlock,
                 value: FrozenSet[DefSite]) -> FrozenSet[DefSite]:
        sites = set(value)
        for idx in range(block.start, block.end):
            defs = inst_defs(cfg.func.instructions[idx])
            if defs:
                sites = {s for s in sites if s[0] not in defs}
                sites.update((loc, idx) for loc in defs)
        return frozenset(sites)


def per_instruction_reaching(
    cfg: CFG, solution: Solution[FrozenSet[DefSite]]
) -> List[FrozenSet[DefSite]]:
    """Expand a :class:`ReachingDefinitions` solution to per-instruction
    reaching-definition sets (the set *entering* each instruction)."""
    assert isinstance(solution.problem, ReachingDefinitions)
    n = len(cfg.func.instructions)
    reach_in: List[FrozenSet[DefSite]] = [frozenset()] * n
    for block in cfg.blocks:
        sites = set(solution.block_in(block.index))
        for idx in range(block.start, block.end):
            reach_in[idx] = frozenset(sites)
            defs = inst_defs(cfg.func.instructions[idx])
            if defs:
                sites = {s for s in sites if s[0] not in defs}
                sites.update((loc, idx) for loc in defs)
    return reach_in
