"""Lint passes: ABI and stack-safety checking over the CFG + dataflow layer.

Where :mod:`repro.isa.validator` enforces *structural* invariants (operand
shapes, label resolution, register bounds), the linter proves *path*
properties: every diagnostic here is justified along actual control-flow
paths, replacing the validator's straight-line approximations.  The rule
set (see :data:`repro.analysis.diagnostics.CODES`):

* CARS101/102 — uninitialized register / predicate reads (reaching defs
  with entry pseudo-definitions);
* CARS103     — dead stores (conservative-call liveness);
* CARS104     — unreachable code (CFG reachability; compiler-emitted
  reconvergence SYNC/NOP padding is exempt);
* CARS201     — caller-saved values live across a call (strict-call
  liveness: the callee may clobber them);
* CARS202/203 — callee-saved writes outside the declared block / not
  covered by a PUSH on every inbound path (must-analysis);
* CARS204/205 — PUSH/POP balance along all paths, ABI range base;
* CARS301/302 — SYNC outside any SSY scope, divergent CBRA outside any
  SSY scope, and inconsistent scope depth at merges;
* CARS401/402 — cross-checks of PUSH demand against the call graph's
  MaxStackDepth and each function's declared FRU/callee-saved metadata;
* CARS403/404/405 — interprocedural rules riding on
  :mod:`repro.analysis.interproc`: unannotated recursion, FRU declared
  looser than the computed PUSH pressure, and (given a concrete
  ``stack_regs`` allocation) call sites statically guaranteed to trap.

Use :func:`lint_function` / :func:`lint_module` directly, or
:func:`ensure_module_linted` as the harness gate (raises
:class:`LintError` so a miscompiled workload fails loudly instead of
producing silently wrong numbers).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..callgraph import analyze_kernel, build_call_graph
from ..isa.instructions import CALLEE_SAVED_BASE, Instruction
from ..isa.opcodes import OpClass, Opcode, is_call
from ..isa.program import Function, IsaError, Module
from ..frontend import abi
from .cfg import CFG, BasicBlock, build_cfg
from .dataflow import (
    CALLER_SAVED,
    DataflowProblem,
    Liveness,
    ReachingDefinitions,
    UNINIT_DEF,
    is_pred_loc,
    loc_name,
    per_instruction_liveness,
    per_instruction_reaching,
    pred_loc,
    solve,
)
from .diagnostics import Diagnostic, LintReport, error, warning


def _push_range(inst: "Instruction") -> Tuple[int, int]:
    """The (start, count) range of a PUSH/POP (validated non-None by the
    ISA layer; this narrows the Optional for the checks below)."""
    assert inst.push_regs is not None
    return inst.push_regs


class LintError(IsaError):
    """Raised by the harness gate when a module has lint errors."""

    def __init__(self, report: LintReport) -> None:
        lines = [d.render() for d in report.errors()]
        super().__init__(
            f"{report.name}: {len(lines)} lint error(s)\n  " + "\n  ".join(lines)
        )
        self.report = report


# ---------------------------------------------------------------------------
# CARS101 / CARS102: uninitialized reads


def _checked_uses(func: Function, idx: int) -> FrozenSet[int]:
    """Locations whose value instruction *idx* genuinely consumes.

    PUSH range reads (saving the caller's values is the point) and the
    conservative call/RET effects are excluded — only explicit operands
    are held to the initialized-before-use rule.
    """
    inst = func.instructions[idx]
    uses = set(inst.srcs)
    if inst.psrc is not None:
        uses.add(pred_loc(inst.psrc))
    return frozenset(uses)


def _check_uninitialized(cfg: CFG) -> List[Diagnostic]:
    func = cfg.func
    reach_in = per_instruction_reaching(cfg, solve(ReachingDefinitions(), cfg))
    reachable = cfg.reachable_blocks()
    diags: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        for idx in range(block.start, block.end):
            maybe_uninit = {s[0] for s in reach_in[idx] if s[1] == UNINIT_DEF}
            for loc in sorted(_checked_uses(func, idx) & maybe_uninit):
                code = "CARS102" if is_pred_loc(loc) else "CARS101"
                diags.append(error(
                    code, func.name,
                    f"{loc_name(loc)} may be read before it is written "
                    f"({func.instructions[idx].op.value})", idx))
    return diags


# ---------------------------------------------------------------------------
# CARS103: dead stores

#: Opcodes whose only effect is their register/predicate result.
_PURE_CLASSES = (OpClass.ALU, OpClass.FPU, OpClass.SFU)


def _check_dead_stores(cfg: CFG) -> List[Diagnostic]:
    func = cfg.func
    _, live_out = per_instruction_liveness(
        cfg, solve(Liveness(conservative_calls=True), cfg))
    reachable = cfg.reachable_blocks()
    diags: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        for idx in range(block.start, block.end):
            inst = func.instructions[idx]
            if inst.op_class not in _PURE_CLASSES:
                continue
            # Plain register copies are exempt: the frontend uniformly
            # emits parameter/return glue MOVs that are dead by
            # construction when a parameter goes unused.  Dead *work*
            # (arithmetic, loads of constants, selects) is what we flag.
            if inst.op is Opcode.MOV:
                continue
            for reg in inst.dst:
                # The ABI return slot's reader is the (unknown) caller.
                if reg == abi.RETURN_REG:
                    continue
                if reg not in live_out[idx]:
                    diags.append(warning(
                        "CARS103", func.name,
                        f"value written to R{reg} by {inst.op.value} "
                        f"is never read", idx))
            if inst.pdst is not None and pred_loc(inst.pdst) not in live_out[idx]:
                diags.append(warning(
                    "CARS103", func.name,
                    f"predicate P{inst.pdst} set by {inst.op.value} "
                    f"is never read", idx))
    return diags


# ---------------------------------------------------------------------------
# CARS104: unreachable code


def _check_unreachable(cfg: CFG) -> List[Diagnostic]:
    reachable = cfg.reachable_blocks()
    diags: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index in reachable:
            continue
        insts = cfg.instructions(block)
        # Structured lowering leaves reconvergence SYNCs (and NOP padding)
        # behind branches that always leave the scope; those are benign.
        if all(i.op in (Opcode.SYNC, Opcode.NOP) for i in insts):
            continue
        diags.append(warning(
            "CARS104", cfg.func.name,
            f"unreachable code ({len(insts)} instruction(s) starting with "
            f"{insts[0].op.value})", block.start))
    return diags


# ---------------------------------------------------------------------------
# CARS201: caller-saved registers live across calls


def _check_caller_saved_across_calls(cfg: CFG) -> List[Diagnostic]:
    func = cfg.func
    live_in, live_out = per_instruction_liveness(
        cfg, solve(Liveness(conservative_calls=False), cfg))
    reachable = cfg.reachable_blocks()
    diags: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        for idx in range(block.start, block.end):
            inst = func.instructions[idx]
            if not is_call(inst.op):
                continue
            # Live out of the call *and* into it: the value flows across
            # (RETURN_REG is produced by the call itself, so it is exempt).
            crossing = live_out[idx] & live_in[idx] & CALLER_SAVED
            for reg in sorted(crossing - {abi.RETURN_REG}):
                diags.append(error(
                    "CARS201", func.name,
                    f"caller-saved R{reg} is live across {inst.op.value} "
                    f"(the callee may clobber it)", idx))
    return diags


# ---------------------------------------------------------------------------
# CARS202 / CARS203: callee-saved write discipline (must-pushed analysis)


#: Must-pushed lattice value: pushed-register set, ``None`` = unreached.
_Pushed = Optional[FrozenSet[int]]


class _MustPushed(DataflowProblem[_Pushed]):
    """Forward must-analysis: registers covered by a PUSH on *every* path.

    The value is a frozenset of pushed registers, with None as the
    unreached top.
    """

    FORWARD = True

    def boundary(self, cfg: CFG) -> _Pushed:
        return frozenset()

    def top(self, cfg: CFG) -> _Pushed:
        return None

    def meet(self, a: _Pushed, b: _Pushed) -> _Pushed:
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, cfg: CFG, block: BasicBlock, value: _Pushed) -> _Pushed:
        if value is None:
            return None
        pushed = set(value)
        for inst in cfg.instructions(block):
            if inst.op is Opcode.PUSH:
                start, count = _push_range(inst)
                pushed.update(range(start, start + count))
            elif inst.op is Opcode.POP:
                start, count = _push_range(inst)
                pushed.difference_update(range(start, start + count))
        return frozenset(pushed)


def _check_callee_saved_writes(cfg: CFG) -> List[Diagnostic]:
    func = cfg.func
    if func.is_kernel:
        return []  # kernels have no caller to preserve registers for
    declared = func.callee_saved
    solution = solve(_MustPushed(), cfg)
    reachable = cfg.reachable_blocks()
    diags: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        pushed_in = solution.block_in(block.index)
        pushed = set(pushed_in) if pushed_in is not None else set()
        for idx in range(block.start, block.end):
            inst = func.instructions[idx]
            if inst.op is Opcode.PUSH:
                start, count = _push_range(inst)
                pushed.update(range(start, start + count))
                continue
            if inst.op is Opcode.POP:
                start, count = _push_range(inst)
                pushed.difference_update(range(start, start + count))
                continue
            for reg in inst.dst:
                if reg < CALLEE_SAVED_BASE:
                    continue
                if declared is None or not (
                        declared[0] <= reg < declared[0] + declared[1]):
                    block_text = (
                        f"declared block R{declared[0]}.."
                        f"R{declared[0] + declared[1] - 1}"
                        if declared else "no declared block")
                    diags.append(error(
                        "CARS202", func.name,
                        f"write to callee-saved R{reg} outside the "
                        f"{block_text}", idx))
                elif reg not in pushed:
                    diags.append(error(
                        "CARS203", func.name,
                        f"write to callee-saved R{reg} is not covered by a "
                        f"PUSH on every path", idx))
    return diags


# ---------------------------------------------------------------------------
# CARS204 / CARS205: PUSH/POP balance along all paths

class _Conflict:
    """Lattice sentinel: paths disagree on the value below this point."""


_CONFLICT = _Conflict()

#: Abstract PUSH stack: tuple of (base, count) ranges; ``None`` =
#: unreached; :class:`_Conflict` = paths disagree.
_PushRanges = Tuple[Tuple[int, int], ...]
_Stack = Union[None, _Conflict, _PushRanges]


class _PushStack(DataflowProblem[_Stack]):
    """Forward analysis of the abstract PUSH stack (tuple of ranges)."""

    FORWARD = True

    def boundary(self, cfg: CFG) -> _Stack:
        return ()

    def top(self, cfg: CFG) -> _Stack:
        return None  # unreached

    def meet(self, a: _Stack, b: _Stack) -> _Stack:
        if a is None:
            return b
        if b is None:
            return a
        return a if a == b else _CONFLICT

    def transfer(self, cfg: CFG, block: BasicBlock, value: _Stack) -> _Stack:
        if value is None or isinstance(value, _Conflict):
            return value
        stack = list(value)
        for inst in cfg.instructions(block):
            if inst.op is Opcode.PUSH:
                stack.append(_push_range(inst))
            elif inst.op is Opcode.POP:
                if not stack or stack[-1] != inst.push_regs:
                    return _CONFLICT
                stack.pop()
        return tuple(stack)


def _stack_regs(stack: _PushRanges) -> int:
    return sum(count for _, count in stack)


def _check_push_pop_balance(cfg: CFG) -> List[Diagnostic]:
    func = cfg.func
    diags: List[Diagnostic] = []
    for idx, inst in enumerate(func.instructions):
        if inst.op in (Opcode.PUSH, Opcode.POP) and inst.push_regs:
            start, _count = inst.push_regs
            if start < CALLEE_SAVED_BASE:
                diags.append(error(
                    "CARS205", func.name,
                    f"{inst.op.value} range starts at R{start}, below the "
                    f"callee-saved ABI base R{CALLEE_SAVED_BASE}", idx))

    solution = solve(_PushStack(), cfg)
    reachable = cfg.reachable_blocks()
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        stack_in = solution.block_in(block.index)
        if isinstance(stack_in, _Conflict):
            # Report only at the merge frontier, not down the cascade.
            feeders = [solution.block_out(p) for p in block.preds]
            if any(f is not None and not isinstance(f, _Conflict)
                   for f in feeders):
                diags.append(error(
                    "CARS204", func.name,
                    "control-flow paths reach this point with different "
                    "PUSH stack depths", block.start))
            continue
        stack = list(stack_in) if stack_in is not None else []
        for idx in range(block.start, block.end):
            inst = func.instructions[idx]
            if inst.op is Opcode.PUSH:
                stack.append(_push_range(inst))
            elif inst.op is Opcode.POP:
                if not stack:
                    diags.append(error(
                        "CARS204", func.name,
                        "POP with no matching PUSH on some path", idx))
                    break
                if stack[-1] != inst.push_regs:
                    start, count = stack[-1]
                    diags.append(error(
                        "CARS204", func.name,
                        f"POP range does not match the pushed "
                        f"[R{start}..R{start + count - 1}]", idx))
                    break
                stack.pop()
            elif inst.op in (Opcode.RET, Opcode.EXIT) and stack:
                diags.append(error(
                    "CARS204", func.name,
                    f"{inst.op.value} with {_stack_regs(tuple(stack))} "
                    f"register(s) still pushed", idx))
    return diags


# ---------------------------------------------------------------------------
# CARS301 / CARS302: SSY/SYNC pairing along all paths


#: Open-SSY-scope stack: tuple of reconvergence indices; ``None`` =
#: unreached; :class:`_Conflict` = paths disagree on the depth.
_Scopes = Union[None, _Conflict, Tuple[int, ...]]


class _SsyScopes(DataflowProblem[_Scopes]):
    """Forward analysis of the open-SSY-scope stack (tuple of targets)."""

    FORWARD = True

    def boundary(self, cfg: CFG) -> _Scopes:
        return ()

    def top(self, cfg: CFG) -> _Scopes:
        return None

    def meet(self, a: _Scopes, b: _Scopes) -> _Scopes:
        if a is None:
            return b
        if b is None:
            return a
        return a if a == b else _CONFLICT

    def transfer(self, cfg: CFG, block: BasicBlock, value: _Scopes) -> _Scopes:
        if value is None or isinstance(value, _Conflict):
            return value
        scopes = list(value)
        for idx in range(block.start, block.end):
            while scopes and scopes[-1] == idx:
                scopes.pop()  # execution reached the reconvergence point
            inst = cfg.func.instructions[idx]
            if inst.op is Opcode.SSY:
                scopes.append(cfg.func.label_index(inst.target))
        return tuple(scopes)


def _check_ssy_sync(cfg: CFG) -> List[Diagnostic]:
    func = cfg.func
    solution = solve(_SsyScopes(), cfg)
    reachable = cfg.reachable_blocks()
    diags: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        scopes_in = solution.block_in(block.index)
        if isinstance(scopes_in, _Conflict):
            feeders = [solution.block_out(p) for p in block.preds]
            if any(f is not None and not isinstance(f, _Conflict)
                   for f in feeders):
                diags.append(error(
                    "CARS301", func.name,
                    "control-flow paths reach this point with different "
                    "SSY scope depths", block.start))
            continue
        scopes = list(scopes_in) if scopes_in is not None else []
        for idx in range(block.start, block.end):
            while scopes and scopes[-1] == idx:
                scopes.pop()
            inst = func.instructions[idx]
            if inst.op is Opcode.SSY:
                scopes.append(func.label_index(inst.target))
            elif inst.op is Opcode.SYNC and not scopes:
                diags.append(error(
                    "CARS301", func.name,
                    "SYNC without an enclosing SSY scope", idx))
            elif inst.op is Opcode.CBRA and not scopes:
                diags.append(error(
                    "CARS302", func.name,
                    "divergent CBRA outside any SSY scope (lanes could "
                    "never reconverge)", idx))
    return diags


# ---------------------------------------------------------------------------
# CARS401 / CARS402: cross-module stack accounting


def _max_push_depth(cfg: CFG) -> int:
    """Worst-case registers this function holds pushed at any point."""
    solution = solve(_PushStack(), cfg)
    reachable = cfg.reachable_blocks()
    worst = 0
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        stack_in = solution.block_in(block.index)
        if stack_in is None or isinstance(stack_in, _Conflict):
            continue  # imbalance is CARS204's finding, not ours
        stack = list(stack_in)
        for inst in cfg.instructions(block):
            if inst.op is Opcode.PUSH:
                stack.append(_push_range(inst))
                worst = max(worst, _stack_regs(tuple(stack)))
            elif inst.op is Opcode.POP and stack:
                stack.pop()
    return worst


def _check_function_metadata(cfg: CFG) -> List[Diagnostic]:
    """CARS402: declared callee-saved/FRU metadata must cover the code."""
    func = cfg.func
    diags: List[Diagnostic] = []
    push_depth = _max_push_depth(cfg)
    if func.is_kernel:
        return diags
    declared = func.callee_saved
    if declared is not None and declared[1] > 0:
        covering = any(
            inst.op is Opcode.PUSH and inst.push_regs is not None
            and inst.push_regs[0] <= declared[0]
            and inst.push_regs[0] + inst.push_regs[1]
            >= declared[0] + declared[1]
            for inst in func.instructions)
        if not covering:
            diags.append(error(
                "CARS402", func.name,
                f"declared callee-saved block R{declared[0]}.."
                f"R{declared[0] + declared[1] - 1} has no covering PUSH"))
    # A device function's FRU must account for everything it pushes plus
    # the saved-RFP slot; otherwise the call-graph analysis under-reserves.
    if push_depth and push_depth + 1 > func.fru:
        diags.append(error(
            "CARS402", func.name,
            f"pushes up to {push_depth} register(s) but declares "
            f"fru={func.fru} (needs >= {push_depth + 1})"))
    return diags


def _check_fru_slack(cfg: CFG) -> List[Diagnostic]:
    """CARS404: declared FRU looser than the computed register pressure.

    The dual of CARS402's under-declaration check: a device function
    whose declared FRU exceeds its worst-case PUSH pressure plus the
    saved-RFP slot over-reserves register-stack space on every
    activation, lowering CARS's trap-free call depth for no benefit.
    (Registers that are *pushed* are never slack, even when dead across
    every call — the PUSH protects the caller's value, and deliberate
    pressure padding is expressed through the PUSH range; the
    liveness-tightened bound is reported by ``repro analyze`` instead.)
    """
    func = cfg.func
    if func.is_kernel:
        return []
    push_depth = _max_push_depth(cfg)
    slack = func.fru - (push_depth + 1)
    if slack > 0:
        return [warning(
            "CARS404", func.name,
            f"declares fru={func.fru} but worst-case PUSH pressure is "
            f"{push_depth} register(s) (+1 for the saved RFP): "
            f"{slack} stack register(s) over-reserved per activation")]
    return []


def _check_stack_accounting(module: Module,
                            cfgs: Dict[str, CFG]) -> List[Diagnostic]:
    """CARS401: per-kernel PUSH demand vs the call graph's MaxStackDepth."""
    diags: List[Diagnostic] = []
    push_depths = {name: _max_push_depth(cfg) for name, cfg in cfgs.items()}
    graph = build_call_graph(module)

    def chain_demand(name: str, path: FrozenSet[str]) -> int:
        best_child = 0
        for callee in graph.callees(name):
            if callee in path:
                continue  # recursion iterates once, as in the analysis
            best_child = max(best_child, chain_demand(callee, path | {callee}))
        return push_depths.get(name, 0) + best_child

    for kernel in module.kernels():
        analysis = analyze_kernel(graph, kernel.name)
        demand = analysis.kernel_fru + chain_demand(
            kernel.name, frozenset({kernel.name}))
        if demand > analysis.max_stack_depth:
            diags.append(error(
                "CARS401", kernel.name,
                f"worst-case PUSH demand of {demand} register(s) exceeds "
                f"MaxStackDepth={analysis.max_stack_depth}; the register "
                f"stack would be under-provisioned"))
    return diags


# ---------------------------------------------------------------------------
# CARS403 / CARS405: interprocedural diagnostics (recursion bounds and
# statically-guaranteed traps)


def _check_interprocedural(
    module: Module, stack_regs: Optional[int]
) -> List[Diagnostic]:
    """CARS403 for every reachable unannotated recursive function; CARS405
    (only when a concrete per-warp allocation is given) for call sites
    whose *best-case* entry occupancy already exceeds the register stack —
    every execution reaching such a site is guaranteed to trap."""
    from .interproc import analyze_kernel_interproc

    graph = build_call_graph(module)
    diags: List[Diagnostic] = []
    flagged: Set[str] = set()
    for kernel in module.kernels():
        info = analyze_kernel_interproc(module, graph, kernel.name)
        for fname in info.unbounded_functions:
            if fname in flagged:
                continue
            flagged.add(fname)
            diags.append(warning(
                "CARS403", fname,
                "recursive with no declared recursion bound: worst-case "
                "register-stack demand is unbounded (the one-iteration "
                "rule was applied; annotate recursion_bound to bound it)"))
        if stack_regs is None:
            continue
        capacity = max(0, stack_regs - info.kernel_fru)
        for site in info.call_sites:
            if site.min_entry_regs > capacity:
                diags.append(error(
                    "CARS405", site.caller,
                    f"call to {site.callee} needs at least "
                    f"{site.min_entry_regs} stacked register(s) on every "
                    f"execution, but a {stack_regs}-register warp "
                    f"allocation leaves a stack of {capacity} (kernel "
                    f"{kernel.name} keeps {info.kernel_fru}): every such "
                    f"call is guaranteed to trap"))
    return diags


# ---------------------------------------------------------------------------
# Entry points

_FUNCTION_PASSES = (
    _check_uninitialized,
    _check_dead_stores,
    _check_unreachable,
    _check_caller_saved_across_calls,
    _check_callee_saved_writes,
    _check_push_pop_balance,
    _check_ssy_sync,
    _check_function_metadata,
    _check_fru_slack,
)


def lint_function(func: Function) -> List[Diagnostic]:
    """Run every per-function lint pass over *func*."""
    cfg = build_cfg(func)
    diags: List[Diagnostic] = []
    for lint_pass in _FUNCTION_PASSES:
        diags.extend(lint_pass(cfg))
    return diags


def lint_module(
    module: Module,
    name: str = "module",
    stack_regs: Optional[int] = None,
) -> LintReport:
    """Run all per-function and cross-module lint passes over *module*.

    *stack_regs* (a concrete per-warp register allocation) arms the
    CARS405 guaranteed-trap check; without it the rule is vacuous (the
    allocation is a runtime policy choice, not a module property).
    """
    diags: List[Diagnostic] = []
    cfgs: Dict[str, CFG] = {}
    for func in module.functions.values():
        cfg = build_cfg(func)
        cfgs[func.name] = cfg
        for lint_pass in _FUNCTION_PASSES:
            diags.extend(lint_pass(cfg))
    diags.extend(_check_stack_accounting(module, cfgs))
    diags.extend(_check_interprocedural(module, stack_regs))
    return LintReport(name=name, diagnostics=diags)


# Reports for the default (no stack_regs) gate, keyed by module content
# digest — shared across every run of byte-identical modules.
_LINT_CACHE: Dict[str, LintReport] = {}
_lint_executions = 0


def lint_executions() -> int:
    """How many times :func:`ensure_module_linted` actually linted
    (cache misses) — observability hook for the caching tests."""
    return _lint_executions


def clear_lint_cache() -> None:
    global _lint_executions
    _LINT_CACHE.clear()
    _lint_executions = 0


def ensure_module_linted(module: Module, name: str = "module") -> LintReport:
    """Lint *module* once per content digest and raise on errors.

    The harness calls this before every simulation so a miscompiled
    workload fails loudly instead of producing silently wrong numbers.
    The cache is keyed by :meth:`Module.content_digest`, so rebuilding
    the same workload (separate :class:`Module` instances, identical
    bytes) never re-lints.
    """
    global _lint_executions
    digest = module.content_digest()
    report = _LINT_CACHE.get(digest)
    if report is None:
        report = lint_module(module, name)
        _LINT_CACHE[digest] = report
        _lint_executions += 1
    if report.errors():
        raise LintError(report)
    return report
