"""Diagnostics framework: codes, severities, locations, renderers.

Every lint finding is a :class:`Diagnostic` carrying a stable ``CARSnnn``
code (1xx dataflow hygiene, 2xx ABI/register-stack safety, 3xx divergence
discipline, 4xx cross-module stack accounting), a severity, and a precise
location (function name plus instruction index when applicable).
:class:`LintReport` aggregates findings over a module and knows the CLI
gating rules: errors always fail, warnings only under ``--strict``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, asdict
from typing import Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a finding is; orders so errors sort first."""

    ERROR = "error"
    WARNING = "warning"


#: Registry of diagnostic codes -> one-line rule summary.  Kept in one
#: place so the CLI can list rules and tests can assert none is vacuous.
CODES: Dict[str, str] = {
    "CARS101": "register may be read before it is written",
    "CARS102": "predicate may be used before any SETP defines it",
    "CARS103": "dead store: result is never read",
    "CARS104": "unreachable code",
    "CARS201": "caller-saved register is live across a call",
    "CARS202": "callee-saved register written outside the declared block",
    "CARS203": "callee-saved register written without a covering PUSH",
    "CARS204": "PUSH/POP imbalance along some control-flow path",
    "CARS205": "PUSH/POP range below the callee-saved ABI base",
    "CARS301": "SYNC without an enclosing SSY scope on some path",
    "CARS302": "divergent branch (CBRA) outside any SSY scope",
    "CARS401": "PUSH demand exceeds the call graph's MaxStackDepth",
    "CARS402": "declared callee-saved block and PUSH/FRU metadata disagree",
    "CARS403": "unbounded recursion: no declared recursion bound",
    "CARS404": "declared FRU is looser than the computed register pressure",
    "CARS405": "call site statically exceeds the configured register stack",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    Attributes:
        code: stable ``CARSnnn`` identifier (a key of :data:`CODES`).
        severity: gating class.
        function: function the finding is in (empty for module-level).
        index: instruction index within the function, or None.
        message: human-readable detail.
    """

    code: str
    severity: Severity
    function: str
    message: str
    index: Optional[int] = None

    @property
    def location(self) -> str:
        if not self.function:
            return "<module>"
        if self.index is None:
            return self.function
        return f"{self.function}[{self.index}]"

    def render(self) -> str:
        return f"{self.severity.value} {self.code} {self.location}: {self.message}"


def error(code: str, function: str, message: str,
          index: Optional[int] = None) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, function, message, index)


def warning(code: str, function: str, message: str,
            index: Optional[int] = None) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, function, message, index)


@dataclass
class LintReport:
    """All findings for one module (or workload)."""

    name: str
    diagnostics: List[Diagnostic]

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def ok(self, strict: bool = False) -> bool:
        """True when the module passes the lint gate."""
        if self.errors():
            return False
        return not (strict and self.warnings())

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})


def render_text(reports: Sequence[LintReport], verbose: bool = True) -> str:
    """Human-readable multi-module report."""
    lines: List[str] = []
    for report in reports:
        n_err, n_warn = len(report.errors()), len(report.warnings())
        if not report.diagnostics:
            lines.append(f"{report.name}: clean")
            continue
        lines.append(f"{report.name}: {n_err} error(s), {n_warn} warning(s)")
        if verbose:
            for diag in sorted(report.diagnostics,
                               key=lambda d: (d.severity.value, d.code,
                                              d.function, d.index or 0)):
                lines.append(f"  {diag.render()}")
    return "\n".join(lines)


#: Version of the ``render_json`` payload (golden-tested; bump on shape
#: changes so downstream consumers can dispatch).
LINT_SCHEMA_VERSION = 1


def render_json(reports: Sequence[LintReport]) -> str:
    """Machine-readable report (schema-versioned, one object per module)."""
    payload = {
        "schema": LINT_SCHEMA_VERSION,
        "modules": [
            {
                "name": report.name,
                "errors": len(report.errors()),
                "warnings": len(report.warnings()),
                "diagnostics": [
                    {**asdict(diag), "severity": diag.severity.value}
                    for diag in report.diagnostics
                ],
            }
            for report in reports
        ],
    }
    return json.dumps(payload, indent=2)
