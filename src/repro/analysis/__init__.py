"""Static analysis: CFGs, dataflow, and the ABI/stack-safety linter.

The package layers bottom-up:

* :mod:`repro.analysis.cfg` — basic blocks and edges over
  :class:`repro.isa.Function` (labels, BRA/CBRA/SSY/SYNC/RET semantics);
* :mod:`repro.analysis.dataflow` — a generic worklist engine
  (forward/backward, meet-over-paths) with liveness and
  reaching-definitions instances;
* :mod:`repro.analysis.diagnostics` — codes, severities, renderers;
* :mod:`repro.analysis.lint` — the pass suite proving the link-time
  facts CARS depends on (ABI PUSH/POP discipline, FRU/MaxStackDepth
  accounting, SSY/SYNC pairing) along *all* control-flow paths.
"""

from .cfg import CFG, BasicBlock, build_cfg, sync_scopes
from .dataflow import (
    DataflowProblem,
    Liveness,
    ReachingDefinitions,
    Solution,
    per_instruction_liveness,
    per_instruction_reaching,
    solve,
)
from .diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    render_json,
    render_text,
)
from .lint import LintError, ensure_module_linted, lint_function, lint_module

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "sync_scopes",
    "DataflowProblem",
    "Liveness",
    "ReachingDefinitions",
    "Solution",
    "per_instruction_liveness",
    "per_instruction_reaching",
    "solve",
    "CODES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "render_json",
    "render_text",
    "LintError",
    "ensure_module_linted",
    "lint_function",
    "lint_module",
]
