"""Static analysis: CFGs, dataflow, and the ABI/stack-safety linter.

The package layers bottom-up:

* :mod:`repro.analysis.cfg` — basic blocks and edges over
  :class:`repro.isa.Function` (labels, BRA/CBRA/SSY/SYNC/RET semantics);
* :mod:`repro.analysis.dataflow` — a generic worklist engine
  (forward/backward, meet-over-paths) with liveness and
  reaching-definitions instances;
* :mod:`repro.analysis.diagnostics` — codes, severities, renderers;
* :mod:`repro.analysis.lint` — the pass suite proving the link-time
  facts CARS depends on (ABI PUSH/POP discipline, FRU/MaxStackDepth
  accounting, SSY/SYNC pairing) along *all* control-flow paths;
* :mod:`repro.analysis.interproc` — context-sensitive interprocedural
  register-pressure analysis with closed-form CARS predictions
  (occupancy intervals, demand curves, trap-free depths) that the
  simulator's counters are validated against.
"""

from .cfg import CFG, BasicBlock, build_cfg, sync_scopes
from .dataflow import (
    DataflowProblem,
    Liveness,
    ReachingDefinitions,
    Solution,
    per_instruction_liveness,
    per_instruction_reaching,
    solve,
)
from .diagnostics import (
    CODES,
    LINT_SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    Severity,
    render_json,
    render_text,
)
from .interproc import (
    INTERPROC_SCHEMA_VERSION,
    CallSiteInterval,
    InterprocReport,
    KernelInterproc,
    SchemePrediction,
    analyze_kernel_interproc,
    analyze_module_interproc,
    ensure_module_analyzed,
    validate_against_stats,
)
from .lint import (
    LintError,
    clear_lint_cache,
    ensure_module_linted,
    lint_executions,
    lint_function,
    lint_module,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "sync_scopes",
    "DataflowProblem",
    "Liveness",
    "ReachingDefinitions",
    "Solution",
    "per_instruction_liveness",
    "per_instruction_reaching",
    "solve",
    "CODES",
    "LINT_SCHEMA_VERSION",
    "Diagnostic",
    "LintReport",
    "Severity",
    "render_json",
    "render_text",
    "INTERPROC_SCHEMA_VERSION",
    "CallSiteInterval",
    "InterprocReport",
    "KernelInterproc",
    "SchemePrediction",
    "analyze_kernel_interproc",
    "analyze_module_interproc",
    "ensure_module_analyzed",
    "validate_against_stats",
    "LintError",
    "clear_lint_cache",
    "ensure_module_linted",
    "lint_executions",
    "lint_function",
    "lint_module",
]
