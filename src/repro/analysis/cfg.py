"""Control-flow graphs over :class:`repro.isa.Function` instruction lists.

Basic blocks are maximal straight-line runs; edges follow the execution
semantics of the mini-ISA's structured-divergence discipline:

* ``BRA``  -> its target;
* ``CBRA`` -> its target *and* the fall-through (both lane subsets exist
  statically);
* ``SSY``  -> fall-through only (it pushes a reconvergence point without
  transferring control);
* ``SYNC`` -> the innermost enclosing SSY target (lanes park at the SYNC
  and the warp resumes at the reconvergence point);
* ``RET`` / ``EXIT`` -> no successors;
* everything else (including ``CALL``/``CALLI``, which return to the next
  instruction) -> fall-through.

The SSY scope that a SYNC reconverges to is recovered by a structural
scan: the compiler emits properly nested scopes, and a scope closes when
the instruction stream reaches its reconvergence label.  Malformed
nesting leaves a SYNC scope-less; the CFG gives it no successors and the
lint passes (:mod:`repro.analysis.lint`) report the pairing violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.program import Function


@dataclass
class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``."""

    index: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class CFG:
    """Per-function control-flow graph.

    Attributes:
        func: the function the graph describes.
        blocks: basic blocks in instruction order; block 0 is the entry.
        block_of: instruction index -> owning block index.
        sync_scope: SYNC instruction index -> reconvergence instruction
            index, or None when the SYNC has no enclosing SSY scope.
    """

    func: Function
    blocks: List[BasicBlock]
    block_of: List[int]
    sync_scope: Dict[int, Optional[int]]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def instructions(self, block: BasicBlock) -> List[Instruction]:
        return self.func.instructions[block.start:block.end]

    def reachable_blocks(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        seen = {0}
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def sync_scopes(func: Function) -> Dict[int, Optional[int]]:
    """Map each SYNC to the reconvergence point of its innermost SSY scope.

    A linear scan maintains the stack of open SSY scopes: SSY pushes its
    target index, and a scope closes when the scan reaches that index.
    This mirrors the emulator's SIMT stack for the structured control flow
    the compiler emits; a SYNC encountered with no open scope maps to None.
    """
    open_scopes: List[int] = []
    scopes: Dict[int, Optional[int]] = {}
    for idx, inst in enumerate(func.instructions):
        while open_scopes and open_scopes[-1] == idx:
            open_scopes.pop()
        if inst.op is Opcode.SSY:
            open_scopes.append(func.label_index(inst.target))
        elif inst.op is Opcode.SYNC:
            scopes[idx] = open_scopes[-1] if open_scopes else None
    return scopes


def _successors(func: Function, scopes: Dict[int, Optional[int]]) -> List[List[int]]:
    """Execution successors per instruction index (targets past the end
    of the function are dropped)."""
    n = len(func.instructions)
    succs: List[List[int]] = []
    for idx, inst in enumerate(func.instructions):
        out: List[int] = []
        if inst.op is Opcode.BRA:
            out.append(func.label_index(inst.target))
        elif inst.op is Opcode.CBRA:
            out.append(func.label_index(inst.target))
            out.append(idx + 1)
        elif inst.op is Opcode.SYNC:
            target = scopes.get(idx)
            if target is not None:
                out.append(target)
        elif inst.op in (Opcode.RET, Opcode.EXIT):
            pass
        else:
            out.append(idx + 1)
        succs.append(sorted({s for s in out if s < n}))
    return succs


def build_cfg(func: Function) -> CFG:
    """Partition *func* into basic blocks and connect them."""
    n = len(func.instructions)
    if n == 0:
        raise ValueError(f"{func.name}: cannot build a CFG for an empty function")
    scopes = sync_scopes(func)
    succs = _successors(func, scopes)

    leaders = {0}
    leaders.update(idx for idx in func.labels.values() if idx < n)
    for idx, inst_succs in enumerate(succs):
        # Any instruction that does not simply fall through ends a block.
        if inst_succs != [idx + 1]:
            leaders.update(inst_succs)
            if idx + 1 < n:
                leaders.add(idx + 1)

    starts = sorted(leaders)
    blocks = [
        BasicBlock(index=i, start=start, end=end)
        for i, (start, end) in enumerate(zip(starts, starts[1:] + [n]))
    ]
    block_of = [0] * n
    for block in blocks:
        for idx in range(block.start, block.end):
            block_of[idx] = block.index

    for block in blocks:
        block.succs = sorted({block_of[s] for s in succs[block.end - 1]})
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.index)

    return CFG(func=func, blocks=blocks, block_of=block_of, sync_scope=scopes)
