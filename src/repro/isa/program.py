"""Program containers: functions, kernels, and linked modules.

A :class:`Function` is a flat instruction list with a label table.  A
:class:`Module` groups functions, designates kernel entry points, and carries
the per-function register-usage metadata the linker and the call-graph
analysis consume (mirroring the nvlink ``--dump-callgraph`` + SASS analysis
the paper performs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction
from .opcodes import Opcode


class IsaError(Exception):
    """Raised for malformed programs."""


@dataclass
class Function:
    """A compiled device function or kernel.

    Attributes:
        name: unique symbol name within a module.
        instructions: the flat instruction list.
        labels: label name -> instruction index.
        num_regs: architectural registers used (R0..num_regs-1).
        callee_saved: (start, count) contiguous callee-saved block this
            function saves/restores, or None when it saves nothing.  For
            ABI-conforming code the start is CALLEE_SAVED_BASE.
        is_kernel: True for ``__global__`` entry points.
        shared_mem_bytes: static shared-memory demand (kernels only).
        fru: Function Register Usage — the extra registers this function
            pushes on entry (the paper's FRU).  Filled by the compiler; for
            kernels it is the full register demand of the kernel frame.
        recursion_bound: compiler/programmer-supplied bound on simultaneous
            activations of this function on one call stack, or None when
            unknown.  The interprocedural analysis uses it to generalize
            the paper's one-iteration recursion rule (Section III-C) into
            a sound depth bound; unannotated recursion stays unbounded.
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    num_regs: int = 0
    callee_saved: Optional[Tuple[int, int]] = None
    is_kernel: bool = False
    shared_mem_bytes: int = 0
    fru: int = 0
    recursion_bound: Optional[int] = None

    def label_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise IsaError(f"{self.name}: unknown label {label!r}") from None

    def callees(self) -> List[Tuple[str, ...]]:
        """Static call sites: one tuple of candidate targets per call."""
        sites: List[Tuple[str, ...]] = []
        for inst in self.instructions:
            if inst.op is Opcode.CALL:
                sites.append((inst.target,))
            elif inst.op is Opcode.CALLI:
                sites.append(tuple(inst.call_targets))
        return sites

    @property
    def static_size(self) -> int:
        return len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Module:
    """A linked module: functions plus kernel entry points.

    The linker (see :mod:`repro.frontend.linker`) computes
    ``worst_case_regs`` per kernel — the baseline GPU's per-warp register
    allocation, taken as the maximum register usage over the reachable call
    graph (Section II of the paper).
    """

    functions: Dict[str, Function] = field(default_factory=dict)
    worst_case_regs: Dict[str, int] = field(default_factory=dict)
    code_bytes: int = 0
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    def content_digest(self) -> str:
        """Stable digest of the linked code and its register metadata.

        The digest keys every cache layered on modules — the result
        store's workload component, the lint-report registry, and the
        interprocedural-analysis registry — so two structurally identical
        modules (however they were compiled) share one cache entry, and
        any change to instructions or metadata misses.  Cached: modules
        are immutable once linked.
        """
        if self._digest is None:
            import hashlib

            digest = hashlib.sha256()
            for name in sorted(self.functions):
                func = self.functions[name]
                digest.update(
                    f"func {name} regs={func.num_regs} fru={func.fru} "
                    f"kernel={int(func.is_kernel)} smem={func.shared_mem_bytes} "
                    f"callee={func.callee_saved} "
                    f"rbound={func.recursion_bound}\n".encode()
                )
                for inst in func.instructions:
                    digest.update(repr(inst).encode())
                    digest.update(b"\n")
            digest.update(repr(sorted(self.worst_case_regs.items())).encode())
            digest.update(str(self.code_bytes).encode())
            self._digest = digest.hexdigest()
        return self._digest

    def add(self, func: Function) -> None:
        if func.name in self.functions:
            raise IsaError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IsaError(f"unknown function {name!r}") from None

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def kernel(self, name: str) -> Function:
        func = self.function(name)
        if not func.is_kernel:
            raise IsaError(f"{name!r} is not a kernel")
        return func

    def reachable(self, root: str) -> List[str]:
        """Function names reachable from *root* (root first, DFS order)."""
        seen: List[str] = []
        seen_set = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen_set:
                continue
            seen_set.add(name)
            seen.append(name)
            func = self.function(name)
            for site in func.callees():
                for target in site:
                    if target not in seen_set:
                        stack.append(target)
        return seen

    @property
    def total_static_instructions(self) -> int:
        return sum(len(f) for f in self.functions.values())
