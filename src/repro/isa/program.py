"""Program containers: functions, kernels, and linked modules.

A :class:`Function` is a flat instruction list with a label table.  A
:class:`Module` groups functions, designates kernel entry points, and carries
the per-function register-usage metadata the linker and the call-graph
analysis consume (mirroring the nvlink ``--dump-callgraph`` + SASS analysis
the paper performs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction, CALLEE_SAVED_BASE, MAX_REGS
from .opcodes import Opcode, is_call


class IsaError(Exception):
    """Raised for malformed programs."""


@dataclass
class Function:
    """A compiled device function or kernel.

    Attributes:
        name: unique symbol name within a module.
        instructions: the flat instruction list.
        labels: label name -> instruction index.
        num_regs: architectural registers used (R0..num_regs-1).
        callee_saved: (start, count) contiguous callee-saved block this
            function saves/restores, or None when it saves nothing.  For
            ABI-conforming code the start is CALLEE_SAVED_BASE.
        is_kernel: True for ``__global__`` entry points.
        shared_mem_bytes: static shared-memory demand (kernels only).
        fru: Function Register Usage — the extra registers this function
            pushes on entry (the paper's FRU).  Filled by the compiler; for
            kernels it is the full register demand of the kernel frame.
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    num_regs: int = 0
    callee_saved: Optional[Tuple[int, int]] = None
    is_kernel: bool = False
    shared_mem_bytes: int = 0
    fru: int = 0

    def label_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise IsaError(f"{self.name}: unknown label {label!r}") from None

    def callees(self) -> List[Tuple[str, ...]]:
        """Static call sites: one tuple of candidate targets per call."""
        sites: List[Tuple[str, ...]] = []
        for inst in self.instructions:
            if inst.op is Opcode.CALL:
                sites.append((inst.target,))
            elif inst.op is Opcode.CALLI:
                sites.append(tuple(inst.call_targets))
        return sites

    @property
    def static_size(self) -> int:
        return len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Module:
    """A linked module: functions plus kernel entry points.

    The linker (see :mod:`repro.frontend.linker`) computes
    ``worst_case_regs`` per kernel — the baseline GPU's per-warp register
    allocation, taken as the maximum register usage over the reachable call
    graph (Section II of the paper).
    """

    functions: Dict[str, Function] = field(default_factory=dict)
    worst_case_regs: Dict[str, int] = field(default_factory=dict)
    code_bytes: int = 0

    def add(self, func: Function) -> None:
        if func.name in self.functions:
            raise IsaError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IsaError(f"unknown function {name!r}") from None

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def kernel(self, name: str) -> Function:
        func = self.function(name)
        if not func.is_kernel:
            raise IsaError(f"{name!r} is not a kernel")
        return func

    def reachable(self, root: str) -> List[str]:
        """Function names reachable from *root* (root first, DFS order)."""
        seen: List[str] = []
        seen_set = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen_set:
                continue
            seen_set.add(name)
            seen.append(name)
            func = self.function(name)
            for site in func.callees():
                for target in site:
                    if target not in seen_set:
                        stack.append(target)
        return seen

    @property
    def total_static_instructions(self) -> int:
        return sum(len(f) for f in self.functions.values())
