"""Instruction representation for the mini-ISA.

Instructions are warp-level: the functional emulator applies them to 32-lane
register vectors under an active mask.  Register operands are plain integers
(architectural register numbers 0..255); predicate registers are 0..7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .opcodes import Opcode, op_class, OpClass

#: Number of threads per warp (fixed, as on NVIDIA hardware).
WARP_SIZE = 32

#: Architectural register-count ceiling (8-bit register identifiers).
MAX_REGS = 256

#: First callee-saved architectural register.  The paper profiles the NVIDIA
#: ABI and finds callee-saved registers form a contiguous block from R16.
CALLEE_SAVED_BASE = 16

#: Number of predicate registers per thread.
NUM_PREDS = 8


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    Fields not applicable to an opcode are left at their defaults; the
    :mod:`repro.isa.validator` enforces per-opcode shape.

    Attributes:
        op: the opcode.
        dst: destination registers (usually 0 or 1).
        srcs: source registers.
        imm: immediate operand (offsets, comparison selector, constants).
        target: label name for branches/SSY, callee name for CALL.
        pdst: destination predicate register (SETP).
        psrc: source predicate register (CBRA, SEL).
        push_regs: for PUSH/POP — the contiguous (start, count) register
            range being saved/restored; always starts at or above
            CALLEE_SAVED_BASE for ABI-generated code.
        is_spill: for LDL/STL — True when the access implements an ABI
            spill/fill (as opposed to a genuine local-array access).
        call_targets: for CALLI — the static over-approximation of possible
            callees (used by the call-graph analysis for indirect calls).
    """

    op: Opcode
    dst: Tuple[int, ...] = ()
    srcs: Tuple[int, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None
    pdst: Optional[int] = None
    psrc: Optional[int] = None
    push_regs: Optional[Tuple[int, int]] = None
    is_spill: bool = False
    call_targets: Tuple[str, ...] = ()

    @property
    def op_class(self) -> OpClass:
        return op_class(self.op)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.dst:
            parts.append("R" + ",R".join(str(r) for r in self.dst))
        if self.pdst is not None:
            parts.append(f"P{self.pdst}")
        if self.srcs:
            parts.append("R" + ",R".join(str(r) for r in self.srcs))
        if self.psrc is not None:
            parts.append(f"@P{self.psrc}")
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(self.target)
        if self.push_regs is not None:
            start, count = self.push_regs
            parts.append(f"[R{start}..R{start + count - 1}]")
        return " ".join(parts)


def alu(op: Opcode, dst: int, *srcs: int, imm: Optional[int] = None) -> Instruction:
    """Build an ALU/FPU instruction ``dst <- op(srcs, imm)``."""
    return Instruction(op=op, dst=(dst,), srcs=tuple(srcs), imm=imm)


def movi(dst: int, imm: int) -> Instruction:
    """``dst <- imm``."""
    return Instruction(op=Opcode.MOVI, dst=(dst,), imm=imm)


def setp(pdst: int, cmp_op: int, a: int, b: int) -> Instruction:
    """Predicate compare: ``P[pdst] <- cmp(a, b)``."""
    return Instruction(op=Opcode.SETP, pdst=pdst, srcs=(a, b), imm=cmp_op)


def ldg(dst: int, addr: int, offset: int = 0) -> Instruction:
    """Global load ``dst <- [addr + offset]``."""
    return Instruction(op=Opcode.LDG, dst=(dst,), srcs=(addr,), imm=offset)


def stg(addr: int, value: int, offset: int = 0) -> Instruction:
    """Global store ``[addr + offset] <- value``."""
    return Instruction(op=Opcode.STG, srcs=(addr, value), imm=offset)


def ldl(dst: int, offset: int, is_spill: bool = False) -> Instruction:
    """Local load from a static offset."""
    return Instruction(op=Opcode.LDL, dst=(dst,), imm=offset, is_spill=is_spill)


def stl(offset: int, value: int, is_spill: bool = False) -> Instruction:
    """Local store to a static offset."""
    return Instruction(op=Opcode.STL, srcs=(value,), imm=offset, is_spill=is_spill)


def lds(dst: int, addr: int, offset: int = 0) -> Instruction:
    """Shared load."""
    return Instruction(op=Opcode.LDS, dst=(dst,), srcs=(addr,), imm=offset)


def sts(addr: int, value: int, offset: int = 0) -> Instruction:
    """Shared store."""
    return Instruction(op=Opcode.STS, srcs=(addr, value), imm=offset)


def push(start: int, count: int) -> Instruction:
    """Push ``count`` registers starting at ``start`` onto the register stack."""
    return Instruction(op=Opcode.PUSH, push_regs=(start, count))


def pop(start: int, count: int) -> Instruction:
    """Pop ``count`` registers starting at ``start`` from the register stack."""
    return Instruction(op=Opcode.POP, push_regs=(start, count))


def call(target: str) -> Instruction:
    """Direct call to *target*."""
    return Instruction(op=Opcode.CALL, target=target)


def calli(addr_reg: int, call_targets: Tuple[str, ...]) -> Instruction:
    """Indirect call through a register, with static candidates."""
    return Instruction(op=Opcode.CALLI, srcs=(addr_reg,), call_targets=call_targets)


def ret() -> Instruction:
    """Return from a device function."""
    return Instruction(op=Opcode.RET)


def bra(target: str) -> Instruction:
    """Unconditional branch."""
    return Instruction(op=Opcode.BRA, target=target)


def cbra(psrc: int, target: str) -> Instruction:
    """Conditional (possibly divergent) branch on a predicate."""
    return Instruction(op=Opcode.CBRA, psrc=psrc, target=target)


def ssy(target: str) -> Instruction:
    """Push a reconvergence point."""
    return Instruction(op=Opcode.SSY, target=target)


def sync() -> Instruction:
    """Reconverge at the enclosing SSY target."""
    return Instruction(op=Opcode.SYNC)


def bar() -> Instruction:
    """Block-wide barrier."""
    return Instruction(op=Opcode.BAR)


def exit_() -> Instruction:
    """Kernel exit."""
    return Instruction(op=Opcode.EXIT)


def nop() -> Instruction:
    """No-op."""
    return Instruction(op=Opcode.NOP)
