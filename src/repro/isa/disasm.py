"""Textual assembly: disassembler and (round-trip) assembler.

The format is line-oriented SASS-like text, one instruction per line, with
labels as ``.name:`` lines.  ``assemble_function(disassemble_function(f))``
reproduces *f* exactly — handy for debugging compiled output, writing
hand-crafted test kernels, and golden-file tests.

Example::

    .func mid regs=18 callee_saved=16:2
        PUSH [R16..R17]
        MOV R16, R4
        IADD R12, R16, R16
        CALL leaf
        POP [R16..R17]
        RET
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .instructions import Instruction
from .opcodes import Opcode
from .program import Function, IsaError, Module


def _operands(inst: Instruction) -> str:
    parts: List[str] = []
    if inst.op in (Opcode.PUSH, Opcode.POP):
        start, count = inst.push_regs
        return f"[R{start}..R{start + count - 1}]"
    if inst.pdst is not None:
        parts.append(f"P{inst.pdst}")
    parts.extend(f"R{r}" for r in inst.dst)
    parts.extend(f"R{r}" for r in inst.srcs)
    if inst.psrc is not None:
        parts.append(f"@P{inst.psrc}")
    if inst.imm is not None:
        parts.append(f"#{inst.imm}")
    if inst.target is not None:
        parts.append(inst.target)
    if inst.call_targets:
        parts.append("{" + ",".join(inst.call_targets) + "}")
    if inst.is_spill:
        parts.append("!spill")
    return ", ".join(parts)


def disassemble_function(func: Function) -> str:
    """Render *func* as assembly text."""
    header = f".func {func.name} regs={func.num_regs}"
    if func.is_kernel:
        header += " kernel"
        if func.shared_mem_bytes:
            header += f" smem={func.shared_mem_bytes}"
    if func.callee_saved is not None:
        start, count = func.callee_saved
        header += f" callee_saved={start}:{count}"
    lines = [header]
    labels_at: Dict[int, List[str]] = {}
    for label, index in func.labels.items():
        labels_at.setdefault(index, []).append(label)
    for index, inst in enumerate(func.instructions):
        for label in sorted(labels_at.get(index, ())):
            lines.append(f"{label}:")
        operands = _operands(inst)
        lines.append(f"    {inst.op.value}" + (f" {operands}" if operands else ""))
    for label in sorted(labels_at.get(len(func.instructions), ())):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"


def disassemble_module(module: Module) -> str:
    """Render every function of *module*."""
    return "\n".join(
        disassemble_function(func) for func in module.functions.values()
    )


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------


def _parse_reg(token: str) -> int:
    if not token.startswith("R") or not token[1:].isdigit():
        raise IsaError(f"bad register token {token!r}")
    return int(token[1:])


def _parse_operands(op: Opcode, text: str) -> Instruction:
    dst: List[int] = []
    srcs: List[int] = []
    imm: Optional[int] = None
    target: Optional[str] = None
    pdst: Optional[int] = None
    psrc: Optional[int] = None
    push_regs: Optional[Tuple[int, int]] = None
    call_targets: Tuple[str, ...] = ()
    is_spill = False

    # Candidate-target braces contain commas; extract them before splitting.
    if "{" in text:
        open_idx = text.index("{")
        close_idx = text.index("}", open_idx)
        call_targets = tuple(
            t.strip() for t in text[open_idx + 1 : close_idx].split(",") if t.strip()
        )
        text = text[:open_idx] + text[close_idx + 1 :]
    tokens = [t.strip() for t in text.split(",")] if text.strip() else []
    # PUSH/POP use the bracket range syntax, possibly containing "..".
    if op in (Opcode.PUSH, Opcode.POP):
        joined = text.strip()
        if not (joined.startswith("[R") and joined.endswith("]")):
            raise IsaError(f"{op.value}: bad register range {joined!r}")
        lo, hi = joined[1:-1].split("..")
        start = _parse_reg(lo)
        end = _parse_reg(hi)
        return Instruction(op=op, push_regs=(start, end - start + 1))

    reg_tokens: List[str] = []
    for token in tokens:
        if not token:
            continue
        if token.startswith("@P"):
            psrc = int(token[2:])
        elif token.startswith("P") and token[1:].isdigit():
            pdst = int(token[1:])
        elif token.startswith("#"):
            imm = int(token[1:])
        elif token == "!spill":
            is_spill = True
        elif token.startswith("R") and token[1:].isdigit():
            reg_tokens.append(token)
        else:
            if target is not None:
                raise IsaError(f"{op.value}: multiple targets in {text!r}")
            target = token

    # Split registers into dst/srcs by opcode shape.
    from .validator import _SHAPES  # shared shape table

    shape = _SHAPES.get(op)
    regs = [_parse_reg(t) for t in reg_tokens]
    if shape is not None:
        n_dst, n_src = shape
        if len(regs) != n_dst + n_src:
            raise IsaError(
                f"{op.value}: expected {n_dst + n_src} registers, got {len(regs)}"
            )
        dst = regs[:n_dst]
        srcs = regs[n_dst:]
    else:
        srcs = regs

    return Instruction(
        op=op,
        dst=tuple(dst),
        srcs=tuple(srcs),
        imm=imm,
        target=target,
        pdst=pdst,
        psrc=psrc,
        push_regs=push_regs,
        call_targets=call_targets,
        is_spill=is_spill,
    )


def assemble_function(text: str) -> Function:
    """Parse one ``.func`` block back into a :class:`Function`."""
    lines = [line.rstrip() for line in text.splitlines()]
    lines = [line for line in lines if line.strip() and not line.strip().startswith(";")]
    if not lines or not lines[0].startswith(".func "):
        raise IsaError("assembly must start with a .func header")
    header = lines[0].split()
    name = header[1]
    num_regs = 0
    is_kernel = False
    shared = 0
    callee_saved: Optional[Tuple[int, int]] = None
    for field in header[2:]:
        if field == "kernel":
            is_kernel = True
        elif field.startswith("regs="):
            num_regs = int(field[5:])
        elif field.startswith("smem="):
            shared = int(field[5:])
        elif field.startswith("callee_saved="):
            start, count = field[len("callee_saved="):].split(":")
            callee_saved = (int(start), int(count))
        else:
            raise IsaError(f"unknown .func field {field!r}")

    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for line in lines[1:]:
        stripped = line.strip()
        if stripped.endswith(":") and not stripped.startswith("."):
            raise IsaError(f"labels must begin with '.': {stripped!r}")
        if stripped.endswith(":"):
            labels[stripped[:-1]] = len(instructions)
            continue
        mnemonic, _, rest = stripped.partition(" ")
        try:
            op = Opcode(mnemonic)
        except ValueError:
            raise IsaError(f"unknown opcode {mnemonic!r}") from None
        instructions.append(_parse_operands(op, rest))

    func = Function(
        name=name,
        instructions=instructions,
        labels=labels,
        num_regs=num_regs,
        callee_saved=callee_saved,
        is_kernel=is_kernel,
        shared_mem_bytes=shared,
    )
    func.fru = num_regs if is_kernel else (
        (callee_saved[1] + 1) if callee_saved else 1
    )
    return func


def assemble_module(text: str) -> Module:
    """Parse a multi-function listing into a linked module."""
    module = Module()
    blocks = []
    current: List[str] = []
    for line in text.splitlines():
        if line.startswith(".func ") and current:
            blocks.append("\n".join(current))
            current = [line]
        else:
            current.append(line)
    if current:
        blocks.append("\n".join(current))
    for block in blocks:
        if block.strip():
            module.add(assemble_function(block))
    from ..frontend.linker import link

    link(module)
    return module
