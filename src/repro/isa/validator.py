"""Static validation of programs.

The validator enforces the structural invariants the rest of the system
relies on: operand shapes per opcode, label resolution, register bounds,
ABI conformance of PUSH/POP ranges, and balanced SSY/SYNC nesting on every
straight-line path (a conservative structural check, since the compiler only
emits structured control flow).
"""

from __future__ import annotations


from .instructions import Instruction, CALLEE_SAVED_BASE, MAX_REGS, NUM_PREDS
from .opcodes import Opcode
from .program import Function, IsaError, Module

# Opcodes and their required operand shapes: (n_dst, n_src).
_SHAPES = {
    Opcode.MOV: (1, 1),
    Opcode.MOVI: (1, 0),
    Opcode.IADD: (1, 2),
    Opcode.ISUB: (1, 2),
    Opcode.IMUL: (1, 2),
    Opcode.IMAD: (1, 3),
    Opcode.IMIN: (1, 2),
    Opcode.IMAX: (1, 2),
    Opcode.AND: (1, 2),
    Opcode.OR: (1, 2),
    Opcode.XOR: (1, 2),
    Opcode.SHL: (1, 2),
    Opcode.SHR: (1, 2),
    Opcode.SEL: (1, 2),
    Opcode.FADD: (1, 2),
    Opcode.FMUL: (1, 2),
    Opcode.FFMA: (1, 3),
    Opcode.MUFU: (1, 1),
    Opcode.LDG: (1, 1),
    Opcode.STG: (0, 2),
    Opcode.LDL: (1, 0),
    Opcode.STL: (0, 1),
    Opcode.LDS: (1, 1),
    Opcode.STS: (0, 2),
    Opcode.CALLI: (0, 1),
}

_NEEDS_TARGET = {Opcode.SSY, Opcode.CBRA, Opcode.BRA, Opcode.CALL}


def validate_function(func: Function) -> None:
    """Raise :class:`IsaError` if *func* is malformed."""
    if not func.instructions:
        raise IsaError(f"{func.name}: empty function")

    last_op = func.instructions[-1].op
    if func.is_kernel:
        if last_op is not Opcode.EXIT:
            raise IsaError(f"{func.name}: kernel must end with EXIT")
    else:
        if last_op is not Opcode.RET:
            raise IsaError(f"{func.name}: device function must end with RET")

    for idx, inst in enumerate(func.instructions):
        _validate_instruction(func, idx, inst)

    if func.callee_saved is not None:
        start, count = func.callee_saved
        if start < CALLEE_SAVED_BASE:
            raise IsaError(
                f"{func.name}: callee-saved block starts at R{start}, "
                f"below the ABI base R{CALLEE_SAVED_BASE}"
            )
        if start + count > MAX_REGS:
            raise IsaError(f"{func.name}: callee-saved block exceeds R{MAX_REGS - 1}")

    if func.num_regs > MAX_REGS:
        raise IsaError(
            f"{func.name}: uses {func.num_regs} registers, "
            f"exceeding the {MAX_REGS}-register ISA limit"
        )


def _validate_instruction(func: Function, idx: int, inst: Instruction) -> None:
    where = f"{func.name}[{idx}] {inst.op.value}"

    shape = _SHAPES.get(inst.op)
    if shape is not None:
        n_dst, n_src = shape
        if len(inst.dst) != n_dst:
            raise IsaError(f"{where}: expected {n_dst} dst regs, got {len(inst.dst)}")
        if len(inst.srcs) != n_src:
            raise IsaError(f"{where}: expected {n_src} src regs, got {len(inst.srcs)}")

    for reg in inst.dst + inst.srcs:
        if not 0 <= reg < MAX_REGS:
            raise IsaError(f"{where}: register R{reg} out of range")
        if reg >= func.num_regs:
            raise IsaError(
                f"{where}: R{reg} exceeds declared num_regs={func.num_regs}"
            )

    for preg in (inst.pdst, inst.psrc):
        if preg is not None and not 0 <= preg < NUM_PREDS:
            raise IsaError(f"{where}: predicate P{preg} out of range")

    if inst.op is Opcode.SETP and inst.pdst is None:
        raise IsaError(f"{where}: SETP requires a destination predicate")
    if inst.op is Opcode.CBRA and inst.psrc is None:
        raise IsaError(f"{where}: CBRA requires a source predicate")
    if inst.op is Opcode.SEL and inst.psrc is None:
        raise IsaError(f"{where}: SEL requires a source predicate")

    if inst.op in _NEEDS_TARGET:
        if inst.target is None:
            raise IsaError(f"{where}: missing target")
        if inst.op is not Opcode.CALL and inst.target not in func.labels:
            raise IsaError(f"{where}: unresolved label {inst.target!r}")

    if inst.op in (Opcode.PUSH, Opcode.POP):
        if inst.push_regs is None:
            raise IsaError(f"{where}: missing register range")
        start, count = inst.push_regs
        if count <= 0:
            raise IsaError(f"{where}: non-positive register count")
        if start < CALLEE_SAVED_BASE:
            raise IsaError(
                f"{where}: register range starts at R{start}, below the "
                f"callee-saved ABI base R{CALLEE_SAVED_BASE}"
            )
        if start + count > MAX_REGS:
            raise IsaError(f"{where}: register range exceeds R{MAX_REGS - 1}")

    if inst.op is Opcode.CALLI and not inst.call_targets:
        raise IsaError(f"{where}: CALLI requires static candidate targets")

    if inst.op in (Opcode.LDL, Opcode.STL, Opcode.LDS, Opcode.STS, Opcode.LDG, Opcode.STG):
        if inst.imm is None:
            raise IsaError(f"{where}: memory op requires an offset immediate")


def validate_module(module: Module) -> None:
    """Validate every function and cross-function references."""
    if not module.functions:
        raise IsaError("empty module")
    for func in module.functions.values():
        validate_function(func)
        for site in func.callees():
            for target in site:
                if target not in module.functions:
                    raise IsaError(f"{func.name}: call to unknown function {target!r}")
                if module.functions[target].is_kernel:
                    raise IsaError(f"{func.name}: cannot call kernel {target!r}")
    if not module.kernels():
        raise IsaError("module has no kernel entry point")
