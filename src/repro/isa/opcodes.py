"""Opcode definitions for the warp-level mini-ISA.

The ISA is a deliberately small SASS-like instruction set: enough to express
the compiled output of the kernel DSL (``repro.frontend``), including the
function-call ABI the paper studies (contiguous callee-saved spills starting
at R16, CALL/RET, structured SIMT divergence via SSY/CBRA/SYNC).

Each opcode carries a *class* used by the timing model to pick latency and
execution resources, and a set of boolean traits queried throughout the
code base (``is_mem``, ``is_call`` ...).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Execution-resource class of an instruction."""

    ALU = "alu"  # integer / logic pipeline
    FPU = "fpu"  # floating-point pipeline (same issue port, longer latency)
    SFU = "sfu"  # special-function unit (transcendentals)
    MEM = "mem"  # load/store unit -> L1D
    SMEM = "smem"  # shared-memory access (on-chip, no L1D traffic)
    CTRL = "ctrl"  # branches, calls, barriers
    STACK = "stack"  # PUSH/POP abstract spill/fill ops
    NOP = "nop"


class Opcode(enum.Enum):
    """All opcodes understood by the emulator and timing model."""

    # --- integer ALU ---
    MOV = "MOV"  # dst <- src
    MOVI = "MOVI"  # dst <- imm
    IADD = "IADD"
    ISUB = "ISUB"
    IMUL = "IMUL"
    IMAD = "IMAD"  # dst <- s0 * s1 + s2
    IMIN = "IMIN"
    IMAX = "IMAX"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    SHL = "SHL"
    SHR = "SHR"
    SETP = "SETP"  # pdst <- cmp(s0, s1); cmp_op in imm field
    SEL = "SEL"  # dst <- pred ? s0 : s1

    # --- floating point (lanes carry int64 values; FP ops are latency
    #     classes, arithmetic is done in integer domain for determinism) ---
    FADD = "FADD"
    FMUL = "FMUL"
    FFMA = "FFMA"

    # --- special function unit ---
    MUFU = "MUFU"  # generic transcendental; imm selects the function

    # --- memory ---
    LDG = "LDG"  # global load:  dst <- [s0 + imm]
    STG = "STG"  # global store: [s0 + imm] <- s1
    LDL = "LDL"  # local load   (fills in the baseline ABI)
    STL = "STL"  # local store  (spills in the baseline ABI)
    LDS = "LDS"  # shared load
    STS = "STS"  # shared store

    # --- abstract register-stack ops (compiler-emitted prologue/epilogue) ---
    PUSH = "PUSH"  # push a contiguous range of callee-saved registers
    POP = "POP"  # pop it back

    # --- control ---
    SSY = "SSY"  # push reconvergence point
    CBRA = "CBRA"  # conditional (possibly divergent) branch on predicate
    BRA = "BRA"  # unconditional branch
    SYNC = "SYNC"  # reconverge at the SSY target
    CALL = "CALL"  # direct call
    CALLI = "CALLI"  # indirect call through a register (function table)
    RET = "RET"
    BAR = "BAR"  # block-wide barrier
    EXIT = "EXIT"
    NOP = "NOP"


_ALU_OPS = frozenset(
    {
        Opcode.MOV,
        Opcode.MOVI,
        Opcode.IADD,
        Opcode.ISUB,
        Opcode.IMUL,
        Opcode.IMAD,
        Opcode.IMIN,
        Opcode.IMAX,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SETP,
        Opcode.SEL,
    }
)
_FPU_OPS = frozenset({Opcode.FADD, Opcode.FMUL, Opcode.FFMA})
_SFU_OPS = frozenset({Opcode.MUFU})
_MEM_OPS = frozenset({Opcode.LDG, Opcode.STG, Opcode.LDL, Opcode.STL})
_SMEM_OPS = frozenset({Opcode.LDS, Opcode.STS})
_STACK_OPS = frozenset({Opcode.PUSH, Opcode.POP})
_CTRL_OPS = frozenset(
    {
        Opcode.SSY,
        Opcode.CBRA,
        Opcode.BRA,
        Opcode.SYNC,
        Opcode.CALL,
        Opcode.CALLI,
        Opcode.RET,
        Opcode.BAR,
        Opcode.EXIT,
    }
)

_LOAD_OPS = frozenset({Opcode.LDG, Opcode.LDL, Opcode.LDS})
_STORE_OPS = frozenset({Opcode.STG, Opcode.STL, Opcode.STS})
_GLOBAL_OPS = frozenset({Opcode.LDG, Opcode.STG})
_LOCAL_OPS = frozenset({Opcode.LDL, Opcode.STL})
_CALL_OPS = frozenset({Opcode.CALL, Opcode.CALLI})


def op_class(op: Opcode) -> OpClass:
    """Return the execution-resource class of *op*."""
    if op in _ALU_OPS:
        return OpClass.ALU
    if op in _FPU_OPS:
        return OpClass.FPU
    if op in _SFU_OPS:
        return OpClass.SFU
    if op in _MEM_OPS:
        return OpClass.MEM
    if op in _SMEM_OPS:
        return OpClass.SMEM
    if op in _STACK_OPS:
        return OpClass.STACK
    if op in _CTRL_OPS:
        return OpClass.CTRL
    return OpClass.NOP


def is_mem(op: Opcode) -> bool:
    """True for L1D-bound memory ops (global + local)."""
    return op in _MEM_OPS


def is_load(op: Opcode) -> bool:
    """True for load opcodes (global/local/shared)."""
    return op in _LOAD_OPS


def is_store(op: Opcode) -> bool:
    """True for store opcodes."""
    return op in _STORE_OPS


def is_global_mem(op: Opcode) -> bool:
    """True for LDG/STG."""
    return op in _GLOBAL_OPS


def is_local_mem(op: Opcode) -> bool:
    """True for LDL/STL."""
    return op in _LOCAL_OPS


def is_call(op: Opcode) -> bool:
    """True for CALL/CALLI."""
    return op in _CALL_OPS


def is_branch(op: Opcode) -> bool:
    """True for BRA/CBRA."""
    return op in (Opcode.BRA, Opcode.CBRA)


# Comparison selectors used in SETP's ``imm`` field.
class CmpOp(enum.IntEnum):
    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5
