"""Compiler-managed register-file cache for cross-call register reuse.

A small per-warp cache (``rfcache_regs`` entries) carved out of the
register allocation holds the most recently pushed callee-saved
registers.  Shallow call chains — the common case the paper's
call-graph study documents — hit entirely in the cache: a push is a
1-cycle rename (like a CARS stack op) and the matching pop restores the
value without touching memory.  Chains deeper than the cache evict the
least-recently-pushed entries to local memory; a later pop of an
evicted slot must fetch it back as a blocking local-memory load.

The occupancy trade is the opposite of RegDem's: the cache *adds* to
the per-warp register demand floor (``kernel_fru + rfcache_regs``) but
never exceeds the linker's baseline worst case, so occupancy can only
improve while the hot spill traffic disappears.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, ClassVar, Optional

from ..callgraph.analysis import KernelStackAnalysis
from ..cars.policy import PolicyMemory
from ..config.gpu_config import GPUConfig
from ..core.techniques import AbiModel, LaunchContext
from ..core.uop import Uop, UopKind, ctrl_uop
from ..core.warp import WarpCtx
from ..emu.trace import KernelTrace, TraceKind, TraceRecord
from ..metrics.counters import STREAM_SPILL, SimStats

_EXEC = UopKind.EXEC
_MEM = UopKind.MEM


class RegisterFileCache:
    """Per-warp LRU cache of spill-stack slots.

    Keys are spill-slot ids (the same address space
    ``WarpCtx.spill_sectors`` maps to local memory), so eviction and
    refill traffic lands on exactly the sectors the baseline ABI would
    have used for those registers.
    """

    __slots__ = ("capacity", "_slots")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._slots: "OrderedDict[int, None]" = OrderedDict()

    def insert(self, slot: int) -> Optional[int]:
        """Cache *slot*; return the evicted victim slot, if any."""
        self._slots[slot] = None
        self._slots.move_to_end(slot)
        if len(self._slots) > self.capacity:
            victim, _ = self._slots.popitem(last=False)
            return victim
        return None

    def lookup(self, slot: int) -> bool:
        """True (and consume the entry) iff *slot* is still cached."""
        if slot in self._slots:
            del self._slots[slot]
            return True
        return False


class RfCacheContext(LaunchContext):
    """Baseline-style expansion through a register-file cache."""

    blocking_fill_bucket = "spill_fill"

    def __init__(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: KernelStackAnalysis,
    ) -> None:
        self.analysis = analysis
        # Call-free kernels carry no cache: demand and timing match the
        # baseline exactly.
        self.cache_regs = config.rfcache_regs if analysis.has_calls else 0
        super().__init__(trace, config, stats)

    def scheduler_regs_per_warp(self) -> int:
        if not self.analysis.has_calls:
            return self.trace.regs_per_warp_baseline
        # The cache is extra register demand on top of the kernel's own
        # frame, capped at the linker's baseline worst case (allocating
        # more than the baseline would be strictly worse).
        return min(
            self.trace.regs_per_warp_baseline,
            self.analysis.kernel_fru + self.cache_regs,
        )

    def _cache_for(self, warp: WarpCtx) -> RegisterFileCache:
        cache = warp.abi_state
        if cache is None:
            cache = RegisterFileCache(self.cache_regs)
            warp.abi_state = cache
        return cache

    def expand(self, warp: WarpCtx, rec: TraceRecord, out: Any) -> None:
        cfg = self.config
        stats = self.stats
        kind = rec.kind
        if kind == TraceKind.CALL:
            stats.calls += 1
            warp.frame_starts.append(warp.spill_depth)
            warp.spill_depth += rec.push_count
            depth = len(warp.frame_starts)
            if depth > stats.peak_stack_depth:
                stats.peak_stack_depth = depth
            out.append(ctrl_uop(cfg.ctrl_latency, "CALL"))
        elif kind == TraceKind.RET:
            stats.returns += 1
            if rec.frame_release and warp.frame_starts:
                warp.spill_depth = warp.frame_starts.pop()
            out.append(ctrl_uop(cfg.ctrl_latency, "RET"))
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            cache = self._cache_for(warp)
            evicted = False
            for i in range(rec.reg_count):
                # The push itself is a 1-cycle rename into the cache.
                out.append(
                    Uop(_EXEC, cfg.stack_op_latency, (), (rec.srcs[i],),
                        mix="STACK")
                )
                victim = cache.insert(start + i)
                if victim is not None:
                    evicted = True
                    stats.rfcache_evictions += 1
                    out.append(
                        Uop(_MEM, 1, (), (),
                            warp.spill_sectors(victim),
                            STREAM_SPILL, True, "SPILL_ST")
                    )
            if evicted:
                stats.traps += 1
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            cache = self._cache_for(warp)
            last_miss: Optional[Uop] = None
            for i in range(rec.reg_count):
                slot = start + i
                if cache.lookup(slot):
                    stats.rfcache_hits += 1
                    out.append(
                        Uop(_EXEC, cfg.stack_op_latency, (rec.dst[i],), (),
                            mix="STACK")
                    )
                else:
                    stats.rfcache_misses += 1
                    uop = Uop(_MEM, 1, (rec.dst[i],), (),
                              warp.spill_sectors(slot),
                              STREAM_SPILL, False, "SPILL_LD")
                    out.append(uop)
                    last_miss = uop
            if last_miss is not None:
                # An evicted register must be back before the caller can
                # resume; the last refill parks the warp (charged to the
                # ``spill_fill`` CPI bucket).
                last_miss.blocking = True
        else:
            self._expand_common(warp, rec, out, extra=0)


@dataclass(frozen=True)
class RfCacheAbi(AbiModel):
    """ABI model wiring :class:`RfCacheContext` into the plugin registry."""

    name: ClassVar[str] = "rfcache"
    requires_analysis: ClassVar[bool] = True

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        return RfCacheContext(
            trace, config, stats, self._require_analysis(analysis)
        )
