"""Static register compression (arXiv 2006.05693).

The compiler re-encodes the kernel's register file at a fixed
compression ratio, so the block scheduler sees a *smaller* static
allocation — more blocks fit per SM on register-limited kernels.  The
ABI itself is untouched: call-boundary spills and fills are still
local-memory traffic, exactly like the baseline.  The costs:

* every instruction that reads or writes the compressed register file
  pays ``regcomp_extra_cycles`` to run the decompression network (the
  original paper hides most of this in the operand-collector stage; we
  charge it pessimistically on the execution paths);
* there is no register stack at all, so every call that pushes state
  spills to memory — each such call counts as one ``traps`` event,
  which is what the interprocedural ``regcomp`` scheme (capacity 0)
  predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

from ..callgraph.analysis import KernelStackAnalysis
from ..cars.policy import PolicyMemory
from ..config.gpu_config import GPUConfig
from ..core.techniques import AbiModel, LaunchContext
from ..core.uop import Uop, UopKind, ctrl_uop
from ..core.warp import WarpCtx
from ..emu.trace import KernelTrace, TraceKind, TraceRecord
from ..metrics.counters import STREAM_SPILL, SimStats

_MEM = UopKind.MEM


def compressed_regs(baseline_regs: int, ratio_pct: int) -> int:
    """Scheduler-visible footprint after compression (at least one reg)."""
    return max(1, -(-baseline_regs * ratio_pct // 100))


class RegCompContext(LaunchContext):
    """Baseline-style expansion over a compressed static allocation."""

    blocking_fill_bucket = "spill_fill"

    def __init__(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: KernelStackAnalysis,
    ) -> None:
        self.analysis = analysis
        super().__init__(trace, config, stats)

    def scheduler_regs_per_warp(self) -> int:
        return compressed_regs(
            self.trace.regs_per_warp_baseline, self.config.regcomp_ratio_pct
        )

    def expand(self, warp: WarpCtx, rec: TraceRecord, out: Any) -> None:
        cfg = self.config
        stats = self.stats
        kind = rec.kind
        if kind == TraceKind.CALL:
            stats.calls += 1
            warp.frame_starts.append(warp.spill_depth)
            warp.spill_depth += rec.push_count
            depth = len(warp.frame_starts)
            if depth > stats.peak_stack_depth:
                stats.peak_stack_depth = depth
            if rec.push_count > 0:
                # No stack capacity: a call carrying callee-saved state
                # always round-trips it through memory.  Counted per
                # call (not per PUSH) so the static trap lower bound
                # (min_traps_per_call x calls) stays sound however the
                # compiler schedules the spill stores.
                stats.traps += 1
            out.append(ctrl_uop(cfg.ctrl_latency + cfg.regcomp_extra_cycles,
                                "CALL"))
        elif kind == TraceKind.RET:
            stats.returns += 1
            if rec.frame_release and warp.frame_starts:
                warp.spill_depth = warp.frame_starts.pop()
            out.append(ctrl_uop(cfg.ctrl_latency + cfg.regcomp_extra_cycles,
                                "RET"))
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            for i in range(rec.reg_count):
                out.append(
                    Uop(_MEM, 1, (), (rec.srcs[i],),
                        warp.spill_sectors(start + i),
                        STREAM_SPILL, True, "SPILL_ST")
                )
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            last_fill: Optional[Uop] = None
            for i in range(rec.reg_count):
                uop = Uop(_MEM, 1, (rec.dst[i],), (),
                          warp.spill_sectors(start + i),
                          STREAM_SPILL, False, "SPILL_LD")
                out.append(uop)
                last_fill = uop
            if last_fill is not None:
                # Decompressed state must be back in the register file
                # before the caller resumes: the last fill blocks the
                # warp (parked cycles land in ``spill_fill``).
                last_fill.blocking = True
        else:
            self._expand_common(
                warp, rec, out, extra=cfg.regcomp_extra_cycles
            )


@dataclass(frozen=True)
class RegCompAbi(AbiModel):
    """ABI model wiring :class:`RegCompContext` into the plugin registry."""

    name: ClassVar[str] = "regcomp"
    requires_analysis: ClassVar[bool] = True

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        return RegCompContext(
            trace, config, stats, self._require_analysis(analysis)
        )
