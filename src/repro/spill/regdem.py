"""RegDem-style shared-memory register demotion (arXiv 1907.02894).

The compiler demotes the coldest live registers — exactly the
callee-saved set the ABI spills at call boundaries — into a per-warp
arena carved out of shared memory.  Relative to the baseline ABI:

* spills/fills inside the arena are shared-memory operations
  (``smem_latency`` EXEC µops) instead of local-memory traffic through
  the cache hierarchy;
* the block scheduler sees a *reduced* register demand (the linker's
  worst case minus the demoted set), which can raise occupancy;
* the arena is charged against the shared-memory occupancy limit — the
  occupancy trade the original paper studies;
* call chains deeper than the arena overflow to local memory through
  :class:`~repro.mem.subsystem.MemorySubsystem`, exactly like a baseline
  spill.  Each overflowing PUSH counts as one ``traps`` event so the
  interprocedural trap-rate bounds apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

from ..callgraph.analysis import KernelStackAnalysis
from ..cars.policy import PolicyMemory
from ..config.gpu_config import GPUConfig
from ..core.occupancy import Occupancy, compute_occupancy
from ..core.techniques import AbiModel, LaunchContext
from ..core.uop import Uop, UopKind, ctrl_uop
from ..core.warp import WarpCtx
from ..emu.trace import KernelTrace, TraceKind, TraceRecord
from ..metrics.counters import STREAM_SPILL, SimStats

_EXEC = UopKind.EXEC
_MEM = UopKind.MEM

#: Bytes of shared memory one warp-wide register occupies (4 B x 32 lanes).
BYTES_PER_WARP_REG = 128


class RegDemContext(LaunchContext):
    """Baseline-style expansion with a shared-memory spill arena."""

    blocking_fill_bucket = "spill_fill"

    def __init__(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: KernelStackAnalysis,
    ) -> None:
        self.analysis = analysis
        # Call-free kernels get no arena: RegDem (like CARS) leaves them
        # untouched, so baseline timing and occupancy are preserved.
        self.arena_regs = (
            config.regdem_smem_bytes_per_warp // BYTES_PER_WARP_REG
            if analysis.has_calls
            else 0
        )
        super().__init__(trace, config, stats)

    def scheduler_regs_per_warp(self) -> int:
        if not self.analysis.has_calls:
            return self.trace.regs_per_warp_baseline
        # Demoted registers live in shared memory, so the linker's
        # worst-case demand shrinks by the arena — but never below the
        # kernel's own frame.
        return max(
            self.analysis.kernel_fru,
            self.trace.regs_per_warp_baseline - self.arena_regs,
        )

    def _occupancy(self) -> Occupancy:
        smem = (
            self.trace.shared_mem_bytes
            + self.arena_regs * BYTES_PER_WARP_REG * self.warps_per_block
        )
        return compute_occupancy(
            self.config, self.scheduler_regs_per_warp(), self.warps_per_block, smem
        )

    def expand(self, warp: WarpCtx, rec: TraceRecord, out: Any) -> None:
        cfg = self.config
        stats = self.stats
        kind = rec.kind
        if kind == TraceKind.CALL:
            stats.calls += 1
            warp.frame_starts.append(warp.spill_depth)
            warp.spill_depth += rec.push_count
            depth = len(warp.frame_starts)
            if depth > stats.peak_stack_depth:
                stats.peak_stack_depth = depth
            out.append(ctrl_uop(cfg.ctrl_latency, "CALL"))
        elif kind == TraceKind.RET:
            stats.returns += 1
            if rec.frame_release and warp.frame_starts:
                warp.spill_depth = warp.frame_starts.pop()
            out.append(ctrl_uop(cfg.ctrl_latency, "RET"))
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            arena = self.arena_regs
            overflowed = False
            for i in range(rec.reg_count):
                slot = start + i
                if slot < arena:
                    stats.smem_spill_regs += 1
                    out.append(
                        Uop(_EXEC, cfg.smem_latency, (), (rec.srcs[i],), mix="SMEM")
                    )
                else:
                    overflowed = True
                    stats.spill_overflow_regs += 1
                    out.append(
                        Uop(_MEM, 1, (), (rec.srcs[i],),
                            warp.spill_sectors(slot),
                            STREAM_SPILL, True, "SPILL_ST")
                    )
            if overflowed:
                stats.traps += 1
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            arena = self.arena_regs
            last_fill: Optional[Uop] = None
            for i in range(rec.reg_count):
                slot = start + i
                if slot < arena:
                    stats.smem_fill_regs += 1
                    out.append(
                        Uop(_EXEC, cfg.smem_latency, (rec.dst[i],), (), mix="SMEM")
                    )
                else:
                    uop = Uop(_MEM, 1, (rec.dst[i],), (),
                              warp.spill_sectors(slot),
                              STREAM_SPILL, False, "SPILL_LD")
                    out.append(uop)
                    last_fill = uop
            if last_fill is not None:
                # The caller resumes only once its demoted state is back:
                # the last overflow fill blocks the warp (charged to the
                # ``spill_fill`` CPI bucket while parked).
                last_fill.blocking = True
        else:
            self._expand_common(warp, rec, out, extra=0)


@dataclass(frozen=True)
class RegDemAbi(AbiModel):
    """ABI model wiring :class:`RegDemContext` into the plugin registry."""

    name: ClassVar[str] = "regdem"
    requires_analysis: ClassVar[bool] = True

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        return RegDemContext(
            trace, config, stats, self._require_analysis(analysis)
        )
