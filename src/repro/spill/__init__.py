"""Rival register-pressure arms built on the technique plugin API.

Two published alternatives to CARS, implemented end-to-end against the
:class:`~repro.core.techniques.AbiModel` protocol:

* ``regdem`` — shared-memory register demotion (RegDem, arXiv
  1907.02894): call-boundary spills land in a per-warp shared-memory
  arena instead of local memory, trading shared-memory occupancy for
  cheaper spill traffic.  Parametric family ``regdem_<r>`` sizes the
  arena at ``r`` registers.
* ``rfcache`` — a compiler-managed register-file cache absorbing
  cross-call register reuse; deep chains evict to local memory.
  Parametric family ``rfcache_<r>`` sizes the cache.

Importing this package registers both ABI models, both fixed arms, and
both parametric families, so ``resolve_technique("regdem")`` works in
any process that imported :mod:`repro` (the top-level ``__init__``
imports this module exactly so pool workers get the registrations).
This module is also the worked example for adding an arm of your own:
subclass ``AbiModel``, register it, register the techniques built on
it — no edits to ``repro.core`` required.
"""

from __future__ import annotations

from ..core.techniques import (
    Technique,
    register_abi_model,
    register_technique,
    register_technique_family,
)
from .regdem import RegDemAbi, RegDemContext
from .rfcache import RegisterFileCache, RfCacheAbi, RfCacheContext

register_abi_model("regdem", lambda technique: RegDemAbi())
register_abi_model("rfcache", lambda technique: RfCacheAbi())

#: RegDem at the config's default arena (8 demoted registers per warp).
REGDEM = register_technique(Technique("regdem", abi="regdem"))

#: Register-file cache at the config's default capacity (12 entries).
RFCACHE = register_technique(Technique("rfcache", abi="rfcache"))


def regdem(arena_regs: int) -> Technique:
    """RegDem with a shared-memory arena of *arena_regs* registers."""
    if arena_regs <= 0:
        raise ValueError(f"arena must hold at least one register: {arena_regs}")
    return Technique(
        f"regdem_{arena_regs}",
        abi="regdem",
        config_fn=lambda c, r=arena_regs: c.with_regdem_arena(r),
    )


def rfcache(regs: int) -> Technique:
    """Register-file cache with *regs* entries per warp."""
    if regs <= 0:
        raise ValueError(f"cache must hold at least one register: {regs}")
    return Technique(
        f"rfcache_{regs}",
        abi="rfcache",
        config_fn=lambda c, r=regs: c.with_rfcache_regs(r),
    )


register_technique_family(
    "regdem_", lambda suffix: regdem(int(suffix)), pattern="regdem_<r>"
)
register_technique_family(
    "rfcache_", lambda suffix: rfcache(int(suffix)), pattern="rfcache_<r>"
)

__all__ = [
    "REGDEM",
    "RFCACHE",
    "RegDemAbi",
    "RegDemContext",
    "RegisterFileCache",
    "RfCacheAbi",
    "RfCacheContext",
    "regdem",
    "rfcache",
]
