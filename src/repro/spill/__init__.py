"""Rival register-pressure arms built on the technique plugin API.

Three published alternatives to CARS, implemented end-to-end against
the :class:`~repro.core.techniques.AbiModel` protocol:

* ``regdem`` — shared-memory register demotion (RegDem, arXiv
  1907.02894): call-boundary spills land in a per-warp shared-memory
  arena instead of local memory, trading shared-memory occupancy for
  cheaper spill traffic.  Parametric family ``regdem_<r>`` sizes the
  arena at ``r`` registers.
* ``rfcache`` — a compiler-managed register-file cache absorbing
  cross-call register reuse; deep chains evict to local memory.
  Parametric family ``rfcache_<r>`` sizes the cache.
* ``regcomp`` — static register compression (arXiv 2006.05693): the
  scheduler-visible allocation shrinks to a fixed percentage of the
  baseline footprint (occupancy upside on register-limited kernels),
  while every instruction pays a decompression charge and every call
  still spills through memory.  Parametric family ``regcomp_<pct>``
  sets the compression ratio.

Importing this package registers the ABI models, the fixed arms, and
the parametric families, so ``resolve_technique("regdem")`` works in
any process that imported :mod:`repro` (the top-level ``__init__``
imports this module exactly so pool workers get the registrations).
This module is also the worked example for adding an arm of your own:
subclass ``AbiModel``, register it, register the techniques built on
it — no edits to ``repro.core`` required.
"""

from __future__ import annotations

from ..core.techniques import (
    Technique,
    parse_family_int,
    register_abi_model,
    register_technique,
    register_technique_family,
)
from .regcomp import RegCompAbi, RegCompContext
from .regdem import RegDemAbi, RegDemContext
from .rfcache import RegisterFileCache, RfCacheAbi, RfCacheContext

register_abi_model("regdem", lambda technique: RegDemAbi())
register_abi_model("rfcache", lambda technique: RfCacheAbi())
register_abi_model("regcomp", lambda technique: RegCompAbi())

#: RegDem at the config's default arena (8 demoted registers per warp).
REGDEM = register_technique(Technique("regdem", abi="regdem"))

#: Register-file cache at the config's default capacity (12 entries).
RFCACHE = register_technique(Technique("rfcache", abi="rfcache"))

#: Static register compression at the config's default ratio (70%).
REGCOMP = register_technique(Technique("regcomp", abi="regcomp"))


def regdem(arena_regs: int) -> Technique:
    """RegDem with a shared-memory arena of *arena_regs* registers."""
    if arena_regs <= 0:
        raise ValueError(f"arena must hold at least one register: {arena_regs}")
    return Technique(
        f"regdem_{arena_regs}",
        abi="regdem",
        config_fn=lambda c, r=arena_regs: c.with_regdem_arena(r),
    )


def rfcache(regs: int) -> Technique:
    """Register-file cache with *regs* entries per warp."""
    if regs <= 0:
        raise ValueError(f"cache must hold at least one register: {regs}")
    return Technique(
        f"rfcache_{regs}",
        abi="rfcache",
        config_fn=lambda c, r=regs: c.with_rfcache_regs(r),
    )


def regcomp(ratio_pct: int) -> Technique:
    """Static register compression at *ratio_pct* percent of baseline."""
    if not 1 <= ratio_pct <= 100:
        raise ValueError(f"ratio must be in 1..100 percent: {ratio_pct}")
    return Technique(
        f"regcomp_{ratio_pct}",
        abi="regcomp",
        config_fn=lambda c, p=ratio_pct: c.with_regcomp_ratio(p),
    )


register_technique_family(
    "regdem_", lambda suffix: regdem(parse_family_int(suffix)),
    pattern="regdem_<r>",
)
register_technique_family(
    "rfcache_", lambda suffix: rfcache(parse_family_int(suffix)),
    pattern="rfcache_<r>",
)
register_technique_family(
    "regcomp_", lambda suffix: regcomp(parse_family_int(suffix)),
    pattern="regcomp_<pct>",
)

__all__ = [
    "REGCOMP",
    "REGDEM",
    "RFCACHE",
    "RegCompAbi",
    "RegCompContext",
    "RegDemAbi",
    "RegDemContext",
    "RegisterFileCache",
    "RfCacheAbi",
    "RfCacheContext",
    "regcomp",
    "regdem",
    "rfcache",
]
