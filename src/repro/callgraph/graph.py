"""Call-graph construction from a linked module.

Reproduces the information the paper extracts with ``nvlink
--dump-callgraph`` plus SASS/ELF static analysis (Section V-C): nodes are
functions annotated with their FRU; edges are static call sites (indirect
sites contribute one edge per candidate target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.program import Module


@dataclass
class CallGraph:
    """Static call graph for one linked module.

    Attributes:
        edges: caller -> set of possible callees.
        fru: Function Register Usage per node.
        kernels: the ``__global__`` roots.
        recursion_bounds: declared per-function activation bounds (None =
            unknown), consumed by the interprocedural analysis.
    """

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    fru: Dict[str, int] = field(default_factory=dict)
    kernels: Tuple[str, ...] = ()
    recursion_bounds: Dict[str, Optional[int]] = field(default_factory=dict)

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def nodes(self) -> Set[str]:
        """Every function that appears as a caller or a callee."""
        names: Set[str] = set(self.edges)
        for targets in self.edges.values():
            names |= targets
        return names

    def sccs(self) -> List[FrozenSet[str]]:
        """Strongly connected components (iterative Tarjan).

        Returned in reverse topological order (callees before callers),
        which is exactly the order a bottom-up DP over the condensation
        wants.  Trivial one-node components are included; whether a node
        is *recursive* additionally requires a self-edge (see
        :meth:`recursive_nodes`).
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[FrozenSet[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            # Explicit work stack: (node, iterator over callees) frames.
            work: List[Tuple[str, List[str]]] = []
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, sorted(self.callees(root))))
            while work:
                node, todo = work[-1]
                advanced = False
                while todo:
                    child = todo.pop()
                    if child not in index:
                        index[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, sorted(self.callees(child))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    members: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        members.add(member)
                        if member == node:
                            break
                    components.append(frozenset(members))

        for name in sorted(self.nodes()):
            if name not in index:
                strongconnect(name)
        return components

    def reachable(self, root: str) -> Set[str]:
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for callee in self.callees(node):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def recursive_nodes(self) -> Set[str]:
        """Nodes that participate in a cycle (recursion)."""
        # Tarjan-free approach: a node is recursive if it can reach itself.
        recursive: Set[str] = set()
        for root in self.edges:
            stack = list(self.callees(root))
            seen: Set[str] = set()
            while stack:
                node = stack.pop()
                if node == root:
                    recursive.add(root)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.callees(node))
        return recursive

    def is_cyclic(self, root: str) -> bool:
        """True when the subgraph reachable from *root* contains a cycle."""
        reach = self.reachable(root)
        recursive = self.recursive_nodes()
        return bool(reach & recursive)

    def max_call_depth(self, root: str) -> int:
        """Longest acyclic call chain below *root* (0 for a leaf kernel).

        Cycles contribute a single iteration, per the paper's recursion
        treatment (Section III-C).
        """

        def depth(node: str, path: FrozenSet[str]) -> int:
            best = 0
            for callee in self.callees(node):
                if callee in path:
                    continue
                best = max(best, 1 + depth(callee, path | {callee}))
            return best

        return depth(root, frozenset({root}))


def build_call_graph(module: Module) -> CallGraph:
    """Construct the call graph of a linked module."""
    graph = CallGraph()
    for func in module.functions.values():
        targets: Set[str] = set()
        for site in func.callees():
            targets.update(site)
        graph.edges[func.name] = targets
        graph.fru[func.name] = func.fru
        graph.recursion_bounds[func.name] = func.recursion_bound
    graph.kernels = tuple(f.name for f in module.kernels())
    return graph
