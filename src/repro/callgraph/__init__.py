"""Link-time call-graph analysis (FRU, MaxStackDepth, watermarks)."""

from .graph import CallGraph, build_call_graph
from .analysis import (
    KernelStackAnalysis,
    analyze_kernel,
    analyze_module_kernels,
    max_stack_depth,
)

__all__ = [
    "CallGraph",
    "build_call_graph",
    "KernelStackAnalysis",
    "analyze_kernel",
    "analyze_module_kernels",
    "max_stack_depth",
]
