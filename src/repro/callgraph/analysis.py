"""Lightweight call-graph analysis: MaxStackDepth and watermarks (Fig 4).

For every node the compiler computes FRU (extra registers pushed on entry)
and *MaxStackDepth* — the maximum register demand along any path from that
node to a leaf.  From these, three per-kernel allocation watermarks follow
(Section III-B):

* **Low-watermark** — kernel frame + the largest single-function FRU, i.e.
  enough stack for at least one call.
* **High-watermark** — the kernel's MaxStackDepth: enough stack for the
  deepest acyclic chain, eliminating all spills/fills for non-recursive
  code.
* **NxLow-watermark** — kernel frame + N x the Low-watermark stack space,
  the middle ground the dynamic policy walks between the two.

Recursive components are assumed to iterate once (Section III-C), so
High-watermark does not guarantee zero traffic for recursive kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from .graph import CallGraph


@dataclass(frozen=True)
class KernelStackAnalysis:
    """Static analysis results for one kernel.

    Attributes:
        kernel: kernel name.
        kernel_fru: the root frame (all temporaries + globals of the kernel).
        max_fru: largest FRU among reachable device functions (0 if none).
        max_stack_depth: registers demanded by the deepest call chain,
            including the kernel frame (the paper's MaxStackDepth of the
            root node).
        cyclic: True when the reachable subgraph contains recursion.
        has_calls: False for call-free kernels (CARS leaves these alone).
    """

    kernel: str
    kernel_fru: int
    max_fru: int
    max_stack_depth: int
    cyclic: bool
    has_calls: bool

    @property
    def low_watermark(self) -> int:
        """Registers/warp for at least one in-register call frame."""
        return self.kernel_fru + self.max_fru

    @property
    def high_watermark(self) -> int:
        """Registers/warp to keep the deepest acyclic chain resident."""
        return self.max_stack_depth

    def nxlow_watermark(self, n: int) -> int:
        """Registers/warp for N stacked worst-case frames (capped at high)."""
        if n < 1:
            raise ValueError(f"N must be >= 1, got {n}")
        demand = self.kernel_fru + n * self.max_fru
        return min(demand, self.high_watermark) if self.has_calls else self.kernel_fru

    def allocation_levels(self) -> List[int]:
        """The ladder of register/warp allocations the dynamic policy walks.

        Level 0 is Low-watermark; each next level doubles the stack space
        (2xLow, 4xLow, ...) until High-watermark caps the ladder.
        """
        if not self.has_calls:
            return [self.kernel_fru]
        levels = [self.low_watermark]
        n = 2
        while levels[-1] < self.high_watermark:
            levels.append(self.nxlow_watermark(n))
            n *= 2
        return levels

    def stack_regs(self, regs_per_warp: int) -> int:
        """Register-stack space at a given per-warp allocation."""
        return max(0, regs_per_warp - self.kernel_fru)


def _cycle_nodes(graph: CallGraph) -> FrozenSet[str]:
    """Nodes on some cycle: members of a nontrivial SCC, or self-callers."""
    on_cycle = set()
    for component in graph.sccs():
        if len(component) > 1:
            on_cycle |= component
    for name in graph.nodes():
        if name in graph.callees(name):
            on_cycle.add(name)
    return frozenset(on_cycle)


def _tainted_nodes(graph: CallGraph, on_cycle: FrozenSet[str]) -> FrozenSet[str]:
    """Nodes that can reach a cycle (reverse reachability from cycles)."""
    preds: Dict[str, List[str]] = {}
    for caller, targets in graph.edges.items():
        for callee in targets:
            preds.setdefault(callee, []).append(caller)
    tainted = set(on_cycle)
    stack = list(on_cycle)
    while stack:
        node = stack.pop()
        for pred in preds.get(node, ()):
            if pred not in tainted:
                tainted.add(pred)
                stack.append(pred)
    return frozenset(tainted)


def max_stack_depth(graph: CallGraph, node: str) -> int:
    """The paper's MaxStackDepth: max register demand on any path to a leaf.

    Recursive cycles contribute one iteration (each function counted once
    per path), matching Section III-C's treatment of recursion.

    Nodes whose reachable subgraph is acyclic are memoized (their depth
    cannot depend on the path taken to them), so diamond-heavy DAGs cost
    linear work instead of enumerating every path.  Only the nodes that
    can still reach a cycle fall back to the path-set recursion the
    one-iteration rule requires.
    """
    on_cycle = _cycle_nodes(graph)
    tainted = _tainted_nodes(graph, on_cycle)
    memo: Dict[str, int] = {}

    def clean_depth(name: str) -> int:
        """Depth of an acyclic-subgraph node, iteratively (deep chains
        must not hit the interpreter recursion limit)."""
        stack = [name]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            missing = [c for c in graph.callees(current) if c not in memo]
            if missing:
                stack.extend(missing)
                continue
            best_child = max(
                (memo[c] for c in graph.callees(current)), default=0
            )
            memo[current] = graph.fru.get(current, 0) + best_child
            stack.pop()
        return memo[name]

    def depth(name: str, path: FrozenSet[str]) -> int:
        if name not in tainted:
            return clean_depth(name)
        own = graph.fru.get(name, 0)
        best_child = 0
        for callee in graph.callees(name):
            if callee in path:
                continue
            best_child = max(best_child, depth(callee, path | {callee}))
        return own + best_child

    return depth(node, frozenset({node}))


def analyze_kernel(graph: CallGraph, kernel: str) -> KernelStackAnalysis:
    """Run the full lightweight analysis for one kernel."""
    if kernel not in graph.edges:
        raise KeyError(f"unknown kernel {kernel!r}")
    reachable = graph.reachable(kernel)
    devices = sorted(reachable - {kernel})
    max_fru = max((graph.fru[d] for d in devices), default=0)
    return KernelStackAnalysis(
        kernel=kernel,
        kernel_fru=graph.fru[kernel],
        max_fru=max_fru,
        max_stack_depth=max_stack_depth(graph, kernel),
        cyclic=graph.is_cyclic(kernel),
        has_calls=bool(graph.callees(kernel)) or any(graph.callees(d) for d in devices),
    )


def analyze_module_kernels(graph: CallGraph) -> Dict[str, KernelStackAnalysis]:
    """Analysis for every kernel in the graph."""
    return {k: analyze_kernel(graph, k) for k in graph.kernels}
