"""Struct-of-arrays (vectorized) timing backend.

The ``"vectorized"`` backend keeps the scheduler-visible per-warp state —
``ready_at`` and ``next_issue``, the two fields the event-driven contract
is built on — in shared NumPy int64 buffers (:class:`WarpSoA`), one pair
of arrays per SM, instead of per-object attributes.  The per-cycle warp
scan then runs as an array operation: one vectorized compare over each
scheduler's partition replaces the per-warp ``ready_at`` guard, and the
SM's next-event reduction (``_earliest_ready``) becomes a single
``min()`` over the buffer.

Byte-identity by construction
-----------------------------

Everything that *decides* or *charges* anything — µop expansion, the
greedy-then-oldest pick, issue side effects, barrier and context-switch
handling, CPI-stack accounting — is inherited from the event-driven
:class:`~repro.core.sm.SM` / :class:`~repro.core.gpu.GPU` unchanged; the
SoA layer only changes *where the two scheduler fields live* and *how
candidate warps are prefiltered*.  The prefilter is sound because every
wake path in the model parks ``ready_at`` either at the wake cycle
itself (memory completions, which run before the SM tick) or strictly in
the future (barrier releases, activations), so a warp excluded by
``ready_at > cycle`` could never have been picked by the scalar scan —
and the inherited pick re-checks every candidate anyway.  The
cross-backend battery (``tests/test_backend_equivalence.py`` and the
backend-parameterized golden suite) holds the two backends to
byte-identical :class:`SimStats` on every workload × technique cell.

Two scheduler flavours fall back to the inherited scalar tick wholesale:
loose round-robin (its rotation pointer depends on the *unfiltered*
candidate ordering) and the static wavefront limiter (its window is
recomputed from the full warp list each cycle).

Rows are allocated monotonically and never reused: a retired warp's row
keeps ``NEVER`` so the full-buffer ``min()`` stays sound, and a late
memory completion for an already-retired warp is re-parked explicitly
(see :meth:`VectorizedSM.complete_load`).

Checkpoint/resume is deliberately unsupported (state lives in shared
buffers whose identity a pickle round-trip would sever); requesting it
raises a typed :class:`~repro.resilience.errors.UnsupportedFeatureError`
before any simulation state changes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..resilience.errors import UnsupportedFeatureError
from .backends import register_backend
from .gpu import GPU
from .sm import SM
from .warp import NEVER, WarpCtx

__all__ = ["VecWarpCtx", "VectorizedGPU", "VectorizedSM", "WarpSoA"]


class WarpSoA:
    """Struct-of-arrays storage for one SM's scheduler-visible warp state.

    ``ready_at[row]`` / ``next_issue[row]`` mirror the same-named
    :class:`~repro.core.warp.WarpCtx` fields; ``n`` is the high-water
    mark of allocated rows.  Buffers double on demand — the owning
    :class:`VectorizedSM` re-points its live warps' cached array
    references after a growth (see :meth:`VectorizedSM._new_warp`).
    """

    __slots__ = ("ready_at", "next_issue", "n")

    def __init__(self, capacity: int) -> None:
        capacity = max(8, capacity)
        self.ready_at = np.zeros(capacity, dtype=np.int64)
        self.next_issue = np.zeros(capacity, dtype=np.int64)
        self.n = 0

    def grow(self) -> None:
        """Double capacity, preserving every allocated row's value."""
        pad = np.zeros(self.ready_at.shape[0], dtype=np.int64)
        self.ready_at = np.concatenate([self.ready_at, pad])
        self.next_issue = np.concatenate([self.next_issue, pad])

    def alloc_row(self) -> int:
        """Next free row (the caller grows the buffers when full)."""
        row = self.n
        self.n = row + 1
        return row


class VecWarpCtx(WarpCtx):
    """A :class:`WarpCtx` whose scheduler fields live in SoA buffers.

    ``ready_at`` and ``next_issue`` shadow the parent slots with
    properties over ``soa_array[row]``; the getters cast back to plain
    ``int`` so NumPy scalars never leak into ``SimStats`` (whose JSON
    serialization — and therefore the golden snapshots and the result
    store — they would silently change).  Every other field keeps the
    parent's plain-slot storage.
    """

    __slots__ = ("_ra", "_ni", "_row")

    def __init__(
        self, soa: WarpSoA, row: int, slot: int, global_index: int,
        records, block,
    ) -> None:
        # The array refs must exist before WarpCtx.__init__ assigns the
        # shadowed fields (its `self.ready_at = 0` lands in the setters).
        self._ra = soa.ready_at
        self._ni = soa.next_issue
        self._row = row
        super().__init__(slot, global_index, records, block)

    @property
    def ready_at(self) -> int:
        return int(self._ra[self._row])

    @ready_at.setter
    def ready_at(self, value: int) -> None:
        self._ra[self._row] = value

    @property
    def next_issue(self) -> int:
        return int(self._ni[self._row])

    @next_issue.setter
    def next_issue(self, value: int) -> None:
        self._ni[self._row] = value


class VectorizedSM(SM):
    """An :class:`SM` whose ready scan and next-event reduction are
    array operations over the :class:`WarpSoA` buffers."""

    __slots__ = ("soa", "_sched_rows")

    def __init__(self, sm_id, config, ctx, mem, stats, gpu) -> None:
        super().__init__(sm_id, config, ctx, mem, stats, gpu)
        self.soa = WarpSoA(2 * config.max_warps_per_sm)
        self._sched_rows: List[np.ndarray] = [
            np.empty(0, dtype=np.intp) for _ in range(self._n_sched)
        ]

    # -- construction seams ---------------------------------------------

    def _new_warp(self, slot, global_index, records, block):
        soa = self.soa
        if soa.n >= soa.ready_at.shape[0]:
            soa.grow()
            ra, ni = soa.ready_at, soa.next_issue
            # Re-point every live warp at the grown buffers.  Retired
            # warps may keep stale references: their rows are parked at
            # NEVER in both generations and stay write-quiesced (a late
            # load completion is re-parked in complete_load).
            for warp in self.warps:
                warp._ra = ra
                warp._ni = ni
            for warp in block.warps:
                warp._ra = ra
                warp._ni = ni
        return VecWarpCtx(
            soa, soa.alloc_row(), slot, global_index, records, block
        )

    def _rebuild_sched_lists(self) -> None:
        super()._rebuild_sched_lists()
        self._sched_rows = [
            np.fromiter((w._row for w in lst), dtype=np.intp, count=len(lst))
            for lst in self._sched_warps
        ]

    # -- vectorized issue -------------------------------------------------

    def tick(self, cycle: int) -> int:
        if self._warp_limit is not None or self._is_lrr:
            # SWL re-windows every cycle and LRR's rotation pointer is
            # defined over the unfiltered partition order; both use the
            # inherited scalar scan (state still lives in the SoA).
            return super().tick(cycle)
        issued = 0
        # Capture the partition (and its row view): block arrival or
        # retirement mid-tick swaps in fresh ones that must only be seen
        # from the next tick on — same contract as the scalar tick.
        sched_lists = self._sched_warps
        rows_lists = self._sched_rows
        soa = self.soa
        pick = self._pick_warp
        issue = self._issue
        last = self._last_issued
        for sched in range(self._n_sched):
            # Greedy fast path: under GTO the last-issued warp usually
            # issues again, and the inherited pick resolves that from
            # `_last_issued` alone — no candidate list, no array op.
            # A failed greedy check parks that warp's bound in the
            # future, so re-entering the pick below re-checks it for
            # free via the ready_at guard (same idempotence the scalar
            # scan relies on).
            warp = pick(sched, (), cycle)
            if warp is None:
                rows = rows_lists[sched]
                if not rows.shape[0]:
                    continue
                # Re-read per scheduler: an earlier pick this tick can
                # add a block (growing the buffers) or wake warps of
                # later schedulers; the compare must see those writes,
                # exactly as the scalar scan's live attribute reads do.
                hits = (soa.ready_at[rows] <= cycle).nonzero()[0]
                if not hits.shape[0]:
                    # No candidate: every wake path parks excluded warps
                    # strictly past `cycle`, so the scalar scan could
                    # not have picked one either.
                    continue
                lst = sched_lists[sched]
                warp = pick(sched, [lst[i] for i in hits], cycle)
                if warp is None:
                    continue
            issue(warp, cycle)
            last[sched] = warp
            issued += 1
        if issued:
            self._next_try = cycle + 1
        else:
            self._next_try = self._earliest_ready_all(cycle)
        return issued

    def _earliest_ready_all(self, cycle: int) -> int:
        """Full-buffer form of ``_earliest_ready(self.warps, cycle)``.

        Sound because rows outside ``self.warps`` (retired warps) are
        pinned at ``NEVER``; see :meth:`complete_load`.
        """
        n = self.soa.n
        if not n:
            return NEVER
        nt = int(self.soa.ready_at[:n].min())
        if nt <= cycle:
            return cycle + 1
        return nt

    def complete_load(self, request, cycle: int) -> None:
        super().complete_load(request, cycle)
        warp = request.warp
        if warp.done:
            # The scalar backend leaves a retired warp's ready_at at the
            # completion cycle and lets the next scan's done-check park
            # it again; a retired warp dropped from the partitions is
            # never scanned here, so re-park immediately to keep the
            # full-buffer min (and the no-future-events deadlock check)
            # from seeing a phantom event.
            warp.ready_at = NEVER


class VectorizedGPU(GPU):
    """The ``"vectorized"`` timing backend."""

    backend_name = "vectorized"
    sm_cls = VectorizedSM
    supports_checkpoint = False

    __slots__ = ()

    def __getstate__(self):
        # Checkpointing is refused up front in run(); this guards the
        # direct-pickle path (e.g. CheckpointPolicy.save on a GPU that
        # was built by hand) with the same typed error.
        raise UnsupportedFeatureError(
            "the 'vectorized' timing backend does not support pickling "
            "(checkpoint/resume); use backend='event'",
            feature="checkpoint",
            backend=self.backend_name,
        )


register_backend(
    "vectorized",
    VectorizedGPU,
    description=(
        "struct-of-arrays core: NumPy-buffered warp state, vectorized "
        "ready scan and next-event reduction"
    ),
    supports_checkpoint=False,
)
