"""Streaming-multiprocessor timing model.

Implements the pipeline stages Fig 7 modifies: greedy-then-oldest issue
schedulers with a scoreboard, the LSU path into the shared memory subsystem,
barrier tracking, and — under CARS — the issue-stage *stalled-warp list*,
the *warp status check* release path, and barrier-deadlock context switching
(Section IV-B).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..config.gpu_config import GPUConfig
from ..emu.trace import BlockTrace
from ..mem.subsystem import MemorySubsystem, MemRequest
from ..metrics.counters import BlockRecord, SimStats, STREAM_SPILL
from ..obs.cpi import HINT_CTRL, HINT_FETCH
from .techniques import LaunchContext
from .uop import Uop, UopKind, mem_uop
from .warp import NEVER, WarpCtx


class SimulationError(Exception):
    """Raised when the timing model wedges (deadlock, runaway switches)."""


class BlockRun:
    """A thread block resident on an SM."""

    __slots__ = (
        "trace",
        "warps",
        "alive",
        "arrived",
        "level",
        "regs_per_warp",
        "start_cycle",
    )

    def __init__(self, trace: BlockTrace, warps: List[WarpCtx], level: int,
                 regs_per_warp: int, start_cycle: int) -> None:
        self.trace = trace
        self.warps = warps
        self.alive = len(warps)
        self.arrived = 0  # warps waiting at the current barrier
        self.level = level
        self.regs_per_warp = regs_per_warp
        self.start_cycle = start_cycle

    def inactive_count(self) -> int:
        return sum(1 for w in self.warps if w.stalled or w.switched_out)


class SM:
    """One streaming multiprocessor replaying warp traces."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        ctx: LaunchContext,
        mem: MemorySubsystem,
        stats: SimStats,
        gpu,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.ctx = ctx
        self.mem = mem
        self.stats = stats
        self.gpu = gpu
        self.blocks: List[BlockRun] = []
        self.warps: List[WarpCtx] = []
        self.reg_free = config.registers_per_sm
        self.stalled: Deque[WarpCtx] = deque()
        self._last_issued: List[Optional[WarpCtx]] = [None] * config.schedulers_per_sm
        self._rr_pointer = [0] * config.schedulers_per_sm  # LRR state
        self._next_slot = 0
        # Warps parked at NEVER behind a CARS trap / context-switch fill
        # (the CPI stack's cars_trap bucket reads this census).
        self.blocked_fill_warps = 0
        obs = getattr(gpu, "obs", None)
        self._tracer = obs.tracer if obs is not None else None

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def can_accept_block(self) -> bool:
        return len(self.blocks) < self.ctx.occupancy.blocks_per_sm

    def add_block(self, trace: BlockTrace, cycle: int) -> None:
        level, regs_per_warp = self.ctx.stack_level_for_block(self.sm_id)
        warps: List[WarpCtx] = []
        block = BlockRun(trace, warps, level, regs_per_warp, cycle)
        for warp_trace in trace.warps:
            warp = WarpCtx(
                slot=self._next_slot,
                global_index=self.gpu.next_warp_index(),
                records=warp_trace.records,
                block=block,
            )
            self._next_slot += 1
            warps.append(warp)
            if self.ctx.manages_registers:
                if self.reg_free >= regs_per_warp:
                    self.reg_free -= regs_per_warp
                    warp.alloc_regs = regs_per_warp
                    self.ctx.attach_warp(warp, regs_per_warp)
                else:
                    warp.stalled = True
                    self.stalled.append(warp)
        block.alive = len(warps)
        self.blocks.append(block)
        self.warps = [w for w in self.warps if not w.done] + warps

    def _finish_warp(self, warp: WarpCtx, cycle: int) -> None:
        warp.done = True
        block = warp.block
        block.alive -= 1
        if self.ctx.manages_registers and warp.alloc_regs:
            self.reg_free += warp.alloc_regs
            warp.alloc_regs = 0
            self._release_stalled(cycle)  # the warp-status-check unit
        if block.alive == 0:
            self._finish_block(block, cycle)
        else:
            self._check_barrier(block, cycle)

    def _finish_block(self, block: BlockRun, cycle: int) -> None:
        self.blocks.remove(block)
        runtime = cycle - block.start_cycle
        self.stats.blocks.append(
            BlockRecord(
                sm_id=self.sm_id,
                block_id=block.trace.block_id,
                kernel=self.ctx.trace.kernel,
                start_cycle=block.start_cycle,
                end_cycle=cycle,
                alloc_regs_per_warp=block.regs_per_warp,
                alloc_level=block.level,
            )
        )
        self.ctx.block_done(self.sm_id, block.level, runtime)
        self.warps = [w for w in self.warps if not w.done]
        self.gpu.block_finished(self, cycle)

    def _release_stalled(self, cycle: int) -> None:
        """Activate stalled warps (first-fit in arrival order) as register
        space frees up — the warp-status-check release path."""
        for warp in list(self.stalled):
            demand = warp.block.regs_per_warp
            if self.reg_free < demand:
                continue
            self._activate(warp, cycle)

    # ------------------------------------------------------------------
    # Barriers and context switching
    # ------------------------------------------------------------------

    def _arrive_barrier(self, warp: WarpCtx, cycle: int) -> None:
        warp.waiting_barrier = True
        block = warp.block
        block.arrived += 1
        self._check_barrier(block, cycle)

    def _check_barrier(self, block: BlockRun, cycle: int) -> None:
        if block.arrived == 0:
            return
        inactive = block.inactive_count()
        waiting_needed = block.alive - inactive
        if block.arrived >= block.alive:
            self._release_barrier(block, cycle)
        elif block.arrived >= waiting_needed and inactive > 0:
            # Every runnable warp is parked at the barrier while siblings
            # still wait for registers: trap to a context switch
            # (Section IV-B's deadlock-avoidance path).
            self._context_switch(block, cycle)

    def _release_barrier(self, block: BlockRun, cycle: int) -> None:
        block.arrived = 0
        for warp in block.warps:
            if warp.waiting_barrier:
                warp.waiting_barrier = False
                warp.next_issue = max(warp.next_issue, cycle + 1)
            if warp.switched_out and warp not in self.stalled:
                # A context-switch victim resumes competing for registers
                # once the barrier that forced it out has opened.
                self.stalled.append(warp)
        self.gpu.push_wake(cycle + 1)
        self._release_stalled(cycle)

    def _context_switch(self, block: BlockRun, cycle: int) -> None:
        victim = None
        for warp in block.warps:
            if warp.waiting_barrier and warp.alloc_regs and not warp.switched_out:
                victim = warp
                break
        beneficiary = None
        for warp in self.stalled:
            if warp.block is block:
                beneficiary = warp
                break
        if victim is None or beneficiary is None:
            raise SimulationError(
                f"SM{self.sm_id}: barrier deadlock without a context-switch "
                f"candidate (block {block.trace.block_id})"
            )
        self.stats.context_switches += 1
        if self.stats.context_switches > self.config.cars_max_context_switches * max(
            1, len(self.blocks)
        ):
            raise SimulationError("context-switch livelock suspected")
        saved = victim.alloc_regs
        self.stats.context_switch_regs += saved
        # The switch engine spills the victim's register state; the cost is
        # charged to the beneficiary's issue stream (it runs next).
        stores = [
            mem_uop(
                beneficiary.switch_sectors(i), STREAM_SPILL, True, (), (), "SPILL_ST"
            )
            for i in range(saved)
        ]
        for uop in reversed(stores):
            beneficiary.uops.appendleft(uop)
        self.reg_free += victim.alloc_regs
        victim.alloc_regs = 0
        victim.switched_out = True
        victim.needs_fill = True
        # Activate the beneficiary directly (it is the warp the barrier is
        # waiting for; FCFS release could be blocked by a larger-demand
        # warp from another block at the queue head).
        self._activate(beneficiary, cycle)

    def _activate(self, warp: WarpCtx, cycle: int) -> None:
        demand = warp.block.regs_per_warp
        if self.reg_free < demand:
            raise SimulationError(
                f"SM{self.sm_id}: context switch freed too few registers"
            )
        self.stalled.remove(warp)
        self.reg_free -= demand
        warp.alloc_regs = demand
        warp.stalled = False
        warp.switched_out = False
        if warp.cars is None:
            self.ctx.attach_warp(warp, demand)
        if warp.needs_fill:
            self._inject_switch_fill(warp)
        warp.next_issue = max(warp.next_issue, cycle + 1)
        self.gpu.push_wake(cycle + 1)

    def _inject_switch_fill(self, warp: WarpCtx) -> None:
        """Refill a previously switched-out warp's register state."""
        warp.needs_fill = False
        count = warp.alloc_regs
        self.stats.context_switch_regs += count
        fills = [
            mem_uop(warp.switch_sectors(i), STREAM_SPILL, False, (), (), "SPILL_LD")
            for i in range(count)
        ]
        if fills:
            fills[-1].blocking = True
        for uop in reversed(fills):
            warp.uops.appendleft(uop)

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> int:
        issued = 0
        limit = self.config.warp_limit
        eligible = self.warps
        if limit is not None:
            # Static wavefront limiter: schedule at most `limit` warps.
            # Warps parked at a barrier do not consume a slot, otherwise a
            # block with more warps than the limit could never release it.
            eligible = [
                w for w in self.warps if not w.done and not w.waiting_barrier
            ][:limit]
        for sched in range(self.config.schedulers_per_sm):
            warp = self._pick_warp(sched, eligible, cycle)
            if warp is not None:
                self._issue(warp, cycle)
                self._last_issued[sched] = warp
                issued += 1
        return issued

    def _pick_warp(
        self, sched: int, eligible: List[WarpCtx], cycle: int
    ) -> Optional[WarpCtx]:
        n = self.config.schedulers_per_sm
        if self.config.scheduler == "lrr":
            return self._pick_lrr(sched, eligible, cycle)
        # Greedy-then-oldest: stick with the last warp while it can issue.
        last = self._last_issued[sched]
        if last is not None and not last.done and self._ready(last, cycle):
            if last.slot % n == sched:
                if self.config.warp_limit is None or last in eligible:
                    return last
        for warp in eligible:
            if warp.slot % n != sched:
                continue
            if self._ready(warp, cycle):
                return warp
        return None

    def _pick_lrr(
        self, sched: int, eligible: List[WarpCtx], cycle: int
    ) -> Optional[WarpCtx]:
        """Loose round-robin: rotate through this scheduler's warps."""
        n = self.config.schedulers_per_sm
        mine = [w for w in eligible if w.slot % n == sched]
        if not mine:
            return None
        start = self._rr_pointer[sched] % len(mine)
        for offset in range(len(mine)):
            warp = mine[(start + offset) % len(mine)]
            if self._ready(warp, cycle):
                self._rr_pointer[sched] = (start + offset + 1) % len(mine)
                return warp
        return None

    def _ready(self, warp: WarpCtx, cycle: int) -> bool:
        if (
            warp.done
            or warp.stalled
            or warp.switched_out
            or warp.waiting_barrier
            or warp.next_issue > cycle
        ):
            return False
        if not warp.uops:
            if not self._refill(warp):
                return False
            if warp.next_issue > cycle:  # fetch stall applied during refill
                return False
        head = warp.uops[0]
        if head.kind == UopKind.MEM:
            if (
                not head.is_store
                and warp.outstanding_loads >= self.config.max_outstanding_loads
            ):
                return False
        ready_at = warp.deps_ready_cycle(head)
        if ready_at > cycle:
            self.gpu.push_wake(ready_at)
            return False
        return True

    def _refill(self, warp: WarpCtx) -> bool:
        """Expand the next trace record into µops."""
        if warp.cursor >= len(warp.records):
            return False
        rec = warp.records[warp.cursor]
        warp.cursor += 1
        self.stats.warp_instructions += 1
        penalty = self.ctx.fetch_penalty
        if penalty:
            warp.fetch_debt += penalty
            if warp.fetch_debt >= 1.0:
                stall = int(warp.fetch_debt)
                warp.fetch_debt -= stall
                warp.next_issue += stall
                warp.stall_hint = HINT_FETCH
                self.stats.fetch_stall_cycles += stall
                self.gpu.push_wake(warp.next_issue)
        uops = self.ctx.expand(warp, rec)
        warp.uops.extend(uops)
        return bool(warp.uops)

    def _issue(self, warp: WarpCtx, cycle: int) -> None:
        uop = warp.uops.popleft()
        stats = self.stats
        stats.micro_ops += 1
        stats.issued_by_kind[uop.mix] += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.on_issue(
                cycle, self.sm_id, warp.global_index, warp.cursor - 1, uop.mix
            )
        kind = uop.kind
        if kind == UopKind.EXEC:
            done_at = cycle + uop.latency
            for reg in uop.dst:
                warp.reg_ready[reg] = done_at
            warp.next_issue = cycle + 1
            if uop.dst:
                self.gpu.push_wake(done_at)
        elif kind == UopKind.MEM:
            blocking = uop.blocking and not uop.is_store
            request = MemRequest(
                warp,
                uop.dst,
                len(uop.sectors),
                uop.is_store,
                uop.stream,
                self.sm_id,
                blocking,
            )
            if not uop.is_store:
                warp.outstanding_loads += 1
                for reg in uop.dst:
                    warp.reg_ready[reg] = NEVER
                if blocking:
                    warp.next_issue = NEVER
                    self.blocked_fill_warps += 1
                else:
                    warp.next_issue = cycle + 1
            else:
                warp.next_issue = cycle + 1
            self.mem.access(self.sm_id, uop.sectors, request)
        elif kind == UopKind.CTRL:
            warp.next_issue = cycle + uop.latency
            warp.stall_hint = HINT_CTRL
            self.gpu.push_wake(warp.next_issue)
        elif kind == UopKind.BAR:
            warp.next_issue = cycle + 1
            self._arrive_barrier(warp, cycle)
        else:  # EXIT
            self._finish_warp(warp, cycle)

    # ------------------------------------------------------------------
    # Memory completion (called by the GPU's completion callback)
    # ------------------------------------------------------------------

    def complete_load(self, request: MemRequest, cycle: int) -> None:
        warp: WarpCtx = request.warp
        warp.outstanding_loads -= 1
        for reg in request.dst:
            warp.reg_ready[reg] = cycle
        if request.blocking and warp.next_issue >= NEVER:
            # The blocking fill itself finished.  (An unrelated load
            # completing must *not* release the warp: that used to let a
            # warp resume before its trap fill was back in registers.)
            warp.next_issue = cycle + 1
            self.blocked_fill_warps -= 1
        self.gpu.push_wake(cycle + 1)

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return bool(self.blocks)
