"""Streaming-multiprocessor timing model.

Implements the pipeline stages Fig 7 modifies: greedy-then-oldest issue
schedulers with a scoreboard, the LSU path into the shared memory subsystem,
barrier tracking, and — under CARS — the issue-stage *stalled-warp list*,
the *warp status check* release path, and barrier-deadlock context switching
(Section IV-B).

The SM participates in the GPU's event-driven main loop through two pieces
of state:

* ``WarpCtx.ready_at`` — a sound lower bound on the next cycle the warp
  could issue.  It is refreshed by the scheduler scan (``_ready``) and reset
  by every event that can make a warp runnable earlier (load completion,
  barrier release, register-allocation activation, block arrival).  The
  bound is *exact at classification flip points*: it is ``next_issue`` when
  that is in the future, else the head µop's scoreboard ready cycle — the
  only two quantities the CPI-stack classifier compares against the current
  cycle — so skipping ahead to the bound can never skip a cycle where the
  stall *bucket* would have changed.
* ``SM.next_event_cycle()`` — the SM-level aggregate the GPU's main loop
  reads to fast-forward: the minimum ``ready_at`` over resident warps,
  clamped to the future (``NEVER`` when every warp is parked on an external
  event).  ``tick`` refreshes it; cross-SM events lower it via ``_wake``.
"""

from __future__ import annotations

from typing import List, Optional

from ..config.gpu_config import GPUConfig
from ..emu.trace import BlockTrace
from ..mem.subsystem import MemorySubsystem, MemRequest
from ..metrics.counters import BlockRecord, SimStats, STREAM_SPILL
from ..obs.cpi import HINT_CTRL, HINT_FETCH
from ..resilience.errors import (
    DeadlockError,
    InvariantViolation,
    SimulationError,
)
from .techniques import LaunchContext
from .uop import UopKind, mem_uop
from .warp import NEVER, WarpCtx

_MEM = UopKind.MEM
_EXEC = UopKind.EXEC
_CTRL = UopKind.CTRL
_BAR = UopKind.BAR

#: Records predecoded per refill when fetch is free.  Expansion order (and
#: therefore every ABI-model side effect: CARS stack state, spill depths,
#: trap counters) is the trace order either way; only the number of
#: scheduler-to-frontend round trips changes.
_PREDECODE_BATCH = 16


__all__ = ["SM", "BlockRun", "SimulationError"]


class BlockRun:
    """A thread block resident on an SM."""

    __slots__ = (
        "trace",
        "warps",
        "alive",
        "arrived",
        "level",
        "regs_per_warp",
        "start_cycle",
        "inactive",
    )

    def __init__(self, trace: BlockTrace, warps: List[WarpCtx], level: int,
                 regs_per_warp: int, start_cycle: int) -> None:
        self.trace = trace
        self.warps = warps
        self.alive = len(warps)
        self.arrived = 0  # warps waiting at the current barrier
        self.level = level
        self.regs_per_warp = regs_per_warp
        self.start_cycle = start_cycle
        # Warps stalled for registers or switched out, maintained
        # incrementally at the stall/wake transitions (add_block,
        # _context_switch, _activate) instead of rescanned per query.
        self.inactive = 0

    def inactive_count(self) -> int:
        return self.inactive


class SM:
    """One streaming multiprocessor replaying warp traces."""

    __slots__ = (
        "sm_id",
        "config",
        "ctx",
        "mem",
        "stats",
        "gpu",
        "blocks",
        "warps",
        "reg_free",
        "stalled",
        "_last_issued",
        "_rr_pointer",
        "_next_slot",
        "blocked_fill_warps",
        "_tracer",
        "_next_try",
        "_sched_warps",
        "_n_sched",
        "_is_lrr",
        "_warp_limit",
        "_max_out",
        "_predecode",
    )

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        ctx: LaunchContext,
        mem: MemorySubsystem,
        stats: SimStats,
        gpu,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.ctx = ctx
        self.mem = mem
        self.stats = stats
        self.gpu = gpu
        self.blocks: List[BlockRun] = []
        self.warps: List[WarpCtx] = []
        self.reg_free = config.registers_per_sm
        self.stalled: List[WarpCtx] = []
        self._last_issued: List[Optional[WarpCtx]] = [None] * config.schedulers_per_sm
        self._rr_pointer = [0] * config.schedulers_per_sm  # LRR state
        self._next_slot = 0
        # Warps parked at NEVER behind a CARS trap / context-switch fill
        # (the CPI stack's cars_trap bucket reads this census).
        self.blocked_fill_warps = 0
        obs = getattr(gpu, "obs", None)
        self._tracer = obs.tracer if obs is not None else None
        # Event-driven scheduling state (see module docstring).
        self._next_try = NEVER
        self._n_sched = config.schedulers_per_sm
        self._is_lrr = config.scheduler == "lrr"
        self._warp_limit = config.warp_limit
        self._max_out = config.max_outstanding_loads
        self._sched_warps: List[List[WarpCtx]] = [
            [] for _ in range(self._n_sched)
        ]
        # The bounded tracer records the fetch cursor per issue, so it needs
        # the cursor to track the issuing record one-to-one.
        self._predecode = _PREDECODE_BATCH if self._tracer is None else 1

    # ------------------------------------------------------------------
    # Event-driven contract
    # ------------------------------------------------------------------

    def next_event_cycle(self) -> int:
        """Next cycle this SM's ``tick`` could do anything (NEVER if only
        an external event — memory completion, another SM's progress — can
        make it runnable again)."""
        return self._next_try

    def _wake(self, cycle: int) -> None:
        if cycle < self._next_try:
            self._next_try = cycle

    def _rebuild_sched_lists(self) -> None:
        """Re-partition ``self.warps`` by scheduler.

        Replaces the whole list-of-lists so a tick that captured the old
        partition keeps scanning exactly the warps that were resident when
        it started (matching the pre-partitioned ``eligible`` capture of
        the per-cycle loop this replaces).
        """
        n = self._n_sched
        lists: List[List[WarpCtx]] = [[] for _ in range(n)]
        for warp in self.warps:
            lists[warp.slot % n].append(warp)
        self._sched_warps = lists

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def can_accept_block(self) -> bool:
        return len(self.blocks) < self.ctx.occupancy.blocks_per_sm

    def _new_warp(self, slot: int, global_index: int, records, block) -> WarpCtx:
        """Construct one resident warp's timing context.

        Subclass seam: the vectorized backend returns a
        :class:`~repro.core.vectorized.VecWarpCtx` whose scheduler fields
        live in the SM's struct-of-arrays buffers instead.
        """
        return WarpCtx(
            slot=slot, global_index=global_index, records=records, block=block
        )

    def add_block(self, trace: BlockTrace, cycle: int) -> None:
        level, regs_per_warp = self.ctx.stack_level_for_block(self.sm_id)
        warps: List[WarpCtx] = []
        block = BlockRun(trace, warps, level, regs_per_warp, cycle)
        for warp_trace in trace.warps:
            warp = self._new_warp(
                self._next_slot,
                self.gpu.next_warp_index(),
                warp_trace.records,
                block,
            )
            self._next_slot += 1
            warps.append(warp)
            if self.ctx.manages_registers:
                if self.reg_free >= regs_per_warp:
                    self.reg_free -= regs_per_warp
                    warp.alloc_regs = regs_per_warp
                    self.ctx.attach_warp(warp, regs_per_warp)
                else:
                    warp.stalled = True
                    warp.ready_at = NEVER
                    block.inactive += 1
                    self.stalled.append(warp)
        block.alive = len(warps)
        self.blocks.append(block)
        self.warps = [w for w in self.warps if not w.done] + warps
        self._rebuild_sched_lists()
        # An SM later in the current tick sweep must scan the new warps
        # this very cycle (the sweep checks _next_try at its position);
        # an SM that already ticked picks them up next cycle.
        self._wake(cycle)

    def _finish_warp(self, warp: WarpCtx, cycle: int) -> None:
        warp.done = True
        warp.ready_at = NEVER
        if warp.cars is not None and warp.cars.peak_depth > self.stats.peak_stack_depth:
            self.stats.peak_stack_depth = warp.cars.peak_depth
        block = warp.block
        block.alive -= 1
        if self.ctx.manages_registers and warp.alloc_regs:
            self.reg_free += warp.alloc_regs
            warp.alloc_regs = 0
            self._release_stalled(cycle)  # the warp-status-check unit
        if block.alive == 0:
            self._finish_block(block, cycle)
        else:
            self._check_barrier(block, cycle)

    def _finish_block(self, block: BlockRun, cycle: int) -> None:
        self.blocks.remove(block)
        runtime = cycle - block.start_cycle
        self.stats.blocks.append(
            BlockRecord(
                sm_id=self.sm_id,
                block_id=block.trace.block_id,
                kernel=self.ctx.trace.kernel,
                start_cycle=block.start_cycle,
                end_cycle=cycle,
                alloc_regs_per_warp=block.regs_per_warp,
                alloc_level=block.level,
            )
        )
        self.ctx.block_done(self.sm_id, block.level, runtime)
        self.warps = [w for w in self.warps if not w.done]
        self._rebuild_sched_lists()
        self.gpu.block_finished(self, cycle)

    def _release_stalled(self, cycle: int) -> None:
        """Activate stalled warps (first-fit in arrival order) as register
        space frees up — the warp-status-check release path."""
        if not self.stalled:
            return
        for warp in list(self.stalled):
            demand = warp.block.regs_per_warp
            if self.reg_free < demand:
                continue
            self._activate(warp, cycle)

    # ------------------------------------------------------------------
    # Barriers and context switching
    # ------------------------------------------------------------------

    def _arrive_barrier(self, warp: WarpCtx, cycle: int) -> None:
        warp.waiting_barrier = True
        block = warp.block
        block.arrived += 1
        self._check_barrier(block, cycle)

    def _check_barrier(self, block: BlockRun, cycle: int) -> None:
        if block.arrived == 0:
            return
        inactive = block.inactive
        waiting_needed = block.alive - inactive
        if block.arrived >= block.alive:
            self._release_barrier(block, cycle)
        elif block.arrived >= waiting_needed and inactive > 0:
            # Every runnable warp is parked at the barrier while siblings
            # still wait for registers: trap to a context switch
            # (Section IV-B's deadlock-avoidance path).
            self._context_switch(block, cycle)

    def _release_barrier(self, block: BlockRun, cycle: int) -> None:
        block.arrived = 0
        for warp in block.warps:
            if warp.waiting_barrier:
                warp.waiting_barrier = False
                warp.next_issue = max(warp.next_issue, cycle + 1)
                if not warp.switched_out:
                    warp.ready_at = warp.next_issue
            if warp.switched_out and warp not in self.stalled:
                # A context-switch victim resumes competing for registers
                # once the barrier that forced it out has opened.
                self.stalled.append(warp)
        self._wake(cycle + 1)
        self._release_stalled(cycle)

    def _context_switch(self, block: BlockRun, cycle: int) -> None:
        victim = None
        for warp in block.warps:
            if warp.waiting_barrier and warp.alloc_regs and not warp.switched_out:
                victim = warp
                break
        beneficiary = None
        for warp in self.stalled:
            if warp.block is block:
                beneficiary = warp
                break
        if victim is None or beneficiary is None:
            raise DeadlockError(
                f"SM{self.sm_id}: barrier deadlock without a context-switch "
                f"candidate (block {block.trace.block_id})",
                diagnostics=self._dump(cycle, "barrier deadlock"),
            )
        self.stats.context_switches += 1
        if self.stats.context_switches > self.config.cars_max_context_switches * max(
            1, len(self.blocks)
        ):
            raise DeadlockError(
                "context-switch livelock suspected",
                diagnostics=self._dump(cycle, "context-switch livelock"),
            )
        saved = victim.alloc_regs
        self.stats.context_switch_regs += saved
        # The switch engine spills the victim's register state; the cost is
        # charged to the beneficiary's issue stream (it runs next).
        stores = [
            mem_uop(
                beneficiary.switch_sectors(i), STREAM_SPILL, True, (), (), "SPILL_ST"
            )
            for i in range(saved)
        ]
        for uop in reversed(stores):
            beneficiary.uops.appendleft(uop)
        self.reg_free += victim.alloc_regs
        victim.alloc_regs = 0
        victim.switched_out = True
        victim.needs_fill = True
        victim.ready_at = NEVER
        block.inactive += 1
        # Activate the beneficiary directly (it is the warp the barrier is
        # waiting for; FCFS release could be blocked by a larger-demand
        # warp from another block at the queue head).
        self._activate(beneficiary, cycle)

    def _dump(self, cycle: int, reason: str):
        """Diagnostic snapshot via the owning GPU (import kept local so
        ``repro.core`` can finish initializing before diagnostics loads)."""
        from ..resilience.diagnostics import collect_dump

        return collect_dump(self.gpu, cycle, reason=f"SM{self.sm_id}: {reason}")

    def _activate(self, warp: WarpCtx, cycle: int) -> None:
        demand = warp.block.regs_per_warp
        if self.reg_free < demand:
            raise InvariantViolation(
                f"SM{self.sm_id}: context switch freed too few registers",
                diagnostics=self._dump(cycle, "register balance violation"),
            )
        self.stalled.remove(warp)
        self.reg_free -= demand
        warp.alloc_regs = demand
        warp.stalled = False
        warp.switched_out = False
        warp.block.inactive -= 1
        if warp.cars is None:
            self.ctx.attach_warp(warp, demand)
        if warp.needs_fill:
            self._inject_switch_fill(warp)
        warp.next_issue = max(warp.next_issue, cycle + 1)
        warp.ready_at = warp.next_issue
        self._wake(warp.next_issue)

    def _inject_switch_fill(self, warp: WarpCtx) -> None:
        """Refill a previously switched-out warp's register state."""
        warp.needs_fill = False
        count = warp.alloc_regs
        self.stats.context_switch_regs += count
        fills = [
            mem_uop(warp.switch_sectors(i), STREAM_SPILL, False, (), (), "SPILL_LD")
            for i in range(count)
        ]
        if fills:
            fills[-1].blocking = True
        for uop in reversed(fills):
            warp.uops.appendleft(uop)

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> int:
        issued = 0
        limit = self._warp_limit
        if limit is not None:
            # Static wavefront limiter: schedule at most `limit` warps.
            # Warps parked at a barrier do not consume a slot, otherwise a
            # block with more warps than the limit could never release it.
            eligible = [
                w for w in self.warps if not w.done and not w.waiting_barrier
            ][:limit]
            for sched in range(self._n_sched):
                warp = self._pick_warp_limited(sched, eligible, cycle)
                if warp is not None:
                    self._issue(warp, cycle)
                    self._last_issued[sched] = warp
                    issued += 1
            if issued:
                self._next_try = cycle + 1
            else:
                # The limiter re-evaluates its window every cycle while
                # blocks are resident, so don't sleep past warps that the
                # window excluded this cycle.
                self._next_try = self._earliest_ready(eligible, cycle)
            return issued
        # Capture the partition: block arrival/retirement mid-tick swaps in
        # a fresh one that must only be seen from the next tick on.
        sched_lists = self._sched_warps
        pick = self._pick_warp
        issue = self._issue
        last = self._last_issued
        for sched in range(self._n_sched):
            warp = pick(sched, sched_lists[sched], cycle)
            if warp is not None:
                issue(warp, cycle)
                last[sched] = warp
                issued += 1
        if issued:
            self._next_try = cycle + 1
        else:
            self._next_try = self._earliest_ready(self.warps, cycle)
        return issued

    def _earliest_ready(self, warps: List[WarpCtx], cycle: int) -> int:
        """Minimum ``ready_at`` over *warps*, clamped to the future.

        Only called after a zero-issue tick, when the scheduler scan has
        just refreshed every candidate's bound.
        """
        nt = NEVER
        for warp in warps:
            ra = warp.ready_at
            if ra < nt:
                nt = ra
        if nt <= cycle:
            return cycle + 1
        return nt

    def _pick_warp(
        self, sched: int, candidates: List[WarpCtx], cycle: int
    ) -> Optional[WarpCtx]:
        if self._is_lrr:
            return self._pick_lrr(sched, candidates, cycle)
        # Greedy-then-oldest: stick with the last warp while it can issue.
        refill = self._refill
        max_out = self._max_out
        # Greedy-then-oldest: stick with the last warp while it can issue.
        # Its check is the same inlined _ready body as the scan below; a
        # failed check parks last.ready_at in the future, so the scan's
        # ready_at guard skips it without re-evaluating.
        warp = self._last_issued[sched]
        if warp is not None and not warp.done and warp.ready_at <= cycle:
            if warp.stalled or warp.switched_out or warp.waiting_barrier:
                warp.ready_at = NEVER
            else:
                next_issue = warp.next_issue
                if next_issue > cycle:
                    warp.ready_at = next_issue
                else:
                    uops = warp.uops
                    ok = True
                    if not uops:
                        if not refill(warp):
                            warp.ready_at = NEVER
                            ok = False
                        elif warp.next_issue > cycle:
                            warp.ready_at = warp.next_issue
                            ok = False
                        else:
                            uops = warp.uops
                    if ok:
                        head = uops[0]
                        if (
                            head.kind == _MEM
                            and not head.is_store
                            and warp.outstanding_loads >= max_out
                        ):
                            warp.ready_at = NEVER
                        else:
                            deps = head.deps
                            ready_at = 0
                            if deps:
                                get = warp.reg_ready.get
                                for reg in deps:
                                    t = get(reg, 0)
                                    if t > ready_at:
                                        ready_at = t
                            if ready_at > cycle:
                                warp.ready_at = ready_at
                            else:
                                warp.ready_at = cycle
                                return warp
        for warp in candidates:
            if warp.ready_at > cycle:
                continue
            # _ready, inlined: the scan touches every runnable warp on
            # every issue attempt, and the call overhead rivaled the
            # checks themselves.  Keep in lockstep with _ready below.
            if (
                warp.done
                or warp.stalled
                or warp.switched_out
                or warp.waiting_barrier
            ):
                warp.ready_at = NEVER
                continue
            next_issue = warp.next_issue
            if next_issue > cycle:
                warp.ready_at = next_issue
                continue
            uops = warp.uops
            if not uops:
                if not refill(warp):
                    warp.ready_at = NEVER
                    continue
                if warp.next_issue > cycle:  # fetch stall during refill
                    warp.ready_at = warp.next_issue
                    continue
                uops = warp.uops
            head = uops[0]
            if (
                head.kind == _MEM
                and not head.is_store
                and warp.outstanding_loads >= max_out
            ):
                warp.ready_at = NEVER
                continue
            deps = head.deps
            if deps:
                ready_at = 0
                get = warp.reg_ready.get
                for reg in deps:
                    t = get(reg, 0)
                    if t > ready_at:
                        ready_at = t
                if ready_at > cycle:
                    warp.ready_at = ready_at
                    continue
            warp.ready_at = cycle
            return warp
        return None

    def _pick_warp_limited(
        self, sched: int, eligible: List[WarpCtx], cycle: int
    ) -> Optional[WarpCtx]:
        n = self._n_sched
        if self._is_lrr:
            mine = [w for w in eligible if w.slot % n == sched]
            return self._pick_lrr(sched, mine, cycle)
        last = self._last_issued[sched]
        if (
            last is not None
            and not last.done
            and last.ready_at <= cycle
            and self._ready(last, cycle)
        ):
            if last.slot % n == sched and last in eligible:
                return last
        for warp in eligible:
            if warp.slot % n != sched:
                continue
            if warp.ready_at > cycle:
                continue
            if self._ready(warp, cycle):
                return warp
        return None

    def _pick_lrr(
        self, sched: int, mine: List[WarpCtx], cycle: int
    ) -> Optional[WarpCtx]:
        """Loose round-robin: rotate through this scheduler's warps."""
        if not mine:
            return None
        start = self._rr_pointer[sched] % len(mine)
        for offset in range(len(mine)):
            warp = mine[(start + offset) % len(mine)]
            if warp.ready_at > cycle:
                continue
            if self._ready(warp, cycle):
                self._rr_pointer[sched] = (start + offset + 1) % len(mine)
                return warp
        return None

    def _ready(self, warp: WarpCtx, cycle: int) -> bool:
        if (
            warp.done
            or warp.stalled
            or warp.switched_out
            or warp.waiting_barrier
        ):
            # Flag-parked: only an event elsewhere can clear these, and
            # every such event resets ready_at.
            warp.ready_at = NEVER
            return False
        next_issue = warp.next_issue
        if next_issue > cycle:
            warp.ready_at = next_issue
            return False
        if not warp.uops:
            if not self._refill(warp):
                warp.ready_at = NEVER
                return False
            if warp.next_issue > cycle:  # fetch stall applied during refill
                warp.ready_at = warp.next_issue
                return False
        head = warp.uops[0]
        if (
            head.kind == _MEM
            and not head.is_store
            and warp.outstanding_loads >= self._max_out
        ):
            warp.ready_at = NEVER  # wakes on any of its loads completing
            return False
        # Scoreboard check, inlined from WarpCtx.deps_ready_cycle: this is
        # the single hottest expression in the simulator.
        deps = head.deps
        if deps:
            ready_at = 0
            get = warp.reg_ready.get
            for reg in deps:
                t = get(reg, 0)
                if t > ready_at:
                    ready_at = t
            if ready_at > cycle:
                warp.ready_at = ready_at
                return False
        warp.ready_at = cycle
        return True

    def _refill(self, warp: WarpCtx) -> bool:
        """Expand the next trace record(s) into µops.

        With a fetch penalty the debt is applied per record, so records are
        fetched one at a time; otherwise a bounded batch is predecoded per
        call, trimming scheduler-to-frontend round trips without changing
        any issue timing (expansion side effects stay in trace order).
        """
        records = warp.records
        cursor = warp.cursor
        total = len(records)
        if cursor >= total:
            return False
        ctx = self.ctx
        stats = self.stats
        penalty = ctx.fetch_penalty
        if penalty:
            rec = records[cursor]
            warp.cursor = cursor + 1
            stats.warp_instructions += 1
            warp.fetch_debt += penalty
            if warp.fetch_debt >= 1.0:
                stall = int(warp.fetch_debt)
                warp.fetch_debt -= stall
                warp.next_issue += stall
                warp.stall_hint = HINT_FETCH
                stats.fetch_stall_cycles += stall
            ctx.expand(warp, rec, warp.uops)
            return bool(warp.uops)
        end = cursor + self._predecode
        if end > total:
            end = total
        uops = warp.uops
        expand = ctx.expand
        count = end - cursor
        while cursor < end:
            expand(warp, records[cursor], uops)
            cursor += 1
        warp.cursor = cursor
        stats.warp_instructions += count
        return bool(uops)

    def _issue(self, warp: WarpCtx, cycle: int) -> None:
        uop = warp.uops.popleft()
        stats = self.stats
        stats.micro_ops += 1
        stats.issued_by_kind[uop.mix] += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.on_issue(
                cycle, self.sm_id, warp.global_index, warp.cursor - 1, uop.mix
            )
        kind = uop.kind
        if kind == _EXEC:
            done_at = cycle + uop.latency
            for reg in uop.dst:
                warp.reg_ready[reg] = done_at
            warp.next_issue = cycle + 1
            warp.ready_at = cycle + 1
        elif kind == _MEM:
            blocking = uop.blocking and not uop.is_store
            request = MemRequest(
                warp,
                uop.dst,
                len(uop.sectors),
                uop.is_store,
                uop.stream,
                self.sm_id,
                blocking,
            )
            if not uop.is_store:
                warp.outstanding_loads += 1
                for reg in uop.dst:
                    warp.reg_ready[reg] = NEVER
                if blocking:
                    warp.next_issue = NEVER
                    warp.ready_at = NEVER
                    self.blocked_fill_warps += 1
                else:
                    warp.next_issue = cycle + 1
                    warp.ready_at = cycle + 1
            else:
                warp.next_issue = cycle + 1
                warp.ready_at = cycle + 1
            self.mem.access(self.sm_id, uop.sectors, request)
        elif kind == _CTRL:
            warp.next_issue = cycle + uop.latency
            warp.ready_at = warp.next_issue
            warp.stall_hint = HINT_CTRL
        elif kind == _BAR:
            warp.next_issue = cycle + 1
            # Parked until release; an all-arrived barrier releases inside
            # _arrive_barrier and overwrites this with cycle + 1.
            warp.ready_at = NEVER
            self._arrive_barrier(warp, cycle)
        else:  # EXIT
            self._finish_warp(warp, cycle)

    # ------------------------------------------------------------------
    # Memory completion (called by the GPU's completion callback)
    # ------------------------------------------------------------------

    def complete_load(self, request: MemRequest, cycle: int) -> None:
        warp: WarpCtx = request.warp
        warp.outstanding_loads -= 1
        for reg in request.dst:
            warp.reg_ready[reg] = cycle
        if request.blocking and warp.next_issue >= NEVER:
            # The blocking fill itself finished.  (An unrelated load
            # completing must *not* release the warp: that used to let a
            # warp resume before its trap fill was back in registers.)
            warp.next_issue = cycle + 1
            self.blocked_fill_warps -= 1
        # Memory ticks before the SMs each cycle, so the warp may issue at
        # the completion cycle itself: wake the SM for *this* cycle.
        warp.ready_at = cycle
        self._wake(cycle)

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return bool(self.blocks)
