"""Timing-backend registry.

The simulator ships more than one implementation of the cycle-level
timing core.  Each *backend* is a :class:`~repro.core.gpu.GPU` subclass
(or ``GPU`` itself) that simulates a kernel launch to completion; every
registered backend must produce **byte-identical** :class:`SimStats` for
every (workload, technique, config) cell — the cross-backend battery in
``tests/test_backend_equivalence.py`` and the backend-parameterized
golden suite enforce this, and the result store relies on it (store keys
deliberately exclude the backend; see
:meth:`repro.harness.executor.ExperimentRequest.store_key`).

Built-in backends:

* ``"event"`` — the event-driven pure-Python core (:class:`GPU`).  The
  default, and the reference implementation: supports every harness
  feature including checkpoint/resume.
* ``"vectorized"`` — the struct-of-arrays core
  (:class:`repro.core.vectorized.VectorizedGPU`), registered when NumPy
  is importable.  Keeps per-warp scheduler state in shared NumPy
  buffers, replaces the per-warp ready scans and next-event reductions
  with array operations, and backs the batched multi-config runner
  (:func:`repro.harness._runner.run_workload_batch`).  Does not support
  checkpointing (a typed
  :class:`~repro.resilience.errors.UnsupportedFeatureError` is raised).

Like the technique registry in :mod:`repro.core.techniques`, unknown
names fail with a typed, suggestion-carrying error so CLI users get
"did you mean" hints and exit code 8.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

from ..resilience.errors import UnsupportedFeatureError

__all__ = [
    "BackendInfo",
    "DEFAULT_BACKEND",
    "list_backends",
    "register_backend",
    "resolve_backend",
]

#: Name every config/CLI surface defaults to.
DEFAULT_BACKEND = "event"


@dataclass(frozen=True)
class BackendInfo:
    """One registered timing backend.

    ``gpu_cls`` is the :class:`~repro.core.gpu.GPU` (sub)class the runner
    instantiates; ``supports_checkpoint`` gates the checkpoint/resume
    harness feature (the only optional feature today).
    """

    name: str
    gpu_cls: Type
    description: str
    supports_checkpoint: bool = True


_REGISTRY: Dict[str, BackendInfo] = {}


def register_backend(
    name: str,
    gpu_cls: Type,
    *,
    description: str,
    supports_checkpoint: bool = True,
) -> BackendInfo:
    """Register (or idempotently re-register) a timing backend.

    Re-registration with a different class is refused: backends are
    resolved by name across process-pool boundaries, so silently
    swapping an implementation mid-session would let two workers
    simulate the same store key with different code.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing.gpu_cls is not gpu_cls:
        raise ValueError(
            f"backend {name!r} is already registered to "
            f"{existing.gpu_cls.__name__}"
        )
    info = BackendInfo(
        name=name,
        gpu_cls=gpu_cls,
        description=description,
        supports_checkpoint=supports_checkpoint,
    )
    _REGISTRY[name] = info
    return info


def resolve_backend(name: str) -> BackendInfo:
    """The :class:`BackendInfo` registered under *name*.

    Unknown names raise :class:`UnsupportedFeatureError` (exit code 8)
    with difflib "did you mean" suggestions, mirroring
    :func:`repro.core.techniques.resolve_technique`.
    """
    info = _REGISTRY.get(name)
    if info is not None:
        return info
    known = sorted(_REGISTRY)
    suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
    message = f"unknown timing backend {name!r} (registered: {', '.join(known)})"
    if suggestions:
        message += " — did you mean: " + ", ".join(suggestions) + "?"
    raise UnsupportedFeatureError(message, feature="backend", backend=name)


def list_backends() -> Tuple[str, ...]:
    """Registered backend names, default first, then alphabetical."""
    rest = sorted(n for n in _REGISTRY if n != DEFAULT_BACKEND)
    head: List[str] = [DEFAULT_BACKEND] if DEFAULT_BACKEND in _REGISTRY else []
    return tuple(head + rest)
