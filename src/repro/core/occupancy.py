"""Occupancy calculation (Section II).

Four factors limit thread blocks per SM: thread/warp slots, block slots,
register usage, and shared memory.  Blocks are all-or-nothing: a block is
resident only when every one of its warps fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.gpu_config import GPUConfig


@dataclass(frozen=True)
class Occupancy:
    """Blocks/warps resident per SM and the binding limiter."""

    blocks_per_sm: int
    warps_per_block: int
    limiter: str

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block


def compute_occupancy(
    config: GPUConfig,
    regs_per_warp: int,
    warps_per_block: int,
    shared_mem_bytes: int,
) -> Occupancy:
    """Blocks per SM for a kernel with the given per-warp register demand."""
    if warps_per_block <= 0:
        raise ValueError("warps_per_block must be positive")
    if config.unlimited_occupancy:
        # Idealized Virtual Warps: registers, shared memory and block slots
        # are unlimited; only warp slots remain (hardware contexts).
        blocks = max(1, config.max_warps_per_sm // warps_per_block)
        return Occupancy(blocks, warps_per_block, "warp-slots")

    limits = {
        "block-slots": config.max_blocks_per_sm,
        "warp-slots": config.max_warps_per_sm // warps_per_block,
    }
    if shared_mem_bytes > 0:
        limits["shared-memory"] = config.shared_mem_per_sm // shared_mem_bytes
    if regs_per_warp > 0:
        limits["registers"] = config.registers_per_sm // (
            regs_per_warp * warps_per_block
        )
    limiter = min(limits, key=limits.get)
    blocks = max(0, limits[limiter])
    if blocks == 0:
        raise ValueError(
            f"kernel cannot fit a single block on an SM "
            f"(limited by {limiter}: regs/warp={regs_per_warp}, "
            f"warps/block={warps_per_block}, smem={shared_mem_bytes})"
        )
    return Occupancy(blocks, warps_per_block, limiter)
