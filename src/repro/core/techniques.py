"""Techniques studied (Section V-D): trace-to-µop expansion per ABI model.

Every technique replays the same dynamic traces through the same SM timing
model; what differs is

* which binary produced the trace (baseline vs fully-inlined LTO),
* the hardware config (L1 size/ports, force-hit, occupancy limits), and
* how the ABI records (CALL/RET/PUSH/POP) expand:
  - **baseline** — PUSH/POP become local-memory spill/fill accesses,
  - **CARS** — PUSH/POP become 1-cycle renames; CALL/RET drive the per-warp
    register stack, trapping to memory only on overflow (Fig 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..callgraph.analysis import KernelStackAnalysis
from ..cars.allocation import plan_allocation
from ..cars.policy import DynamicReservationPolicy, PolicyMemory
from ..cars.register_stack import WarpRegisterStack
from ..config.gpu_config import GPUConfig
from ..emu.trace import KernelTrace, TraceKind, TraceRecord
from ..metrics.counters import SimStats, STREAM_GLOBAL, STREAM_LOCAL, STREAM_SPILL
from .occupancy import Occupancy, compute_occupancy
from .uop import Uop, UopKind, bar_uop, ctrl_uop, exit_uop, mem_uop
from .warp import WarpCtx

# Hot-path aliases for the expansion fast paths below.
_EXEC = UopKind.EXEC
_MEM = UopKind.MEM
_CTRL = UopKind.CTRL


class LaunchContext:
    """Per-(kernel-launch x technique) state driving µop expansion."""

    #: When True the SM manages a register pool and may stall warps
    #: (CARS's issue-stage stalled-warp list).
    manages_registers = False

    def __init__(self, trace: KernelTrace, config: GPUConfig, stats: SimStats) -> None:
        self.trace = trace
        self.config = config
        self.stats = stats
        self.warps_per_block = trace.threads_per_block // 32
        self.occupancy = self._occupancy()
        # Front-end pressure: binaries larger than the i-cache pay an
        # amortized fetch penalty per instruction (Fig 16's LTO downside).
        code = max(1, trace.code_bytes)
        miss_rate = max(0.0, 1.0 - config.icache_bytes / code)
        self.fetch_penalty = miss_rate * config.icache_miss_penalty

    # -- occupancy ------------------------------------------------------

    def scheduler_regs_per_warp(self) -> int:
        """Per-warp register demand the block scheduler sees."""
        raise NotImplementedError

    def _occupancy(self) -> Occupancy:
        return compute_occupancy(
            self.config,
            self.scheduler_regs_per_warp(),
            self.warps_per_block,
            self.trace.shared_mem_bytes,
        )

    # -- CARS hooks (no-ops for static techniques) ----------------------

    def stack_level_for_block(self, sm_id: int):
        """(level_index, regs_per_warp) for a block spawning on *sm_id*."""
        return 0, self.scheduler_regs_per_warp()

    def attach_warp(self, warp: WarpCtx, regs_per_warp: int) -> None:
        """Initialize per-warp ABI state once registers are allocated."""

    def block_done(self, sm_id: int, level: int, runtime: int) -> None:
        pass

    def finalize(self) -> None:
        pass

    # -- expansion -------------------------------------------------------

    def expand(self, warp: WarpCtx, rec: TraceRecord, out) -> None:
        """Append *rec*'s µops to *out* (the warp's issue deque).

        Appending into the caller's container rather than returning a
        fresh list avoids one allocation per dynamic instruction — the
        frontend's hottest rate.
        """
        raise NotImplementedError

    def _expand_common(self, warp: WarpCtx, rec: TraceRecord, out, extra: int) -> None:
        """Records whose expansion is technique-independent.

        The ``Uop`` constructor is invoked directly (not through the
        ``exec_uop``/``mem_uop`` helpers) on the frequent kinds: expansion
        runs once per dynamic instruction and the extra call layer is
        measurable there.
        """
        cfg = self.config
        kind = rec.kind
        if kind == TraceKind.ALU:
            out.append(Uop(_EXEC, cfg.alu_latency + extra, rec.dst, rec.srcs))
        elif kind == TraceKind.GLOBAL_LD:
            out.append(
                Uop(_MEM, 1, rec.dst, rec.srcs, rec.sectors, STREAM_GLOBAL,
                    False, "GLOBAL_LD")
            )
        elif kind == TraceKind.BRANCH:
            out.append(Uop(_CTRL, cfg.ctrl_latency + extra, mix="BRANCH"))
        elif kind == TraceKind.FPU:
            out.append(
                Uop(_EXEC, cfg.fpu_latency + extra, rec.dst, rec.srcs, mix="FPU")
            )
        elif kind == TraceKind.SFU:
            out.append(
                Uop(_EXEC, cfg.sfu_latency + extra, rec.dst, rec.srcs, mix="SFU")
            )
        elif kind == TraceKind.SMEM:
            out.append(
                Uop(_EXEC, cfg.smem_latency + extra, rec.dst, rec.srcs, mix="SMEM")
            )
        elif kind == TraceKind.GLOBAL_ST:
            out.append(
                Uop(_MEM, 1, (), rec.srcs, rec.sectors, STREAM_GLOBAL,
                    True, "GLOBAL_ST")
            )
        elif kind == TraceKind.LOCAL_LD:
            out.append(
                mem_uop(
                    warp.local_sectors(rec.local_offset),
                    STREAM_LOCAL,
                    False,
                    rec.dst,
                    (),
                    "LOCAL_LD",
                )
            )
        elif kind == TraceKind.LOCAL_ST:
            out.append(
                mem_uop(
                    warp.local_sectors(rec.local_offset),
                    STREAM_LOCAL,
                    True,
                    (),
                    rec.srcs,
                    "LOCAL_ST",
                )
            )
        elif kind == TraceKind.BAR:
            out.append(bar_uop())
        elif kind == TraceKind.EXIT:
            out.append(exit_uop())
        else:
            raise ValueError(f"unexpected record kind {kind!r}")


class BaselineContext(LaunchContext):
    """Contemporary ABI: spills/fills are local-memory instructions."""

    def scheduler_regs_per_warp(self) -> int:
        # The linker's worst-case register usage over the call graph.
        return self.trace.regs_per_warp_baseline

    def expand(self, warp: WarpCtx, rec: TraceRecord, out) -> None:
        kind = rec.kind
        stats = self.stats
        if kind == TraceKind.CALL:
            stats.calls += 1
            warp.frame_starts.append(warp.spill_depth)
            warp.spill_depth += rec.push_count
            out.append(ctrl_uop(self.config.ctrl_latency, "CALL"))
        elif kind == TraceKind.RET:
            stats.returns += 1
            if rec.frame_release and warp.frame_starts:
                warp.spill_depth = warp.frame_starts.pop()
            out.append(ctrl_uop(self.config.ctrl_latency, "RET"))
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            for i in range(rec.reg_count):
                out.append(
                    Uop(_MEM, 1, (), (rec.srcs[i],),
                        warp.spill_sectors(start + i),
                        STREAM_SPILL, True, "SPILL_ST")
                )
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            for i in range(rec.reg_count):
                out.append(
                    Uop(_MEM, 1, (rec.dst[i],), (),
                        warp.spill_sectors(start + i),
                        STREAM_SPILL, False, "SPILL_LD")
                )
        else:
            self._expand_common(warp, rec, out, extra=0)


class CarsContext(LaunchContext):
    """CARS: in-register stacks with renaming, traps, and dynamic policy."""

    manages_registers = True

    def __init__(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: KernelStackAnalysis,
        mode: str = "dynamic",
        policy_memory: Optional[PolicyMemory] = None,
    ) -> None:
        self.analysis = analysis
        self.mode = mode
        super().__init__(trace, config, stats)
        self.plan = plan_allocation(
            analysis, config, self.warps_per_block, trace.shared_mem_bytes
        )
        self.policy: Optional[DynamicReservationPolicy] = None
        self._static_regs: Optional[int] = None
        if mode == "dynamic":
            if self.plan.dynamic:
                self.policy = DynamicReservationPolicy(
                    trace.kernel, self.plan.levels, config.num_sms, policy_memory
                )
            else:
                self._static_regs = self.plan.levels[self.plan.static_level]
        elif mode == "low":
            self._static_regs = analysis.low_watermark
        elif mode == "high":
            self._static_regs = analysis.high_watermark
        elif mode.startswith("nxlow"):
            n = int(mode[len("nxlow"):])
            self._static_regs = analysis.nxlow_watermark(n)
        else:
            raise ValueError(f"unknown CARS mode {mode!r}")
        if not analysis.has_calls:
            # Function-free programs are untouched by CARS.
            self._static_regs = analysis.kernel_fru
            self.policy = None

    def scheduler_regs_per_warp(self) -> int:
        # The global block scheduler is unmodified: it sees the kernel's own
        # frame (embedded in the launch parameters, Section IV-A); extra
        # stack space is claimed inside the SM, stalling overflow warps.
        return self.analysis.kernel_fru

    def stack_level_for_block(self, sm_id: int):
        if self.policy is not None:
            level = self.policy.level_for_new_block(sm_id)
            regs = self.policy.regs_for_level(level)
        else:
            level = 0
            regs = self._static_regs
        regs = max(regs, self.analysis.kernel_fru)
        self.stats.allocation_log.append((self.trace.kernel, level, regs))
        return level, regs

    def attach_warp(self, warp: WarpCtx, regs_per_warp: int) -> None:
        stack_capacity = max(0, regs_per_warp - self.analysis.kernel_fru)
        warp.cars = WarpRegisterStack(stack_capacity)

    def block_done(self, sm_id: int, level: int, runtime: int) -> None:
        if self.policy is not None:
            self.policy.record_block(sm_id, level, runtime)

    def finalize(self) -> None:
        if self.policy is not None:
            self.policy.finalize()

    # -- expansion -------------------------------------------------------

    def expand(self, warp: WarpCtx, rec: TraceRecord, out) -> None:
        cfg = self.config
        stats = self.stats
        extra = cfg.cars_extra_pipeline_cycles
        kind = rec.kind
        if kind == TraceKind.CALL:
            stats.calls += 1
            out.append(ctrl_uop(cfg.ctrl_latency + extra, "CALL"))
            spilled = warp.cars.call(rec.fru)
            if spilled:
                stats.traps += 1
                for start, count in spilled:
                    stats.trap_spilled_regs += count
                    for i in range(count):
                        out.append(
                            mem_uop(
                                warp.trap_sectors(start + i),
                                STREAM_SPILL,
                                True,
                                (),
                                (),
                                "SPILL_ST",
                            )
                        )
        elif kind == TraceKind.RET:
            stats.returns += 1
            out.append(ctrl_uop(cfg.ctrl_latency + extra, "RET"))
            if rec.frame_release:
                filled = warp.cars.ret()
                if filled is not None:
                    start, count = filled
                    stats.trap_filled_regs += count
                    for i in range(count):
                        out.append(
                            mem_uop(
                                warp.trap_sectors(start + i),
                                STREAM_SPILL,
                                False,
                                (),
                                (),
                                "SPILL_LD",
                            )
                        )
                    # The caller cannot proceed until its frame is back in
                    # the register file: the last fill blocks the warp.
                    out[-1].blocking = True
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            out.append(
                Uop(_EXEC, cfg.stack_op_latency + extra, (), rec.srcs, mix="STACK")
            )
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            out.append(
                Uop(_EXEC, cfg.stack_op_latency + extra, rec.dst, (), mix="STACK")
            )
        else:
            # The added issue/operand-collector stage is charged to the ops
            # whose paths CARS modifies (calls, stack ops, branches through
            # the SIMT stack).  Plain ALU dependency chains keep their
            # baseline latency — the paper itself argues the renaming mux
            # "is unlikely to affect the SM's critical path" (Section IV-C).
            self._expand_common(
                warp, rec, out,
                extra=extra if kind == TraceKind.BRANCH else 0,
            )


@dataclass(frozen=True)
class Technique:
    """A named (config transform, binary choice, ABI model) bundle."""

    name: str
    abi: str = "baseline"  # "baseline" | "cars"
    use_inlined: bool = False
    cars_mode: str = "dynamic"
    config_fn: Optional[Callable[[GPUConfig], GPUConfig]] = None

    def adjust_config(self, config: GPUConfig) -> GPUConfig:
        return self.config_fn(config) if self.config_fn else config

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        if self.abi == "cars":
            if analysis is None:
                raise ValueError("CARS requires a call-graph analysis")
            return CarsContext(
                trace, config, stats, analysis, self.cars_mode, policy_memory
            )
        return BaselineContext(trace, config, stats)


# -- the paper's studied configurations -------------------------------------

BASELINE = Technique("baseline")
IDEAL_VW = Technique(
    "ideal_vw", config_fn=lambda c: c.with_unlimited_occupancy()
)
L1_HUGE = Technique(
    "l1_10mb", config_fn=lambda c: c.with_l1_size(2 * 1024 * 1024)
)
ALL_HIT = Technique("all_hit", config_fn=lambda c: c.with_force_hit())
LTO = Technique("lto", use_inlined=True)
CARS = Technique("cars", abi="cars")
CARS_LOW = Technique("cars_low", abi="cars", cars_mode="low")
CARS_HIGH = Technique("cars_high", abi="cars", cars_mode="high")


def swl(limit: int) -> Technique:
    """Static Wavefront Limiter at a fixed warp count."""
    return Technique(
        f"swl_{limit}", config_fn=lambda c, l=limit: c.with_warp_limit(l)
    )


def cars_nxlow(n: int) -> Technique:
    """CARS pinned at the NxLow-watermark allocation."""
    return Technique(f"cars_nxlow{n}", abi="cars", cars_mode=f"nxlow{n}")


#: The fixed studied techniques, by name.
TECHNIQUE_REGISTRY: dict = {
    t.name: t
    for t in (BASELINE, IDEAL_VW, L1_HUGE, ALL_HIT, LTO, CARS, CARS_LOW, CARS_HIGH)
}


def resolve_technique(name: str) -> Technique:
    """Look a technique up by name, including the parametric families.

    Techniques carry ``config_fn`` closures that cannot cross a process
    boundary, so the parallel executor ships *names* and workers resolve
    them here: ``swl_<n>`` and ``cars_nxlow<n>`` are reconstructed on
    demand, everything else comes from :data:`TECHNIQUE_REGISTRY`.
    """
    if name in TECHNIQUE_REGISTRY:
        return TECHNIQUE_REGISTRY[name]
    if name.startswith("swl_"):
        return swl(int(name[len("swl_"):]))
    if name.startswith("cars_nxlow"):
        return cars_nxlow(int(name[len("cars_nxlow"):]))
    raise KeyError(f"unknown technique {name!r}")
