"""Techniques studied (Section V-D): trace-to-µop expansion per ABI model.

Every technique replays the same dynamic traces through the same SM timing
model; what differs is

* which binary produced the trace (baseline vs fully-inlined LTO),
* the hardware config (L1 size/ports, force-hit, occupancy limits), and
* how the ABI records (CALL/RET/PUSH/POP) expand:
  - **baseline** — PUSH/POP become local-memory spill/fill accesses,
  - **CARS** — PUSH/POP become 1-cycle renames; CALL/RET drive the per-warp
    register stack, trapping to memory only on overflow (Fig 6).

The expansion behaviour is pluggable: a :class:`Technique` holds an
:class:`AbiModel` (a context factory plus capability flags), and
:func:`register_technique` / :func:`register_technique_family` add new
arms that :func:`resolve_technique` then reconstructs by bare name in any
process that imported the registering module.  The ``"baseline"`` and
``"cars"`` ``abi=`` strings are kept as compatibility aliases; the rival
arms ``regdem`` and ``rfcache`` (see :mod:`repro.spill`) register
themselves through this API exactly as a third-party plugin would.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, ClassVar, Deque, Dict, List, Optional, Tuple, Union

from ..callgraph.analysis import KernelStackAnalysis
from ..cars.allocation import plan_allocation
from ..cars.policy import DynamicReservationPolicy, PolicyMemory
from ..cars.register_stack import WarpRegisterStack
from ..config.gpu_config import GPUConfig
from ..emu.trace import KernelTrace, TraceKind, TraceRecord
from ..metrics.counters import SimStats, STREAM_GLOBAL, STREAM_LOCAL, STREAM_SPILL
from ..resilience.errors import UnknownTechniqueError
from .occupancy import Occupancy, compute_occupancy
from .uop import Uop, UopKind, bar_uop, ctrl_uop, exit_uop, mem_uop
from .warp import WarpCtx

# Hot-path aliases for the expansion fast paths below.
_EXEC = UopKind.EXEC
_MEM = UopKind.MEM
_CTRL = UopKind.CTRL


class LaunchContext:
    """Per-(kernel-launch x technique) state driving µop expansion."""

    #: When True the SM manages a register pool and may stall warps
    #: (CARS's issue-stage stalled-warp list).
    manages_registers: bool = False

    #: CPI-stack bucket charged while a warp is parked on a blocking
    #: fill (``repro.obs.cpi`` reads this off the active context, so each
    #: ABI's stall traffic is attributed under its own label).  Must name
    #: a bucket :mod:`repro.obs.cpi` declares.
    blocking_fill_bucket: str = "cars_trap"

    def __init__(self, trace: KernelTrace, config: GPUConfig, stats: SimStats) -> None:
        self.trace = trace
        self.config = config
        self.stats = stats
        self.warps_per_block = trace.threads_per_block // 32
        self.occupancy = self._occupancy()
        # Front-end pressure: binaries larger than the i-cache pay an
        # amortized fetch penalty per instruction (Fig 16's LTO downside).
        code = max(1, trace.code_bytes)
        miss_rate = max(0.0, 1.0 - config.icache_bytes / code)
        self.fetch_penalty = miss_rate * config.icache_miss_penalty

    # -- occupancy ------------------------------------------------------

    def scheduler_regs_per_warp(self) -> int:
        """Per-warp register demand the block scheduler sees."""
        raise NotImplementedError

    def _occupancy(self) -> Occupancy:
        return compute_occupancy(
            self.config,
            self.scheduler_regs_per_warp(),
            self.warps_per_block,
            self.trace.shared_mem_bytes,
        )

    # -- CARS hooks (no-ops for static techniques) ----------------------

    def stack_level_for_block(self, sm_id: int) -> Tuple[int, int]:
        """(level_index, regs_per_warp) for a block spawning on *sm_id*."""
        return 0, self.scheduler_regs_per_warp()

    def attach_warp(self, warp: WarpCtx, regs_per_warp: int) -> None:
        """Initialize per-warp ABI state once registers are allocated."""

    def block_done(self, sm_id: int, level: int, runtime: int) -> None:
        pass

    def finalize(self) -> None:
        pass

    # -- expansion -------------------------------------------------------

    def expand(self, warp: WarpCtx, rec: TraceRecord, out: Deque[Uop]) -> None:
        """Append *rec*'s µops to *out* (the warp's issue deque).

        Appending into the caller's container rather than returning a
        fresh list avoids one allocation per dynamic instruction — the
        frontend's hottest rate.
        """
        raise NotImplementedError

    def _expand_common(
        self, warp: WarpCtx, rec: TraceRecord, out: Deque[Uop], extra: int
    ) -> None:
        """Records whose expansion is technique-independent.

        The ``Uop`` constructor is invoked directly (not through the
        ``exec_uop``/``mem_uop`` helpers) on the frequent kinds: expansion
        runs once per dynamic instruction and the extra call layer is
        measurable there.
        """
        cfg = self.config
        kind = rec.kind
        if kind == TraceKind.ALU:
            out.append(Uop(_EXEC, cfg.alu_latency + extra, rec.dst, rec.srcs))
        elif kind == TraceKind.GLOBAL_LD:
            out.append(
                Uop(_MEM, 1, rec.dst, rec.srcs, rec.sectors, STREAM_GLOBAL,
                    False, "GLOBAL_LD")
            )
        elif kind == TraceKind.BRANCH:
            out.append(Uop(_CTRL, cfg.ctrl_latency + extra, mix="BRANCH"))
        elif kind == TraceKind.FPU:
            out.append(
                Uop(_EXEC, cfg.fpu_latency + extra, rec.dst, rec.srcs, mix="FPU")
            )
        elif kind == TraceKind.SFU:
            out.append(
                Uop(_EXEC, cfg.sfu_latency + extra, rec.dst, rec.srcs, mix="SFU")
            )
        elif kind == TraceKind.SMEM:
            out.append(
                Uop(_EXEC, cfg.smem_latency + extra, rec.dst, rec.srcs, mix="SMEM")
            )
        elif kind == TraceKind.GLOBAL_ST:
            out.append(
                Uop(_MEM, 1, (), rec.srcs, rec.sectors, STREAM_GLOBAL,
                    True, "GLOBAL_ST")
            )
        elif kind == TraceKind.LOCAL_LD:
            out.append(
                mem_uop(
                    warp.local_sectors(rec.local_offset),
                    STREAM_LOCAL,
                    False,
                    rec.dst,
                    (),
                    "LOCAL_LD",
                )
            )
        elif kind == TraceKind.LOCAL_ST:
            out.append(
                mem_uop(
                    warp.local_sectors(rec.local_offset),
                    STREAM_LOCAL,
                    True,
                    (),
                    rec.srcs,
                    "LOCAL_ST",
                )
            )
        elif kind == TraceKind.BAR:
            out.append(bar_uop())
        elif kind == TraceKind.EXIT:
            out.append(exit_uop())
        else:
            raise ValueError(f"unexpected record kind {kind!r}")


class BaselineContext(LaunchContext):
    """Contemporary ABI: spills/fills are local-memory instructions."""

    def scheduler_regs_per_warp(self) -> int:
        # The linker's worst-case register usage over the call graph.
        return self.trace.regs_per_warp_baseline

    def expand(self, warp: WarpCtx, rec: TraceRecord, out: Deque[Uop]) -> None:
        kind = rec.kind
        stats = self.stats
        if kind == TraceKind.CALL:
            stats.calls += 1
            warp.frame_starts.append(warp.spill_depth)
            warp.spill_depth += rec.push_count
            out.append(ctrl_uop(self.config.ctrl_latency, "CALL"))
        elif kind == TraceKind.RET:
            stats.returns += 1
            if rec.frame_release and warp.frame_starts:
                warp.spill_depth = warp.frame_starts.pop()
            out.append(ctrl_uop(self.config.ctrl_latency, "RET"))
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            for i in range(rec.reg_count):
                out.append(
                    Uop(_MEM, 1, (), (rec.srcs[i],),
                        warp.spill_sectors(start + i),
                        STREAM_SPILL, True, "SPILL_ST")
                )
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            start = warp.frame_starts[-1] if warp.frame_starts else 0
            for i in range(rec.reg_count):
                out.append(
                    Uop(_MEM, 1, (rec.dst[i],), (),
                        warp.spill_sectors(start + i),
                        STREAM_SPILL, False, "SPILL_LD")
                )
        else:
            self._expand_common(warp, rec, out, extra=0)


class CarsContext(LaunchContext):
    """CARS: in-register stacks with renaming, traps, and dynamic policy."""

    manages_registers = True

    def __init__(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: KernelStackAnalysis,
        mode: str = "dynamic",
        policy_memory: Optional[PolicyMemory] = None,
    ) -> None:
        self.analysis = analysis
        self.mode = mode
        super().__init__(trace, config, stats)
        self.plan = plan_allocation(
            analysis, config, self.warps_per_block, trace.shared_mem_bytes
        )
        self.policy: Optional[DynamicReservationPolicy] = None
        self._static_regs: Optional[int] = None
        if mode == "dynamic":
            if self.plan.dynamic:
                self.policy = DynamicReservationPolicy(
                    trace.kernel, self.plan.levels, config.num_sms,
                    policy_memory,
                    min_samples=config.cars_policy_min_samples,
                )
            else:
                self._static_regs = self.plan.levels[self.plan.static_level]
        elif mode == "low":
            self._static_regs = analysis.low_watermark
        elif mode == "high":
            self._static_regs = analysis.high_watermark
        elif mode.startswith("nxlow"):
            n = int(mode[len("nxlow"):])
            self._static_regs = analysis.nxlow_watermark(n)
        else:
            raise ValueError(f"unknown CARS mode {mode!r}")
        if not analysis.has_calls:
            # Function-free programs are untouched by CARS.
            self._static_regs = analysis.kernel_fru
            self.policy = None

    def scheduler_regs_per_warp(self) -> int:
        # The global block scheduler is unmodified: it sees the kernel's own
        # frame (embedded in the launch parameters, Section IV-A); extra
        # stack space is claimed inside the SM, stalling overflow warps.
        return self.analysis.kernel_fru

    def stack_level_for_block(self, sm_id: int) -> Tuple[int, int]:
        if self.policy is not None:
            level = self.policy.level_for_new_block(sm_id)
            regs = self.policy.regs_for_level(level)
        else:
            level = 0
            # __init__ guarantees exactly one of policy/_static_regs is set.
            assert self._static_regs is not None
            regs = self._static_regs
        regs = max(regs, self.analysis.kernel_fru)
        self.stats.allocation_log.append((self.trace.kernel, level, regs))
        return level, regs

    def attach_warp(self, warp: WarpCtx, regs_per_warp: int) -> None:
        stack_capacity = max(0, regs_per_warp - self.analysis.kernel_fru)
        warp.cars = WarpRegisterStack(stack_capacity)

    def block_done(self, sm_id: int, level: int, runtime: int) -> None:
        if self.policy is not None:
            self.policy.record_block(sm_id, level, runtime)

    def finalize(self) -> None:
        if self.policy is not None:
            self.policy.finalize()

    # -- expansion -------------------------------------------------------

    def expand(self, warp: WarpCtx, rec: TraceRecord, out: Deque[Uop]) -> None:
        cfg = self.config
        stats = self.stats
        extra = cfg.cars_extra_pipeline_cycles
        kind = rec.kind
        if kind == TraceKind.CALL:
            stats.calls += 1
            out.append(ctrl_uop(cfg.ctrl_latency + extra, "CALL"))
            stack = warp.cars
            assert stack is not None  # attach_warp ran at allocation
            spilled = stack.call(rec.fru)
            if spilled:
                stats.traps += 1
                for start, count in spilled:
                    stats.trap_spilled_regs += count
                    for i in range(count):
                        out.append(
                            mem_uop(
                                warp.trap_sectors(start + i),
                                STREAM_SPILL,
                                True,
                                (),
                                (),
                                "SPILL_ST",
                            )
                        )
        elif kind == TraceKind.RET:
            stats.returns += 1
            out.append(ctrl_uop(cfg.ctrl_latency + extra, "RET"))
            if rec.frame_release:
                stack = warp.cars
                assert stack is not None  # attach_warp ran at allocation
                filled = stack.ret()
                if filled is not None:
                    start, count = filled
                    stats.trap_filled_regs += count
                    for i in range(count):
                        out.append(
                            mem_uop(
                                warp.trap_sectors(start + i),
                                STREAM_SPILL,
                                False,
                                (),
                                (),
                                "SPILL_LD",
                            )
                        )
                    # The caller cannot proceed until its frame is back in
                    # the register file: the last fill blocks the warp.
                    out[-1].blocking = True
        elif kind == TraceKind.PUSH:
            stats.pushes += 1
            stats.push_regs += rec.reg_count
            out.append(
                Uop(_EXEC, cfg.stack_op_latency + extra, (), rec.srcs, mix="STACK")
            )
        elif kind == TraceKind.POP:
            stats.pops += 1
            stats.pop_regs += rec.reg_count
            out.append(
                Uop(_EXEC, cfg.stack_op_latency + extra, rec.dst, (), mix="STACK")
            )
        else:
            # The added issue/operand-collector stage is charged to the ops
            # whose paths CARS modifies (calls, stack ops, branches through
            # the SIMT stack).  Plain ALU dependency chains keep their
            # baseline latency — the paper itself argues the renaming mux
            # "is unlikely to affect the SM's critical path" (Section IV-C).
            self._expand_common(
                warp, rec, out,
                extra=extra if kind == TraceKind.BRANCH else 0,
            )


# ---------------------------------------------------------------------------
# The pluggable ABI-model protocol
# ---------------------------------------------------------------------------


class AbiModel:
    """Context factory plus capability flags for one ABI mechanism.

    A :class:`Technique` holds one of these instead of branching on an
    ``abi`` string, so new register-pressure mechanisms plug in without
    editing this module: subclass, implement :meth:`make_context`, then
    :func:`register_abi_model` the name and :func:`register_technique`
    the arms built on it (see ``repro.spill`` for two worked examples).
    """

    #: Registry name; also what ``Technique.abi`` normalizes to.
    name: ClassVar[str] = "abstract"
    #: True when :meth:`make_context` needs a per-kernel
    #: :class:`KernelStackAnalysis` (the harness builds the call graph
    #: only for techniques that ask for it).
    requires_analysis: ClassVar[bool] = False

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        raise NotImplementedError

    def _require_analysis(
        self, analysis: Optional[KernelStackAnalysis]
    ) -> KernelStackAnalysis:
        if analysis is None:
            raise ValueError(
                f"{type(self).__name__} requires a call-graph analysis"
            )
        return analysis


@dataclass(frozen=True)
class BaselineAbi(AbiModel):
    """Contemporary ABI: spills/fills are local-memory instructions."""

    name: ClassVar[str] = "baseline"

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        return BaselineContext(trace, config, stats)


@dataclass(frozen=True)
class CarsAbi(AbiModel):
    """CARS register stacks at one reservation mode."""

    mode: str = "dynamic"

    name: ClassVar[str] = "cars"
    requires_analysis: ClassVar[bool] = True

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        if analysis is None:
            # Preserved verbatim: callers catch this exact message.
            raise ValueError("CARS requires a call-graph analysis")
        return CarsContext(
            trace, config, stats, analysis, self.mode, policy_memory
        )


#: ``abi`` string -> model factory (receives the owning Technique, so
#: factories can read knobs like ``cars_mode``).  ``"baseline"`` and
#: ``"cars"`` are the compatibility aliases the pre-plugin API accepted.
ABI_MODELS: Dict[str, Callable[["Technique"], AbiModel]] = {}


def register_abi_model(
    name: str,
    factory: Callable[["Technique"], AbiModel],
    *,
    replace: bool = False,
) -> None:
    """Make ``Technique(abi=name)`` resolve to *factory*'s model."""
    if name in ABI_MODELS and not replace:
        raise ValueError(
            f"ABI model {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    ABI_MODELS[name] = factory


register_abi_model("baseline", lambda technique: BaselineAbi())
register_abi_model("cars", lambda technique: CarsAbi(technique.cars_mode))


@dataclass(frozen=True)
class Technique:
    """A named (config transform, binary choice, ABI model) bundle.

    ``abi`` accepts either a registered ABI-model name (``"baseline"``,
    ``"cars"``, ``"regdem"``, ``"rfcache"``, …) or an :class:`AbiModel`
    instance; it is normalized to the model's name, and the model itself
    lands on :attr:`model`.
    """

    name: str
    abi: Union[str, AbiModel] = "baseline"
    use_inlined: bool = False
    cars_mode: str = "dynamic"
    config_fn: Optional[Callable[[GPUConfig], GPUConfig]] = None
    model: AbiModel = dataclasses.field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.abi, AbiModel):
            model = self.abi
            object.__setattr__(self, "abi", model.name)
        else:
            factory = ABI_MODELS.get(self.abi)
            if factory is None:
                raise ValueError(
                    f"unknown ABI model {self.abi!r} "
                    f"(registered: {', '.join(sorted(ABI_MODELS))})"
                )
            model = factory(self)
        object.__setattr__(self, "model", model)

    @property
    def requires_analysis(self) -> bool:
        """Whether the harness must build a call-graph analysis."""
        return self.model.requires_analysis

    def adjust_config(self, config: GPUConfig) -> GPUConfig:
        return self.config_fn(config) if self.config_fn else config

    def make_context(
        self,
        trace: KernelTrace,
        config: GPUConfig,
        stats: SimStats,
        analysis: Optional[KernelStackAnalysis] = None,
        policy_memory: Optional[PolicyMemory] = None,
    ) -> LaunchContext:
        return self.model.make_context(
            trace, config, stats, analysis, policy_memory
        )


# ---------------------------------------------------------------------------
# Registration: fixed names and parametric families
# ---------------------------------------------------------------------------

#: The registered fixed techniques, by name.  Mutate through
#: :func:`register_technique`, not directly.
TECHNIQUE_REGISTRY: Dict[str, Technique] = {}


@dataclass(frozen=True)
class TechniqueFamily:
    """A parametric technique family (``swl_<n>``, ``cars_nxlow<n>``, …).

    ``factory`` receives the name's suffix after ``prefix`` and returns
    the reconstructed :class:`Technique`; a :class:`ValueError` from it
    means "suffix not mine" and resolution moves on.
    """

    prefix: str
    factory: Callable[[str], Technique]
    pattern: str


#: Registered parametric families, by prefix.
TECHNIQUE_FAMILIES: Dict[str, TechniqueFamily] = {}


def register_technique(technique: Technique, *, replace: bool = False) -> Technique:
    """Add *technique* to :data:`TECHNIQUE_REGISTRY` and return it.

    Registering the same object again is a no-op; a *different* technique
    under an existing name raises unless ``replace=True`` (collisions are
    almost always a plugin bug, not an intent).
    """
    existing = TECHNIQUE_REGISTRY.get(technique.name)
    if existing is not None and existing is not technique and not replace:
        raise ValueError(
            f"technique {technique.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    TECHNIQUE_REGISTRY[technique.name] = technique
    return technique


def register_technique_family(
    prefix: str,
    factory: Callable[[str], Technique],
    *,
    pattern: Optional[str] = None,
    replace: bool = False,
) -> None:
    """Make :func:`resolve_technique` reconstruct ``<prefix><suffix>`` names.

    Families make parametric arms resolvable across process boundaries:
    the executor ships bare names, and any worker that imported the
    registering module rebuilds the technique from the suffix.
    """
    if prefix in TECHNIQUE_FAMILIES and not replace:
        raise ValueError(
            f"technique family {prefix!r} is already registered "
            f"(pass replace=True to override)"
        )
    TECHNIQUE_FAMILIES[prefix] = TechniqueFamily(
        prefix=prefix,
        factory=factory,
        pattern=pattern if pattern is not None else f"{prefix}<n>",
    )


def parse_family_int(suffix: str) -> int:
    """Parse a family-name suffix as a canonical decimal integer.

    Family names are store keys, so they must be canonical: ``swl_8``
    parses, while trailing or leading garbage (``8x``, ``08``, ``+8``,
    `` 8``, ``8_0``, unicode digits) raises :class:`ValueError` so that
    :func:`resolve_technique` falls through to
    :class:`~repro.resilience.errors.UnknownTechniqueError` instead of
    silently truncating the name.  ``int()`` alone is too permissive
    here — it strips whitespace and accepts signs and underscores.
    """
    if not (suffix.isascii() and suffix.isdigit()):
        raise ValueError(f"non-canonical family suffix {suffix!r}")
    if len(suffix) > 1 and suffix[0] == "0":
        raise ValueError(f"non-canonical family suffix {suffix!r}")
    return int(suffix)


def list_techniques() -> List[str]:
    """Sorted names of every registered fixed technique."""
    return sorted(TECHNIQUE_REGISTRY)


def list_technique_families() -> List[str]:
    """Sorted display patterns of the registered parametric families."""
    return sorted(family.pattern for family in TECHNIQUE_FAMILIES.values())


def resolve_technique(name: str) -> Technique:
    """Look a technique up by name, including the parametric families.

    Techniques carry ``config_fn`` closures that cannot cross a process
    boundary, so the parallel executor ships *names* and workers resolve
    them here: fixed names come from :data:`TECHNIQUE_REGISTRY`, and
    family names (``swl_<n>``, ``cars_nxlow<n>``, ``regdem_<r>``, …) are
    reconstructed on demand via :data:`TECHNIQUE_FAMILIES`.

    Raises :class:`~repro.resilience.errors.UnknownTechniqueError` (a
    ``KeyError`` subclass) with did-you-mean suggestions otherwise.
    """
    technique = TECHNIQUE_REGISTRY.get(name)
    if technique is not None:
        return technique
    # Longest prefix first so e.g. "cars_nxlow2" never falls into a
    # hypothetical shorter "cars_" family.
    for prefix in sorted(TECHNIQUE_FAMILIES, key=len, reverse=True):
        if not name.startswith(prefix) or len(name) <= len(prefix):
            continue
        family = TECHNIQUE_FAMILIES[prefix]
        try:
            technique = family.factory(name[len(prefix):])
        except ValueError:
            continue  # suffix did not parse; try a shorter family
        if technique.name == name:
            return technique
    known = list_techniques() + list_technique_families()
    raise UnknownTechniqueError.for_name(name, known)


# -- the paper's studied configurations -------------------------------------

BASELINE = register_technique(Technique("baseline"))
IDEAL_VW = register_technique(
    Technique("ideal_vw", config_fn=lambda c: c.with_unlimited_occupancy())
)
L1_HUGE = register_technique(
    Technique("l1_10mb", config_fn=lambda c: c.with_l1_size(2 * 1024 * 1024))
)
ALL_HIT = register_technique(
    Technique("all_hit", config_fn=lambda c: c.with_force_hit())
)
LTO = register_technique(Technique("lto", use_inlined=True))
CARS = register_technique(Technique("cars", abi="cars"))
CARS_LOW = register_technique(
    Technique("cars_low", abi="cars", cars_mode="low")
)
CARS_HIGH = register_technique(
    Technique("cars_high", abi="cars", cars_mode="high")
)


def swl(limit: int) -> Technique:
    """Static Wavefront Limiter at a fixed warp count."""
    return Technique(
        f"swl_{limit}", config_fn=lambda c, l=limit: c.with_warp_limit(l)
    )


def cars_nxlow(n: int) -> Technique:
    """CARS pinned at the NxLow-watermark allocation."""
    return Technique(f"cars_nxlow{n}", abi="cars", cars_mode=f"nxlow{n}")


register_technique_family(
    "swl_", lambda suffix: swl(parse_family_int(suffix)), pattern="swl_<n>"
)
register_technique_family(
    "cars_nxlow",
    lambda suffix: cars_nxlow(parse_family_int(suffix)),
    pattern="cars_nxlow<n>",
)
