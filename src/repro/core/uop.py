"""Micro-ops: what the SM pipeline actually issues.

Trace records are expanded into micro-ops by the active technique's ABI
model — e.g. a ``PUSH x4`` record becomes four local-store micro-ops in the
baseline but a single 1-cycle stack micro-op under CARS (plus trap traffic
when the register stack overflows).
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..metrics.counters import STREAM_GLOBAL


class UopKind(enum.IntEnum):
    EXEC = 0  # ALU/FPU/SFU/SMEM/stack-rename: fixed-latency pipelined op
    MEM = 1  # L1D-bound load or store
    CTRL = 2  # branch/call/return bookkeeping
    BAR = 3  # block-wide barrier
    EXIT = 4  # warp termination


class Uop:
    """One issued micro-op.

    Attributes:
        kind: pipeline treatment.
        latency: completion latency for EXEC (dst ready at issue+latency).
        dst/srcs: architectural registers for the scoreboard.
        sectors: L1D sector addresses (MEM only).
        stream: access stream tag (MEM only).
        is_store: MEM direction.
        mix: trace-kind name for the Fig 13 instruction-mix counters.
        blocking: MEM loads that stall the warp until completion (CARS
            trap fills and context-switch fills, whose destination is the
            renamed stack region rather than named architectural registers).
    """

    __slots__ = (
        "kind",
        "latency",
        "dst",
        "srcs",
        "sectors",
        "stream",
        "is_store",
        "mix",
        "blocking",
        "deps",
    )

    def __init__(
        self,
        kind: UopKind,
        latency: int = 1,
        dst: Tuple[int, ...] = (),
        srcs: Tuple[int, ...] = (),
        sectors: Tuple[int, ...] = (),
        stream: str = STREAM_GLOBAL,
        is_store: bool = False,
        mix: str = "ALU",
        blocking: bool = False,
    ) -> None:
        self.kind = kind
        self.latency = latency
        self.dst = dst
        self.srcs = srcs
        self.sectors = sectors
        self.stream = stream
        self.is_store = is_store
        self.mix = mix
        self.blocking = blocking
        # Scoreboard registers this µop waits on (read-after-write on srcs,
        # write-after-write on dst), precomputed once for the issue loop.
        self.deps = srcs + dst if dst else srcs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Uop {self.kind.name} {self.mix} lat={self.latency}>"


def exec_uop(latency: int, dst=(), srcs=(), mix: str = "ALU") -> Uop:
    """Fixed-latency execution micro-op."""
    return Uop(UopKind.EXEC, latency=latency, dst=dst, srcs=srcs, mix=mix)


def mem_uop(sectors, stream: str, is_store: bool, dst=(), srcs=(), mix: str = "MEM") -> Uop:
    """L1D-bound memory micro-op over *sectors*."""
    return Uop(
        UopKind.MEM,
        dst=dst,
        srcs=srcs,
        sectors=tuple(sectors),
        stream=stream,
        is_store=is_store,
        mix=mix,
    )


def ctrl_uop(latency: int, mix: str = "BRANCH") -> Uop:
    """Control micro-op (branch/call/return bookkeeping)."""
    return Uop(UopKind.CTRL, latency=latency, mix=mix)


def bar_uop() -> Uop:
    """Barrier micro-op."""
    return Uop(UopKind.BAR, mix="BAR")


def exit_uop() -> Uop:
    """Warp-exit micro-op."""
    return Uop(UopKind.EXIT, mix="EXIT")
