"""Top-level GPU timing simulator.

Drives the per-SM pipelines and the shared memory hierarchy with an
event-driven main loop: a cycle only runs the SMs whose
:meth:`~repro.core.sm.SM.next_event_cycle` bound has arrived, and when no
scheduler issues anywhere the loop jumps straight to the next interesting
cycle — the earliest of the memory subsystem's event-heap head and every
SM's bound.  Each skipped idle stretch is credited, whole, to the CPI-stack
bucket the per-cycle loop would have chosen: the SM bounds are exact at
every cycle where the classification could flip (a warp's ``next_issue`` or
scoreboard ready cycle arriving), so nothing can change mid-stretch.

One :class:`GPU` instance simulates one kernel launch; the harness strings
launches together and merges their statistics.

Failure semantics (see :mod:`repro.resilience`): a run that exhausts its
cycle budget raises :class:`~repro.resilience.errors.MaxCyclesError`; a run
with no future events (or one the watchdog catches retiring nothing for a
whole window) raises :class:`~repro.resilience.errors.DeadlockError`; a
CPI-accounting leak raises
:class:`~repro.resilience.errors.InvariantViolation`.  All three carry a
:class:`~repro.resilience.diagnostics.DiagnosticDump`.

``max_cycles`` boundary contract (both budget paths agree; pinned by
``tests/test_max_cycles_boundary``): the guard fires at the top of the
iteration for cycle ``max_cycles + 1`` when blocks remain, and the
fast-forward clamp stops a skip *at* ``max_cycles + 1`` so that guard is
reached; a run whose uninterrupted total is ``T`` cycles therefore
completes iff ``max_cycles >= T - 1``.
"""

from __future__ import annotations

import gc
from collections import Counter, deque
from typing import Deque, Dict, Optional

from ..config.gpu_config import GPUConfig
from ..emu.trace import KernelTrace
from ..mem.subsystem import MemorySubsystem, MemRequest
from ..metrics.counters import SimStats
from ..obs.cpi import BUCKET_ISSUED, classify_idle, warp_stall_reasons
from ..resilience.diagnostics import collect_dump
from ..resilience.errors import (
    DeadlockError,
    InvariantViolation,
    MaxCyclesError,
    SimulationError,
    UnsupportedFeatureError,
)
from ..resilience.faults import active_session
from ..resilience.watchdog import Watchdog
from .backends import register_backend
from .sm import SM
from .techniques import LaunchContext
from .warp import NEVER

__all__ = ["GPU", "SimulationError"]


class GPU:
    """Simulates one kernel launch under one technique.

    This class is also the event-driven *timing backend* (registered as
    ``"event"`` in :mod:`repro.core.backends`).  Alternative backends
    subclass it and override the two construction seams — ``sm_cls``
    (the per-SM pipeline class) and, through that, the per-warp state
    layout — while inheriting the main loop, the failure taxonomy, and
    the CPI-stack accounting, so every backend shares one definition of
    what a cycle means.
    """

    #: Registry name of this backend (subclasses override).
    backend_name = "event"
    #: Per-SM pipeline class constructed in ``__init__`` (subclass seam).
    sm_cls = SM
    #: Whether :mod:`repro.resilience.checkpoint` may pickle this GPU.
    supports_checkpoint = True

    __slots__ = (
        "config",
        "ctx",
        "stats",
        "obs",
        "mem",
        "sms",
        "_warp_counter",
        "_pending",
        "_blocks_remaining",
        "_faults",
    )

    def __init__(
        self,
        config: GPUConfig,
        ctx: LaunchContext,
        stats: SimStats,
        obs=None,
    ) -> None:
        self.config = config
        self.ctx = ctx
        self.stats = stats
        self.obs = obs  # ObsSession or None; SMs read this at construction
        self.mem = MemorySubsystem(config, stats, self._on_load_complete)
        sm_cls = self.sm_cls
        self.sms = [
            sm_cls(sm_id, config, ctx, self.mem, stats, self)
            for sm_id in range(config.num_sms)
        ]
        # Plain int (not itertools.count) so checkpoints can serialize the
        # counter without consuming a value — warp indices feed local-memory
        # sector addresses, so a skewed counter would change cache timing.
        self._warp_counter = 0
        self._pending: Deque = deque()
        self._blocks_remaining = 0
        self._faults = active_session()

    # -- services used by the SMs ---------------------------------------

    def next_warp_index(self) -> int:
        index = self._warp_counter
        self._warp_counter = index + 1
        return index

    def block_finished(self, sm: SM, cycle: int) -> None:
        self._blocks_remaining -= 1
        self._assign_blocks(cycle)

    # -- launch ----------------------------------------------------------

    def _assign_blocks(self, cycle: int) -> None:
        progress = True
        while self._pending and progress:
            progress = False
            for sm in self.sms:
                if not self._pending:
                    break
                if sm.can_accept_block():
                    sm.add_block(self._pending.popleft(), cycle)
                    progress = True

    def run(
        self,
        trace: KernelTrace,
        max_cycles: int = 50_000_000,
        *,
        watchdog=None,
        checkpoint=None,
    ) -> int:
        """Simulate the launch to completion; returns total cycles.

        Every cycle is attributed to exactly one CPI-stack bucket as it
        passes: issuing cycles to ``issued``, each fast-forwarded idle
        stretch — whole — to the stall cause that opened it (nothing can
        change mid-stretch, so the cause holds for every cycle in it).
        The accounting is checked against the cycle count before it is
        folded into :class:`~repro.metrics.counters.SimStats`.

        Args:
            watchdog: a :class:`~repro.resilience.watchdog.Watchdog`
                (``None`` = a fresh default one; ``False`` disables).
                Pure observer — enabling it never changes any stat.
            checkpoint: an optional
                :class:`~repro.resilience.checkpoint.CheckpointPolicy`;
                state is saved at idle-stretch boundaries once its due
                cycle passes.  Incompatible with an active ObsSession.
        """
        self._pending = deque(trace.blocks)
        self._blocks_remaining = len(trace.blocks)
        self._assign_blocks(0)
        return self._finish_run(trace, max_cycles, 0, 0, {}, watchdog, checkpoint)

    def _finish_run(
        self,
        trace: KernelTrace,
        max_cycles: int,
        cycle0: int,
        issued0: int,
        idle_buckets: Dict[str, int],
        watchdog,
        checkpoint,
    ) -> int:
        """Run the event loop from a given start state to completion.

        ``run`` enters here with zeroed state; checkpoint resume
        (:func:`repro.resilience.checkpoint.resume_run`) enters with the
        restored mid-run state.  Everything after the loop — accounting
        conservation, CPI-stack fold-in, context finalization — happens
        exactly once per completed launch either way.
        """
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        if tracer is not None:
            tracer.bind_kernel(trace.kernel)
        per_warp = obs is not None and obs.per_warp
        if watchdog is None:
            watchdog = Watchdog()
        elif watchdog is False:
            watchdog = None
        if checkpoint is not None and obs is not None:
            raise ValueError(
                "checkpointing is incompatible with an active ObsSession"
            )
        if checkpoint is not None and not self.supports_checkpoint:
            # Refuse *before* the loop starts, so no partial checkpoint
            # file and no partially-simulated state is left behind.
            raise UnsupportedFeatureError(
                f"the {self.backend_name!r} timing backend does not support "
                f"checkpoint/resume; rerun under backend='event'",
                feature="checkpoint",
                backend=self.backend_name,
            )
        stats = self.stats
        # The loop allocates only acyclic, promptly-refcounted objects
        # (µops, requests, tuples); generational GC passes over the live
        # simulation graph are pure overhead, so pause collection for the
        # run (restoring the caller's setting either way).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            cycle, issued_cycles = self._run_loop(
                trace, max_cycles, tracer, per_warp, idle_buckets,
                watchdog, checkpoint, cycle0, issued0,
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        stats.cycles = cycle
        accounted = issued_cycles + sum(idle_buckets.values())
        if accounted != cycle:
            raise InvariantViolation(
                f"CPI-stack accounting leak in {trace.kernel!r}: "
                f"{accounted} cycles attributed, {cycle} simulated",
                diagnostics=collect_dump(
                    self, cycle, reason="CPI-stack conservation failure",
                    idle_buckets=idle_buckets, issued_cycles=issued_cycles,
                    trail=watchdog.trail if watchdog is not None else None,
                ),
            )
        stack = stats.cpi_stack
        kernel_stack = stats.cpi_by_kernel.setdefault(trace.kernel, Counter())
        if issued_cycles:
            stack[BUCKET_ISSUED] += issued_cycles
            kernel_stack[BUCKET_ISSUED] += issued_cycles
        for bucket, span in idle_buckets.items():
            stack[bucket] += span
            kernel_stack[bucket] += span
        self.ctx.finalize()
        return cycle

    def _run_loop(
        self,
        trace: KernelTrace,
        max_cycles: int,
        tracer,
        per_warp: bool,
        idle_buckets: Dict[str, int],
        watchdog,
        checkpoint,
        cycle: int = 0,
        issued_cycles: int = 0,
    ):
        """Inner event loop; returns ``(final_cycle, issued_cycles)``."""
        mem = self.mem
        sms = self.sms
        stats = self.stats
        faults = self._faults
        while self._blocks_remaining > 0:
            if cycle > max_cycles:
                raise MaxCyclesError(
                    f"kernel {trace.kernel!r} exceeded {max_cycles} cycles",
                    diagnostics=collect_dump(
                        self, cycle, reason="max_cycles budget exhausted",
                        idle_buckets=idle_buckets,
                        issued_cycles=issued_cycles,
                        trail=watchdog.trail if watchdog is not None else None,
                    ),
                )
            mem.tick(cycle)
            issued = 0
            for sm in sms:
                if sm._next_try <= cycle:
                    issued += sm.tick(cycle)
            if issued:
                stats.issue_cycles += 1
                issued_cycles += 1
                cycle += 1
                continue
            # Nothing issued: fast-forward to the next possible event.
            next_cycle = self._next_event_after(cycle)
            if next_cycle is None:
                if self._blocks_remaining > 0:
                    raise DeadlockError(
                        f"deadlock at cycle {cycle}: no future events but "
                        f"{self._blocks_remaining} blocks unfinished",
                        diagnostics=collect_dump(
                            self, cycle, reason="deadlock: no future events",
                            idle_buckets=idle_buckets,
                            issued_cycles=issued_cycles,
                            trail=(watchdog.trail if watchdog is not None
                                   else None),
                        ),
                    )
                break
            if next_cycle > max_cycles + 1:
                # A skip landing past the budget still stops *at* the
                # budget: the guard at the top of the loop fires next.
                next_cycle = max_cycles + 1
            span = next_cycle - cycle
            bucket = classify_idle(self, cycle)
            if faults is None or not faults.drop_idle_charge():
                idle_buckets[bucket] = idle_buckets.get(bucket, 0) + span
            if watchdog is not None:
                watchdog.note_idle(
                    self, cycle, span, bucket, idle_buckets, issued_cycles
                )
            if tracer is not None:
                tracer.on_stall(cycle, span, bucket)
            if per_warp:
                for warp, reason in warp_stall_reasons(self, cycle):
                    key = f"{trace.kernel}/w{warp.global_index}"
                    stalls = stats.warp_stalls.get(key)
                    if stalls is None:
                        stalls = stats.warp_stalls[key] = Counter()
                    stalls[reason] += span
            stats.idle_cycles += span
            cycle = next_cycle
            if checkpoint is not None and cycle >= checkpoint.next_due:
                checkpoint.save(self, trace, cycle, issued_cycles, idle_buckets)
        return cycle, issued_cycles

    def _next_event_after(self, cycle: int) -> Optional[int]:
        """Earliest future cycle anything can happen, or None (deadlock).

        Called only after a zero-issue sweep, so every SM's bound is fresh
        (> ``cycle``) and any memory event at or before ``cycle`` has been
        drained by ``mem.tick``.
        """
        mem = self.mem
        if mem.has_queued_work():
            return cycle + 1
        best = NEVER
        for sm in self.sms:
            bound = sm._next_try
            if bound < best:
                best = bound
        mem_next = mem.next_event_cycle()
        if mem_next is not None and mem_next < best:
            best = mem_next
        if best >= NEVER:
            return None
        if best <= cycle:
            return cycle + 1
        return best

    # -- checkpoint serialization ----------------------------------------

    def __getstate__(self):
        state = {name: getattr(self, name) for name in GPU.__slots__}
        # Observability sessions (open ring buffers) and fault sessions
        # (module-global, injection-scoped) do not survive a checkpoint.
        state["obs"] = None
        state["_faults"] = None
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        # The completion callback is a bound method, nulled by the memory
        # subsystem's __getstate__; rewire it to this (unpickled) GPU.
        self.mem.on_complete = self._on_load_complete

    # -- memory completion -------------------------------------------------

    def _on_load_complete(self, request: MemRequest, cycle: int) -> None:
        self.sms[request.sm_id].complete_load(request, cycle)


# The event-driven core is itself the default backend; the vectorized
# struct-of-arrays backend registers from repro.core.vectorized (gated on
# NumPy being importable — see repro/__init__.py).
register_backend(
    "event",
    GPU,
    description="event-driven pure-Python core (reference implementation)",
    supports_checkpoint=True,
)
