"""Top-level GPU timing simulator.

Drives the per-SM pipelines and the shared memory hierarchy cycle by cycle,
with event-driven fast-forwarding across idle stretches (the wake heap
records every future time anything can change).  One :class:`GPU` instance
simulates one kernel launch; the harness strings launches together and
merges their statistics.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

from ..config.gpu_config import GPUConfig
from ..emu.trace import KernelTrace
from ..mem.subsystem import MemorySubsystem, MemRequest
from ..metrics.counters import SimStats
from ..obs.cpi import BUCKET_ISSUED, classify_idle, warp_stall_reasons
from .sm import SM, SimulationError
from .techniques import LaunchContext


class GPU:
    """Simulates one kernel launch under one technique."""

    def __init__(
        self,
        config: GPUConfig,
        ctx: LaunchContext,
        stats: SimStats,
        obs=None,
    ) -> None:
        self.config = config
        self.ctx = ctx
        self.stats = stats
        self.obs = obs  # ObsSession or None; SMs read this at construction
        self.mem = MemorySubsystem(config, stats, self._on_load_complete)
        self.sms = [
            SM(sm_id, config, ctx, self.mem, stats, self)
            for sm_id in range(config.num_sms)
        ]
        self._wake: List[int] = []
        self._warp_counter = itertools.count()
        self._pending: Deque = deque()
        self._blocks_remaining = 0
        self._cycle = 0

    # -- services used by the SMs ---------------------------------------

    def next_warp_index(self) -> int:
        return next(self._warp_counter)

    def push_wake(self, cycle: int) -> None:
        heapq.heappush(self._wake, cycle)

    def block_finished(self, sm: SM, cycle: int) -> None:
        self._blocks_remaining -= 1
        self._assign_blocks(cycle)

    # -- launch ----------------------------------------------------------

    def _assign_blocks(self, cycle: int) -> None:
        progress = True
        while self._pending and progress:
            progress = False
            for sm in self.sms:
                if not self._pending:
                    break
                if sm.can_accept_block():
                    sm.add_block(self._pending.popleft(), cycle)
                    progress = True
        self.push_wake(cycle + 1)

    def run(self, trace: KernelTrace, max_cycles: int = 50_000_000) -> int:
        """Simulate the launch to completion; returns total cycles.

        Every cycle is attributed to exactly one CPI-stack bucket as it
        passes: issuing cycles to ``issued``, each fast-forwarded idle
        stretch — whole — to the stall cause that opened it (nothing can
        change mid-stretch, so the cause holds for every cycle in it).
        The accounting is checked against the cycle count before it is
        folded into :class:`~repro.metrics.counters.SimStats`.
        """
        self._pending = deque(trace.blocks)
        self._blocks_remaining = len(trace.blocks)
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        if tracer is not None:
            tracer.bind_kernel(trace.kernel)
        per_warp = obs is not None and obs.per_warp
        issued_cycles = 0
        idle_buckets: Dict[str, int] = {}
        self._assign_blocks(0)
        cycle = 0
        while self._blocks_remaining > 0:
            if cycle > max_cycles:
                raise SimulationError(
                    f"kernel {trace.kernel!r} exceeded {max_cycles} cycles"
                )
            self.mem.tick(cycle)
            issued = 0
            for sm in self.sms:
                issued += sm.tick(cycle)
            if issued:
                self.stats.issue_cycles += 1
                issued_cycles += 1
                cycle += 1
                continue
            # Nothing issued: fast-forward to the next possible event.
            next_cycle = self._next_event_after(cycle)
            if next_cycle is None:
                if self._blocks_remaining > 0:
                    raise SimulationError(
                        f"deadlock at cycle {cycle}: no future events but "
                        f"{self._blocks_remaining} blocks unfinished"
                    )
                break
            span = next_cycle - cycle
            bucket = classify_idle(self, cycle)
            idle_buckets[bucket] = idle_buckets.get(bucket, 0) + span
            if tracer is not None:
                tracer.on_stall(cycle, span, bucket)
            if per_warp:
                for warp, reason in warp_stall_reasons(self, cycle):
                    key = f"{trace.kernel}/w{warp.global_index}"
                    stalls = self.stats.warp_stalls.get(key)
                    if stalls is None:
                        stalls = self.stats.warp_stalls[key] = Counter()
                    stalls[reason] += span
            self.stats.idle_cycles += span
            cycle = next_cycle
        self.stats.cycles = cycle
        accounted = issued_cycles + sum(idle_buckets.values())
        if accounted != cycle:
            raise SimulationError(
                f"CPI-stack accounting leak in {trace.kernel!r}: "
                f"{accounted} cycles attributed, {cycle} simulated"
            )
        stack = self.stats.cpi_stack
        kernel_stack = self.stats.cpi_by_kernel.setdefault(trace.kernel, Counter())
        if issued_cycles:
            stack[BUCKET_ISSUED] += issued_cycles
            kernel_stack[BUCKET_ISSUED] += issued_cycles
        for bucket, span in idle_buckets.items():
            stack[bucket] += span
            kernel_stack[bucket] += span
        self.ctx.finalize()
        return cycle

    def _next_event_after(self, cycle: int) -> Optional[int]:
        if self.mem.has_queued_work():
            return cycle + 1
        candidates = []
        mem_next = self.mem.next_event_cycle()
        if mem_next is not None:
            candidates.append(max(mem_next, cycle + 1))
        wake = self._wake
        while wake and wake[0] <= cycle:
            heapq.heappop(wake)
        if wake:
            candidates.append(wake[0])
        return min(candidates) if candidates else None

    # -- memory completion -------------------------------------------------

    def _on_load_complete(self, request: MemRequest, cycle: int) -> None:
        self.sms[request.sm_id].complete_load(request, cycle)
