"""Per-warp timing context."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from .uop import Uop

if TYPE_CHECKING:
    from ..cars.register_stack import WarpRegisterStack

#: Sector address space carved out for per-warp local memory (spills,
#: genuine locals, CARS trap region).  Global data sectors from the
#: emulator are word_addr // 8 and stay far below this base.
LOCAL_SECTOR_BASE = 1 << 40
#: Sector window reserved per warp.
LOCAL_SECTOR_WINDOW = 1 << 16
#: Offsets of the three local sub-regions (in sectors).
SPILL_REGION = 0  # baseline ABI spill stack
LOCAL_REGION = 1 << 12  # genuine local-memory accesses
TRAP_REGION = 1 << 13  # CARS wrap-around trap spills
SWITCH_REGION = 1 << 14  # CARS context-switch save area

#: "Not ready" sentinel for registers with an outstanding load.
NEVER = 1 << 60


class WarpCtx:
    """Timing state of one resident warp."""

    __slots__ = (
        "slot",
        "global_index",
        "records",
        "cursor",
        "uops",
        "reg_ready",
        "next_issue",
        "ready_at",
        "waiting_barrier",
        "done",
        "outstanding_loads",
        "stall_hint",
        "fetch_debt",
        "frame_starts",
        "spill_depth",
        "abi_state",
        "cars",
        "stalled",
        "switched_out",
        "needs_fill",
        "alloc_regs",
        "local_base",
        "block",
    )

    def __init__(self, slot: int, global_index: int, records: List, block) -> None:
        self.slot = slot
        self.global_index = global_index
        self.records = records
        self.cursor = 0
        self.uops: Deque[Uop] = deque()
        self.reg_ready: Dict[int, int] = {}
        self.next_issue = 0
        # Scheduler-maintained lower bound on the next cycle this warp can
        # issue (see the SM module docstring); 0 = "never evaluated yet".
        self.ready_at = 0
        self.waiting_barrier = False
        self.done = False
        self.outstanding_loads = 0
        self.stall_hint = None  # why next_issue is in the future (CPI stack)
        self.fetch_debt = 0.0
        self.frame_starts: List[int] = []  # baseline spill-stack frames
        self.spill_depth = 0  # registers currently on the in-memory stack
        self.abi_state: Any = None  # plugin-ABI per-warp state (rfcache LRU)
        self.cars: Optional[WarpRegisterStack] = None  # set under CARS only
        self.stalled = False  # CARS: waiting for register allocation
        self.switched_out = False  # CARS: state spilled at a barrier
        self.needs_fill = False  # CARS: must refill state when resumed
        self.alloc_regs = 0  # registers held from the SM pool (CARS)
        self.local_base = LOCAL_SECTOR_BASE + global_index * LOCAL_SECTOR_WINDOW
        self.block = block

    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """No expanded uops pending and no records left."""
        return not self.uops and self.cursor >= len(self.records)

    def deps_ready_cycle(self, uop: Uop) -> int:
        """Earliest cycle at which *uop*'s operands are all available."""
        ready = 0
        get = self.reg_ready.get
        for reg in uop.deps:
            t = get(reg, 0)
            if t > ready:
                ready = t
        return ready

    def spill_sectors(self, reg_slot: int):
        """Four 32B sectors covering one warp-wide spilled register."""
        base = self.local_base + SPILL_REGION + 4 * reg_slot
        return (base, base + 1, base + 2, base + 3)

    def local_sectors(self, offset: int):
        base = self.local_base + LOCAL_REGION + 4 * (offset % (1 << 10))
        return (base, base + 1, base + 2, base + 3)

    def trap_sectors(self, reg_slot: int):
        base = self.local_base + TRAP_REGION + 4 * (reg_slot % (1 << 10))
        return (base, base + 1, base + 2, base + 3)

    def switch_sectors(self, reg_slot: int):
        base = self.local_base + SWITCH_REGION + 4 * (reg_slot % (1 << 10))
        return (base, base + 1, base + 2, base + 3)
