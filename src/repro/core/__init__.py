"""SM/GPU timing model, occupancy, and the techniques studied."""

from .backends import BackendInfo, list_backends, register_backend, resolve_backend
from .gpu import GPU
from .occupancy import Occupancy, compute_occupancy
from .vectorized import VectorizedGPU  # registers the "vectorized" backend
from .sm import SM, SimulationError
from .techniques import (
    ALL_HIT,
    BASELINE,
    CARS,
    CARS_HIGH,
    CARS_LOW,
    IDEAL_VW,
    L1_HUGE,
    LTO,
    BaselineContext,
    CarsContext,
    LaunchContext,
    Technique,
    cars_nxlow,
    swl,
)
from .uop import Uop, UopKind
from .warp import WarpCtx

__all__ = [
    "BackendInfo",
    "GPU",
    "VectorizedGPU",
    "list_backends",
    "register_backend",
    "resolve_backend",
    "Occupancy",
    "compute_occupancy",
    "SM",
    "SimulationError",
    "Technique",
    "LaunchContext",
    "BaselineContext",
    "CarsContext",
    "BASELINE",
    "IDEAL_VW",
    "L1_HUGE",
    "ALL_HIT",
    "LTO",
    "CARS",
    "CARS_LOW",
    "CARS_HIGH",
    "swl",
    "cars_nxlow",
    "Uop",
    "UopKind",
    "WarpCtx",
]
