"""SM/GPU timing model, occupancy, and the techniques studied."""

from .gpu import GPU
from .occupancy import Occupancy, compute_occupancy
from .sm import SM, SimulationError
from .techniques import (
    ALL_HIT,
    BASELINE,
    CARS,
    CARS_HIGH,
    CARS_LOW,
    IDEAL_VW,
    L1_HUGE,
    LTO,
    BaselineContext,
    CarsContext,
    LaunchContext,
    Technique,
    cars_nxlow,
    swl,
)
from .uop import Uop, UopKind
from .warp import WarpCtx

__all__ = [
    "GPU",
    "Occupancy",
    "compute_occupancy",
    "SM",
    "SimulationError",
    "Technique",
    "LaunchContext",
    "BaselineContext",
    "CarsContext",
    "BASELINE",
    "IDEAL_VW",
    "L1_HUGE",
    "ALL_HIT",
    "LTO",
    "CARS",
    "CARS_LOW",
    "CARS_HIGH",
    "swl",
    "cars_nxlow",
    "Uop",
    "UopKind",
    "WarpCtx",
]
