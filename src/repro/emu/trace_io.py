"""Trace serialization: save/load dynamic traces as files.

Accel-Sim's methodology is trace-*file* driven: NVBit instruments a real
run once, and the simulator replays the trace archive many times.  This
module provides the same workflow — emulate once with
:class:`~repro.emu.machine.Emulator`, save the :class:`KernelTrace` to a
gzipped JSON-lines archive, and replay it in later processes without
re-running the emulator::

    save_trace(trace, "pta_k1.trace.gz")
    trace = load_trace("pta_k1.trace.gz")

Format: line 1 is a JSON header (magic, version, launch metadata); every
following line is one warp's records as a JSON array of compact tuples.
The format is versioned and validated on load.
"""

from __future__ import annotations

import gzip
import json
from typing import List

from .trace import BlockTrace, KernelTrace, TraceKind, TraceRecord, WarpTrace

MAGIC = "repro-trace"
VERSION = 1


class TraceFormatError(Exception):
    """Raised when a trace file is malformed or from a different version."""


def _encode_record(record: TraceRecord) -> list:
    return [
        int(record.kind),
        list(record.dst),
        list(record.srcs),
        list(record.sectors),
        record.local_offset,
        record.reg_count,
        record.callee,
        record.fru,
        record.push_count,
        1 if record.frame_release else 0,
        record.active,
    ]


def _decode_record(raw: list) -> TraceRecord:
    try:
        (kind, dst, srcs, sectors, local_offset, reg_count, callee, fru,
         push_count, frame_release, active) = raw
        return TraceRecord(
            kind=TraceKind(kind),
            dst=tuple(dst),
            srcs=tuple(srcs),
            sectors=tuple(sectors),
            local_offset=local_offset,
            reg_count=reg_count,
            callee=callee,
            fru=fru,
            push_count=push_count,
            frame_release=bool(frame_release),
            active=active,
        )
    except (ValueError, TypeError) as exc:
        raise TraceFormatError(f"bad trace record: {exc}") from exc


def save_trace(trace: KernelTrace, path: str) -> None:
    """Write *trace* to a gzipped JSON-lines archive at *path*."""
    header = {
        "magic": MAGIC,
        "version": VERSION,
        "kernel": trace.kernel,
        "threads_per_block": trace.threads_per_block,
        "regs_per_warp_baseline": trace.regs_per_warp_baseline,
        "shared_mem_bytes": trace.shared_mem_bytes,
        "code_bytes": trace.code_bytes,
        "blocks": [
            {"block_id": block.block_id, "warps": [w.warp_id for w in block.warps]}
            for block in trace.blocks
        ],
    }
    with gzip.open(path, "wt") as handle:
        handle.write(json.dumps(header) + "\n")
        for block in trace.blocks:
            for warp in block.warps:
                handle.write(
                    json.dumps([_encode_record(r) for r in warp.records],
                               separators=(",", ":"))
                    + "\n"
                )


def load_trace(path: str) -> KernelTrace:
    """Read a trace archive written by :func:`save_trace`."""
    with gzip.open(path, "rt") as handle:
        try:
            header = json.loads(handle.readline())
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"bad trace header: {exc}") from exc
        if header.get("magic") != MAGIC:
            raise TraceFormatError(f"{path!r} is not a repro trace archive")
        if header.get("version") != VERSION:
            raise TraceFormatError(
                f"trace version {header.get('version')} unsupported "
                f"(expected {VERSION})"
            )
        blocks: List[BlockTrace] = []
        for block_meta in header["blocks"]:
            warps = []
            for warp_id in block_meta["warps"]:
                line = handle.readline()
                if not line:
                    raise TraceFormatError("trace archive truncated")
                records = [_decode_record(r) for r in json.loads(line)]
                warps.append(WarpTrace(warp_id, records))
            blocks.append(BlockTrace(block_meta["block_id"], warps))
    return KernelTrace(
        kernel=header["kernel"],
        blocks=blocks,
        threads_per_block=header["threads_per_block"],
        regs_per_warp_baseline=header["regs_per_warp_baseline"],
        shared_mem_bytes=header["shared_mem_bytes"],
        code_bytes=header["code_bytes"],
    )
