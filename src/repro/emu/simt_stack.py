"""SIMT reconvergence stack entries.

The emulator models the hardware structure the paper augments: a per-warp
stack tracking control-flow divergence.  Entries are either reconvergence
scopes (pushed by SSY) or function-call scopes (pushed by CALL) — the
latter carry the 1-bit call marker CARS adds so register frames are only
released when every thread has returned (Section IV-B2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class SimtEntry:
    """One reconvergence-stack entry.

    Attributes:
        is_call: the paper's added call bit (True for CALL scopes).
        mask: lanes that entered this scope.
        done: lanes that finished it (SYNCed, or returned for call scopes).
        reconv_pc: where done lanes reconverge (SSY scopes) / return
            (call scopes; None when the call returns to a CALLI dispatch
            scope instead of a plain pc).
        pending: deferred lane groups: (pc, mask, enter_func).  For plain
            divergence ``enter_func`` is None; for CALLI dispatch scopes it
            names the function each group must still enter.
        ret_func: function to restore on return (call scopes).
        frame_index: index of the register frame this call scope owns.
    """

    __slots__ = (
        "is_call",
        "mask",
        "done",
        "reconv_pc",
        "pending",
        "ret_func",
        "frame_index",
    )

    def __init__(
        self,
        is_call: bool,
        mask: np.ndarray,
        reconv_pc: Optional[int],
        ret_func: Optional[str] = None,
        frame_index: int = -1,
    ) -> None:
        self.is_call = is_call
        self.mask = mask.copy()
        self.done = np.zeros_like(mask)
        self.reconv_pc = reconv_pc
        self.pending: List[Tuple[int, np.ndarray, Optional[str]]] = []
        self.ret_func = ret_func
        self.frame_index = frame_index

    @property
    def all_done(self) -> bool:
        return bool(np.array_equal(self.done, self.mask))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "CALL" if self.is_call else "SSY"
        return (
            f"<{kind} mask={int(self.mask.sum())} done={int(self.done.sum())} "
            f"pending={len(self.pending)} reconv={self.reconv_pc}>"
        )


def make_ssy(mask: np.ndarray, reconv_pc: int) -> SimtEntry:
    """A reconvergence (SSY) scope for the active lanes."""
    return SimtEntry(is_call=False, mask=mask, reconv_pc=reconv_pc)


def make_call(
    mask: np.ndarray,
    ret_pc: Optional[int],
    ret_func: str,
    frame_index: int,
) -> SimtEntry:
    """A function-call scope (carries the paper's call bit)."""
    return SimtEntry(
        is_call=True,
        mask=mask,
        reconv_pc=ret_pc,
        ret_func=ret_func,
        frame_index=frame_index,
    )
