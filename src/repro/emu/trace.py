"""Dynamic trace records produced by the functional emulator.

The emulator plays the role NVBit plays in the paper: it executes each warp
functionally and emits a warp-level dynamic instruction stream.  The timing
model (:mod:`repro.core`) replays these streams under different techniques
(baseline spills/fills, CARS renaming, LTO, ...), so records carry exactly
what timing needs: operand registers for the scoreboard, coalesced memory
sectors for the L1D, and call/return metadata for the register stack.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple


class TraceKind(enum.IntEnum):
    """Dynamic instruction categories the timing model distinguishes."""

    ALU = 0
    FPU = 1
    SFU = 2
    SMEM = 3
    GLOBAL_LD = 4
    GLOBAL_ST = 5
    LOCAL_LD = 6  # genuine (non-spill) local access
    LOCAL_ST = 7
    PUSH = 8  # ABI callee-saved save (spill in baseline, rename in CARS)
    POP = 9  # ABI callee-saved restore (fill in baseline, rename in CARS)
    CALL = 10
    RET = 11
    BRANCH = 12  # SSY/CBRA/BRA/SYNC
    BAR = 13
    EXIT = 14


class TraceRecord:
    """One dynamic warp-level instruction.

    Attributes:
        kind: the :class:`TraceKind`.
        dst: destination architectural registers (scoreboard).
        srcs: source architectural registers (scoreboard).
        sectors: coalesced 32B-sector addresses for global accesses.
        local_offset: static offset for genuine local accesses.
        reg_count: registers saved/restored (PUSH/POP).
        callee: callee name (CALL) or returning function (RET).
        fru: callee's FRU (CALL) / returning function's FRU (RET).
        push_count: callee's callee-saved count (CALL), used by the timing
            model to expand baseline spill traffic.
        frame_release: True on the RET that releases the register frame
            (all threads returned — the paper's SIMT-stack call bit).
        active: number of active lanes.
    """

    __slots__ = (
        "kind",
        "dst",
        "srcs",
        "sectors",
        "local_offset",
        "reg_count",
        "callee",
        "fru",
        "push_count",
        "frame_release",
        "active",
    )

    def __init__(
        self,
        kind: TraceKind,
        dst: Tuple[int, ...] = (),
        srcs: Tuple[int, ...] = (),
        sectors: Tuple[int, ...] = (),
        local_offset: int = 0,
        reg_count: int = 0,
        callee: Optional[str] = None,
        fru: int = 0,
        push_count: int = 0,
        frame_release: bool = False,
        active: int = 0,
    ) -> None:
        self.kind = kind
        self.dst = dst
        self.srcs = srcs
        self.sectors = sectors
        self.local_offset = local_offset
        self.reg_count = reg_count
        self.callee = callee
        self.fru = fru
        self.push_count = push_count
        self.frame_release = frame_release
        self.active = active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.kind is TraceKind.CALL:
            extra = f" -> {self.callee} (fru={self.fru})"
        elif self.kind in (TraceKind.PUSH, TraceKind.POP):
            extra = f" x{self.reg_count}"
        elif self.sectors:
            extra = f" sectors={len(self.sectors)}"
        return f"<{self.kind.name}{extra} active={self.active}>"


class WarpTrace:
    """The full dynamic stream of one warp."""

    __slots__ = ("warp_id", "records")

    def __init__(self, warp_id: int, records: Optional[List[TraceRecord]] = None):
        self.warp_id = warp_id
        self.records = records if records is not None else []

    def __len__(self) -> int:
        return len(self.records)

    def count(self, kind: TraceKind) -> int:
        return sum(1 for r in self.records if r.kind == kind)


class BlockTrace:
    """Traces of all warps in one thread block."""

    __slots__ = ("block_id", "warps")

    def __init__(self, block_id: int, warps: List[WarpTrace]):
        self.block_id = block_id
        self.warps = warps

    @property
    def dynamic_instructions(self) -> int:
        return sum(len(w) for w in self.warps)


class KernelTrace:
    """Traces of one kernel launch plus its static launch metadata."""

    __slots__ = (
        "kernel",
        "blocks",
        "threads_per_block",
        "regs_per_warp_baseline",
        "shared_mem_bytes",
        "code_bytes",
    )

    def __init__(
        self,
        kernel: str,
        blocks: List[BlockTrace],
        threads_per_block: int,
        regs_per_warp_baseline: int,
        shared_mem_bytes: int,
        code_bytes: int,
    ) -> None:
        self.kernel = kernel
        self.blocks = blocks
        self.threads_per_block = threads_per_block
        self.regs_per_warp_baseline = regs_per_warp_baseline
        self.shared_mem_bytes = shared_mem_bytes
        self.code_bytes = code_bytes

    @property
    def dynamic_instructions(self) -> int:
        return sum(b.dynamic_instructions for b in self.blocks)

    def count(self, kind: TraceKind) -> int:
        return sum(w.count(kind) for b in self.blocks for w in b.warps)

    def calls_per_kilo_instruction(self) -> float:
        """The paper's CPKI metric (Table I)."""
        total = self.dynamic_instructions
        if total == 0:
            return 0.0
        return 1000.0 * self.count(TraceKind.CALL) / total

    def max_dynamic_call_depth(self) -> int:
        """Deepest observed dynamic call nesting (Table I call depth)."""
        deepest = 0
        for block in self.blocks:
            for warp in block.warps:
                depth = 0
                for record in warp.records:
                    if record.kind is TraceKind.CALL:
                        depth += 1
                        deepest = max(deepest, depth)
                    elif record.kind is TraceKind.RET and record.frame_release:
                        depth -= 1
        return deepest
