"""Functional SIMT emulator and dynamic-trace generation (the NVBit stage)."""

from .machine import Emulator, EmulationError, WarpState
from .memory import GlobalMemory, SharedMemory, LocalMemory, coalesce_sectors
from .trace import BlockTrace, KernelTrace, TraceKind, TraceRecord, WarpTrace
from .simt_stack import SimtEntry, make_call, make_ssy
from .trace_io import TraceFormatError, load_trace, save_trace

__all__ = [
    "Emulator",
    "EmulationError",
    "WarpState",
    "GlobalMemory",
    "SharedMemory",
    "LocalMemory",
    "coalesce_sectors",
    "BlockTrace",
    "KernelTrace",
    "TraceKind",
    "TraceRecord",
    "WarpTrace",
    "SimtEntry",
    "make_call",
    "make_ssy",
    "TraceFormatError",
    "load_trace",
    "save_trace",
]
