"""Functional memory spaces for the emulator.

Global memory is a sparse, word-addressed (4B words) space backed by numpy
pages.  Uninitialized words read as a deterministic hash of their address,
so data-dependent workloads behave reproducibly without explicit
initialization.  Shared and local memories are small dense arrays.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Words per page of the sparse global memory.
PAGE_WORDS = 4096

#: Words per 32-byte L1D sector (the coalescing granule).
SECTOR_WORDS = 8

_HASH_MULT = np.int64(np.uint64(0x9E3779B97F4A7C15))
_VALUE_MASK = np.int64(0x7FFFFFFF)


def default_fill(addresses: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-random contents for untouched global words."""
    mixed = addresses.astype(np.int64) * _HASH_MULT
    return np.bitwise_and(mixed ^ (mixed >> np.int64(31)), _VALUE_MASK)


class GlobalMemory:
    """Sparse word-addressed global memory shared by all blocks."""

    def __init__(self) -> None:
        self._pages: Dict[int, np.ndarray] = {}

    def _page(self, page_id: int) -> np.ndarray:
        page = self._pages.get(page_id)
        if page is None:
            base = np.arange(
                page_id * PAGE_WORDS, (page_id + 1) * PAGE_WORDS, dtype=np.int64
            )
            page = default_fill(base)
            self._pages[page_id] = page
        return page

    def load(self, addresses: np.ndarray) -> np.ndarray:
        """Gather words at *addresses* (int64 array, non-negative)."""
        if addresses.size and int(addresses.min()) < 0:
            raise ValueError("negative global address")
        out = np.empty(addresses.shape, dtype=np.int64)
        pages = addresses // PAGE_WORDS
        for page_id in np.unique(pages):
            mask = pages == page_id
            offsets = addresses[mask] - page_id * PAGE_WORDS
            out[mask] = self._page(int(page_id))[offsets]
        return out

    def store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Scatter *values* to *addresses*."""
        if addresses.size and int(addresses.min()) < 0:
            raise ValueError("negative global address")
        pages = addresses // PAGE_WORDS
        for page_id in np.unique(pages):
            mask = pages == page_id
            offsets = addresses[mask] - page_id * PAGE_WORDS
            self._page(int(page_id))[offsets] = values[mask]

    def equal_state(self, other: "GlobalMemory") -> bool:
        """Architectural equality: every word reads the same in both.

        A page materialized by reads alone still holds the deterministic
        default fill, so presence in ``_pages`` is not state — each page
        in either memory is compared against the other's page *contents*
        (materializing the default where absent).
        """
        for page_id in set(self._pages) | set(other._pages):
            if not np.array_equal(self._page(page_id), other._page(page_id)):
                return False
        return True

    def touched_pages(self) -> int:
        """Number of materialized pages (differential-test diagnostics)."""
        return len(self._pages)

    def write_array(self, base: int, values: np.ndarray) -> None:
        """Convenience: write a dense array starting at word *base*."""
        addresses = np.arange(base, base + values.size, dtype=np.int64)
        self.store(addresses, values.astype(np.int64))

    def read_array(self, base: int, count: int) -> np.ndarray:
        """Convenience: read *count* words starting at word *base*."""
        addresses = np.arange(base, base + count, dtype=np.int64)
        return self.load(addresses)


class SharedMemory:
    """Per-block shared memory (word-addressed, wraps within its size)."""

    def __init__(self, size_bytes: int) -> None:
        words = max(1, size_bytes // 4)
        self._words = words
        self._data = np.zeros(words, dtype=np.int64)

    def load(self, addresses: np.ndarray) -> np.ndarray:
        return self._data[np.mod(addresses, self._words)]

    def store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        self._data[np.mod(addresses, self._words)] = values


class LocalMemory:
    """Per-warp local scratch for genuine (non-spill) LDL/STL accesses.

    Each lane has its own copy of every offset (local memory is
    thread-private and interleaved on real hardware).
    """

    def __init__(self, words: int = 1024, lanes: int = 32) -> None:
        self._words = words
        self._data = np.zeros((words, lanes), dtype=np.int64)

    def load(self, offset: int) -> np.ndarray:
        return self._data[offset % self._words].copy()

    def store(self, offset: int, values: np.ndarray, mask: np.ndarray) -> None:
        row = self._data[offset % self._words]
        row[mask] = values[mask]


def coalesce_sectors(word_addresses: np.ndarray) -> tuple:
    """Coalesce active-lane word addresses into unique 32B sector ids."""
    if word_addresses.size == 0:
        return ()
    return tuple(int(s) for s in np.unique(word_addresses // SECTOR_WORDS))
