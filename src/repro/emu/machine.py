"""Functional SIMT emulator.

Executes a linked module warp by warp (32 lanes of int64 state), handling
structured divergence through the SIMT reconvergence stack, the full
function-call ABI (PUSH/POP of callee-saved blocks, divergent returns,
indirect calls that fan a warp out to several callees), barriers, and the
three memory spaces.  Its output is the dynamic :class:`~repro.emu.trace`
stream that the timing model replays — the role NVBit traces play in the
paper's methodology (Section V).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..isa.instructions import WARP_SIZE, MAX_REGS, NUM_PREDS
from ..isa.opcodes import CmpOp, Opcode
from ..isa.program import Function, Module
from ..frontend import abi
from .memory import GlobalMemory, LocalMemory, SharedMemory, coalesce_sectors
from .simt_stack import SimtEntry, make_call, make_ssy
from .trace import BlockTrace, KernelTrace, TraceKind, TraceRecord, WarpTrace


class EmulationError(Exception):
    """Raised when a program misbehaves at emulation time."""


_TRACE_KIND_BY_OPCLASS = {
    "alu": TraceKind.ALU,
    "fpu": TraceKind.FPU,
    "sfu": TraceKind.SFU,
}

_MUFU_MULT = np.int64(0x9E3779B1)
_SHIFT_MASK = np.int64(63)


class _Frame:
    """One function activation: saved callee-saved register values."""

    __slots__ = ("func_name", "saved")

    def __init__(self, func_name: str) -> None:
        self.func_name = func_name
        # Each entry: (start, count, values[count, WARP_SIZE])
        self.saved: List[Tuple[int, int, np.ndarray]] = []


class WarpState:
    """Architectural state of one warp during emulation."""

    def __init__(self, warp_id: int, block_id: int, module: Module, kernel: Function,
                 threads_per_block: int, grid_blocks: int) -> None:
        self.warp_id = warp_id
        self.block_id = block_id
        self.module = module
        self.func = kernel
        self.pc = 0
        self.regs = np.zeros((MAX_REGS, WARP_SIZE), dtype=np.int64)
        self.preds = np.zeros((NUM_PREDS, WARP_SIZE), dtype=bool)
        self.active = np.ones(WARP_SIZE, dtype=bool)
        self.exited = np.zeros(WARP_SIZE, dtype=bool)
        self.simt: List[SimtEntry] = []
        self.frames: List[_Frame] = []
        self.local = LocalMemory()
        self.trace = WarpTrace(warp_id)
        self.done = False
        self.executed = 0
        lanes = np.arange(WARP_SIZE, dtype=np.int64)
        self.regs[abi.REG_TID] = warp_id * WARP_SIZE + lanes
        self.regs[abi.REG_BID] = block_id
        self.regs[abi.REG_NTID] = threads_per_block
        self.regs[abi.REG_NCTAID] = grid_blocks

    @property
    def call_depth(self) -> int:
        return len(self.frames)


class Emulator:
    """Drives warps of a kernel launch and collects their traces."""

    def __init__(
        self,
        module: Module,
        gmem: Optional[GlobalMemory] = None,
        max_warp_instructions: int = 2_000_000,
        max_call_depth: int = 512,
    ) -> None:
        self.module = module
        self.gmem = gmem if gmem is not None else GlobalMemory()
        self.max_warp_instructions = max_warp_instructions
        self.max_call_depth = max_call_depth

    # ------------------------------------------------------------------
    # Launch API
    # ------------------------------------------------------------------

    def launch(
        self,
        kernel_name: str,
        grid_blocks: int,
        threads_per_block: int,
        params: Sequence[int] = (),
    ) -> KernelTrace:
        """Run a kernel over the whole grid and return its trace."""
        kernel = self.module.kernel(kernel_name)
        if threads_per_block % WARP_SIZE != 0:
            raise EmulationError("threads_per_block must be a multiple of 32")
        if len(params) > abi.MAX_REG_ARGS:
            raise EmulationError("too many kernel parameters")
        blocks = [
            self._run_block(kernel, block_id, threads_per_block, grid_blocks, params)
            for block_id in range(grid_blocks)
        ]
        return KernelTrace(
            kernel=kernel_name,
            blocks=blocks,
            threads_per_block=threads_per_block,
            regs_per_warp_baseline=self.module.worst_case_regs.get(
                kernel_name, kernel.num_regs
            ),
            shared_mem_bytes=kernel.shared_mem_bytes,
            code_bytes=self.module.code_bytes,
        )

    # ------------------------------------------------------------------
    # Block / warp driving
    # ------------------------------------------------------------------

    def _run_block(
        self,
        kernel: Function,
        block_id: int,
        threads_per_block: int,
        grid_blocks: int,
        params: Sequence[int],
    ) -> BlockTrace:
        num_warps = threads_per_block // WARP_SIZE
        shared = SharedMemory(max(kernel.shared_mem_bytes, 4))
        warps = [
            WarpState(w, block_id, self.module, kernel, threads_per_block, grid_blocks)
            for w in range(num_warps)
        ]
        for warp in warps:
            for i, value in enumerate(params):
                warp.regs[abi.ARG_REG_BASE + i] = value

        # Run every warp to its next barrier (or completion), then release.
        while True:
            progressed = False
            at_barrier = 0
            for warp in warps:
                if warp.done:
                    continue
                status = self._run_warp(warp, shared)
                progressed = True
                if status == "bar":
                    at_barrier += 1
            live = sum(1 for w in warps if not w.done)
            if live == 0:
                break
            if at_barrier != live:
                raise EmulationError(
                    f"block {block_id}: barrier divergence "
                    f"({at_barrier}/{live} warps at the barrier)"
                )
            if not progressed:  # pragma: no cover - defensive
                raise EmulationError(f"block {block_id}: no progress")
        return BlockTrace(block_id, [w.trace for w in warps])

    def _run_warp(self, warp: WarpState, shared: SharedMemory) -> str:
        """Execute until the warp hits a barrier or finishes."""
        while not warp.done:
            if warp.executed >= self.max_warp_instructions:
                raise EmulationError(
                    f"warp {warp.warp_id}: exceeded "
                    f"{self.max_warp_instructions} dynamic instructions"
                )
            inst = warp.func.instructions[warp.pc]
            warp.executed += 1
            if inst.op is Opcode.BAR:
                self._record(warp, TraceRecord(TraceKind.BAR, active=self._nactive(warp)))
                warp.pc += 1
                return "bar"
            self._step(warp, inst, shared)
        return "done"

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _nactive(self, warp: WarpState) -> int:
        return int(warp.active.sum())

    def _record(self, warp: WarpState, record: TraceRecord) -> None:
        warp.trace.records.append(record)

    def _write(self, warp: WarpState, reg: int, values: np.ndarray) -> None:
        np.copyto(warp.regs[reg], values, where=warp.active)

    def _step(self, warp: WarpState, inst, shared: SharedMemory) -> None:
        op = inst.op
        handler = _HANDLERS.get(op)
        if handler is None:
            raise EmulationError(f"unhandled opcode {op}")
        handler(self, warp, inst, shared)

    # --- ALU family ---

    def _exec_alu(self, warp: WarpState, inst, shared) -> None:
        regs = warp.regs
        op = inst.op
        s = inst.srcs
        if op is Opcode.MOV:
            result = regs[s[0]]
        elif op is Opcode.MOVI:
            result = np.full(WARP_SIZE, inst.imm, dtype=np.int64)
        elif op is Opcode.IADD or op is Opcode.FADD:
            result = regs[s[0]] + regs[s[1]]
        elif op is Opcode.ISUB:
            result = regs[s[0]] - regs[s[1]]
        elif op is Opcode.IMUL or op is Opcode.FMUL:
            result = regs[s[0]] * regs[s[1]]
        elif op is Opcode.IMAD or op is Opcode.FFMA:
            result = regs[s[0]] * regs[s[1]] + regs[s[2]]
        elif op is Opcode.IMIN:
            result = np.minimum(regs[s[0]], regs[s[1]])
        elif op is Opcode.IMAX:
            result = np.maximum(regs[s[0]], regs[s[1]])
        elif op is Opcode.AND:
            result = regs[s[0]] & regs[s[1]]
        elif op is Opcode.OR:
            result = regs[s[0]] | regs[s[1]]
        elif op is Opcode.XOR:
            result = regs[s[0]] ^ regs[s[1]]
        elif op is Opcode.SHL:
            result = regs[s[0]] << (regs[s[1]] & _SHIFT_MASK)
        elif op is Opcode.SHR:
            result = regs[s[0]] >> (regs[s[1]] & _SHIFT_MASK)
        elif op is Opcode.MUFU:
            x = regs[s[0]]
            result = ((x ^ (x >> np.int64(7))) * _MUFU_MULT) & np.int64(0x7FFFFFFF)
        elif op is Opcode.SEL:
            result = np.where(warp.preds[inst.psrc], regs[s[0]], regs[s[1]])
        else:  # pragma: no cover - defensive
            raise EmulationError(f"not an ALU op: {op}")
        self._write(warp, inst.dst[0], result)
        kind = _TRACE_KIND_BY_OPCLASS.get(inst.op_class.value, TraceKind.ALU)
        self._record(
            warp,
            TraceRecord(kind, dst=inst.dst, srcs=inst.srcs, active=self._nactive(warp)),
        )
        warp.pc += 1

    def _exec_setp(self, warp: WarpState, inst, shared) -> None:
        a = warp.regs[inst.srcs[0]]
        b = warp.regs[inst.srcs[1]]
        cmp_op = CmpOp(inst.imm)
        if cmp_op is CmpOp.EQ:
            result = a == b
        elif cmp_op is CmpOp.NE:
            result = a != b
        elif cmp_op is CmpOp.LT:
            result = a < b
        elif cmp_op is CmpOp.LE:
            result = a <= b
        elif cmp_op is CmpOp.GT:
            result = a > b
        else:
            result = a >= b
        np.copyto(warp.preds[inst.pdst], result, where=warp.active)
        self._record(
            warp,
            TraceRecord(TraceKind.ALU, srcs=inst.srcs, active=self._nactive(warp)),
        )
        warp.pc += 1

    # --- memory ---

    def _exec_ldg(self, warp: WarpState, inst, shared) -> None:
        addrs = warp.regs[inst.srcs[0]] + np.int64(inst.imm)
        active_addrs = addrs[warp.active]
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        if active_addrs.size:
            values[warp.active] = self.gmem.load(active_addrs)
        self._write(warp, inst.dst[0], values)
        self._record(
            warp,
            TraceRecord(
                TraceKind.GLOBAL_LD,
                dst=inst.dst,
                srcs=inst.srcs,
                sectors=coalesce_sectors(active_addrs),
                active=self._nactive(warp),
            ),
        )
        warp.pc += 1

    def _exec_stg(self, warp: WarpState, inst, shared) -> None:
        addrs = warp.regs[inst.srcs[0]] + np.int64(inst.imm)
        values = warp.regs[inst.srcs[1]]
        active_addrs = addrs[warp.active]
        if active_addrs.size:
            self.gmem.store(active_addrs, values[warp.active])
        self._record(
            warp,
            TraceRecord(
                TraceKind.GLOBAL_ST,
                srcs=inst.srcs,
                sectors=coalesce_sectors(active_addrs),
                active=self._nactive(warp),
            ),
        )
        warp.pc += 1

    def _exec_lds(self, warp: WarpState, inst, shared) -> None:
        addrs = warp.regs[inst.srcs[0]] + np.int64(inst.imm)
        values = np.zeros(WARP_SIZE, dtype=np.int64)
        if warp.active.any():
            values[warp.active] = shared.load(addrs[warp.active])
        self._write(warp, inst.dst[0], values)
        self._record(
            warp,
            TraceRecord(TraceKind.SMEM, dst=inst.dst, srcs=inst.srcs,
                        active=self._nactive(warp)),
        )
        warp.pc += 1

    def _exec_sts(self, warp: WarpState, inst, shared) -> None:
        addrs = warp.regs[inst.srcs[0]] + np.int64(inst.imm)
        values = warp.regs[inst.srcs[1]]
        if warp.active.any():
            shared.store(addrs[warp.active], values[warp.active])
        self._record(
            warp,
            TraceRecord(TraceKind.SMEM, srcs=inst.srcs, active=self._nactive(warp)),
        )
        warp.pc += 1

    def _exec_ldl(self, warp: WarpState, inst, shared) -> None:
        values = warp.local.load(inst.imm)
        self._write(warp, inst.dst[0], values)
        self._record(
            warp,
            TraceRecord(
                TraceKind.LOCAL_LD,
                dst=inst.dst,
                local_offset=inst.imm,
                active=self._nactive(warp),
            ),
        )
        warp.pc += 1

    def _exec_stl(self, warp: WarpState, inst, shared) -> None:
        warp.local.store(inst.imm, warp.regs[inst.srcs[0]], warp.active)
        self._record(
            warp,
            TraceRecord(
                TraceKind.LOCAL_ST,
                srcs=inst.srcs,
                local_offset=inst.imm,
                active=self._nactive(warp),
            ),
        )
        warp.pc += 1

    # --- register stack (ABI save/restore) ---

    def _exec_push(self, warp: WarpState, inst, shared) -> None:
        start, count = inst.push_regs
        if not warp.frames:
            raise EmulationError(f"{warp.func.name}: PUSH outside any frame")
        warp.frames[-1].saved.append(
            (start, count, warp.regs[start : start + count].copy())
        )
        regs = tuple(range(start, start + count))
        self._record(
            warp,
            TraceRecord(
                TraceKind.PUSH, srcs=regs, reg_count=count,
                active=self._nactive(warp),
            ),
        )
        warp.pc += 1

    def _exec_pop(self, warp: WarpState, inst, shared) -> None:
        start, count = inst.push_regs
        if not warp.frames:
            raise EmulationError(f"{warp.func.name}: POP outside any frame")
        frame = warp.frames[-1]
        for s_start, s_count, values in reversed(frame.saved):
            if s_start == start and s_count == count:
                # Masked, non-destructive restore: lanes still inside the
                # function (divergent early return) keep their live values.
                for i in range(count):
                    np.copyto(warp.regs[start + i], values[i], where=warp.active)
                break
        else:
            raise EmulationError(
                f"{warp.func.name}: POP R{start}x{count} with no matching PUSH"
            )
        regs = tuple(range(start, start + count))
        self._record(
            warp,
            TraceRecord(
                TraceKind.POP, dst=regs, reg_count=count,
                active=self._nactive(warp),
            ),
        )
        warp.pc += 1

    # --- calls / returns ---

    def _enter_function(
        self, warp: WarpState, target: str, ret_pc: Optional[int], to_dispatch: bool
    ) -> None:
        if warp.call_depth >= self.max_call_depth:
            raise EmulationError(
                f"call depth exceeded {self.max_call_depth} "
                f"(unbounded recursion in {warp.func.name}?)"
            )
        callee = self.module.function(target)
        warp.frames.append(_Frame(target))
        entry = make_call(
            warp.active,
            None if to_dispatch else ret_pc,
            ret_func=warp.func.name,
            frame_index=len(warp.frames) - 1,
        )
        warp.simt.append(entry)
        saved = callee.callee_saved[1] if callee.callee_saved else 0
        self._record(
            warp,
            TraceRecord(
                TraceKind.CALL,
                callee=target,
                fru=callee.fru,
                push_count=saved,
                active=self._nactive(warp),
            ),
        )
        warp.func = callee
        warp.pc = 0

    def _exec_call(self, warp: WarpState, inst, shared) -> None:
        self._enter_function(warp, inst.target, warp.pc + 1, to_dispatch=False)

    def _exec_calli(self, warp: WarpState, inst, shared) -> None:
        targets = inst.call_targets
        sel = warp.regs[inst.srcs[0]] % len(targets)
        active_sel = sel[warp.active]
        unique = np.unique(active_sel)
        if unique.size == 1:
            self._enter_function(
                warp, targets[int(unique[0])], warp.pc + 1, to_dispatch=False
            )
            return
        # Threads of the same warp call different functions: serialize the
        # groups through a dispatch scope (paper Section III-C case 3).
        dispatch = make_ssy(warp.active, warp.pc + 1)
        groups = []
        for idx in unique:
            mask = warp.active & (sel == idx)
            groups.append((int(idx), mask))
        for idx, mask in groups[1:]:
            dispatch.pending.append((0, mask, targets[idx]))
        warp.simt.append(dispatch)
        first_idx, first_mask = groups[0]
        warp.active = first_mask.copy()
        self._enter_function(warp, targets[first_idx], None, to_dispatch=True)

    def _exec_ret(self, warp: WarpState, inst, shared) -> None:
        entry = self._innermost_call(warp)
        entry.done = entry.done | warp.active
        release = entry.all_done
        self._record(
            warp,
            TraceRecord(
                TraceKind.RET,
                callee=warp.func.name,
                fru=warp.func.fru,
                frame_release=release,
                active=self._nactive(warp),
            ),
        )
        warp.active = np.zeros(WARP_SIZE, dtype=bool)
        self._advance(warp)

    def _innermost_call(self, warp: WarpState) -> SimtEntry:
        for entry in reversed(warp.simt):
            if entry.is_call:
                return entry
        raise EmulationError(f"{warp.func.name}: RET with no call scope")

    def _exec_exit(self, warp: WarpState, inst, shared) -> None:
        self._record(warp, TraceRecord(TraceKind.EXIT, active=self._nactive(warp)))
        warp.exited |= warp.active
        warp.active = np.zeros(WARP_SIZE, dtype=bool)
        self._advance(warp)

    # --- structured divergence ---

    def _exec_ssy(self, warp: WarpState, inst, shared) -> None:
        warp.simt.append(make_ssy(warp.active, warp.func.label_index(inst.target)))
        self._record(warp, TraceRecord(TraceKind.BRANCH, active=self._nactive(warp)))
        warp.pc += 1

    def _exec_bra(self, warp: WarpState, inst, shared) -> None:
        self._record(warp, TraceRecord(TraceKind.BRANCH, active=self._nactive(warp)))
        warp.pc = warp.func.label_index(inst.target)

    def _exec_cbra(self, warp: WarpState, inst, shared) -> None:
        pred = warp.preds[inst.psrc]
        taken = warp.active & pred
        not_taken = warp.active & ~pred
        self._record(
            warp, TraceRecord(TraceKind.BRANCH, active=self._nactive(warp))
        )
        target = warp.func.label_index(inst.target)
        if not taken.any():
            warp.pc += 1
            return
        if not not_taken.any():
            warp.pc = target
            return
        scope = self._innermost_ssy(warp)
        scope.pending.append((warp.pc + 1, not_taken.copy(), None))
        warp.active = taken.copy()
        warp.pc = target

    def _innermost_ssy(self, warp: WarpState) -> SimtEntry:
        # The compiler emits SSY before any potentially-divergent branch, so
        # the top of the SIMT stack must be a reconvergence scope here.
        if warp.simt and not warp.simt[-1].is_call:
            return warp.simt[-1]
        raise EmulationError(
            f"{warp.func.name}: divergent branch outside an SSY scope"
        )

    def _exec_sync(self, warp: WarpState, inst, shared) -> None:
        self._record(warp, TraceRecord(TraceKind.BRANCH, active=self._nactive(warp)))
        if not warp.simt or warp.simt[-1].is_call:
            raise EmulationError(f"{warp.func.name}: SYNC outside an SSY scope")
        entry = warp.simt[-1]
        entry.done = entry.done | warp.active
        warp.active = np.zeros(WARP_SIZE, dtype=bool)
        self._advance(warp)

    def _exec_nop(self, warp: WarpState, inst, shared) -> None:
        self._record(warp, TraceRecord(TraceKind.ALU, active=self._nactive(warp)))
        warp.pc += 1

    # --- the unwinder ---

    def _advance(self, warp: WarpState) -> None:
        """Resume the next runnable lane group after lanes left the scope."""
        while warp.simt:
            entry = warp.simt[-1]
            if not entry.is_call:
                if entry.pending:
                    pc, mask, enter_func = entry.pending.pop()
                    warp.active = mask.copy()
                    if enter_func is not None:
                        self._enter_function(warp, enter_func, None, to_dispatch=True)
                    else:
                        warp.pc = pc
                    return
                if entry.done.any():
                    warp.active = entry.done.copy()
                    warp.pc = entry.reconv_pc
                    warp.simt.pop()
                    return
                warp.simt.pop()
                continue
            # Call scope: every lane that entered must have returned.
            if not entry.all_done:  # pragma: no cover - defensive
                raise EmulationError(
                    f"{warp.func.name}: unwinding a call scope with "
                    f"lanes still inside"
                )
            warp.frames.pop()
            warp.func = self.module.function(entry.ret_func)
            warp.simt.pop()
            if entry.reconv_pc is None:
                # Return to a CALLI dispatch scope: credit the lanes and
                # let the loop pick the next group (or reconverge).
                if not warp.simt or warp.simt[-1].is_call:
                    raise EmulationError("dispatch scope missing on return")
                warp.simt[-1].done = warp.simt[-1].done | entry.mask
                continue
            warp.active = entry.mask.copy()
            warp.pc = entry.reconv_pc
            return
        # Stack empty: the warp is finished once every lane has exited.
        warp.done = True
        if not warp.exited.all():
            raise EmulationError(
                f"warp {warp.warp_id}: finished with lanes that never exited"
            )


_HANDLERS = {
    Opcode.MOV: Emulator._exec_alu,
    Opcode.MOVI: Emulator._exec_alu,
    Opcode.IADD: Emulator._exec_alu,
    Opcode.ISUB: Emulator._exec_alu,
    Opcode.IMUL: Emulator._exec_alu,
    Opcode.IMAD: Emulator._exec_alu,
    Opcode.IMIN: Emulator._exec_alu,
    Opcode.IMAX: Emulator._exec_alu,
    Opcode.AND: Emulator._exec_alu,
    Opcode.OR: Emulator._exec_alu,
    Opcode.XOR: Emulator._exec_alu,
    Opcode.SHL: Emulator._exec_alu,
    Opcode.SHR: Emulator._exec_alu,
    Opcode.SEL: Emulator._exec_alu,
    Opcode.FADD: Emulator._exec_alu,
    Opcode.FMUL: Emulator._exec_alu,
    Opcode.FFMA: Emulator._exec_alu,
    Opcode.MUFU: Emulator._exec_alu,
    Opcode.SETP: Emulator._exec_setp,
    Opcode.LDG: Emulator._exec_ldg,
    Opcode.STG: Emulator._exec_stg,
    Opcode.LDS: Emulator._exec_lds,
    Opcode.STS: Emulator._exec_sts,
    Opcode.LDL: Emulator._exec_ldl,
    Opcode.STL: Emulator._exec_stl,
    Opcode.PUSH: Emulator._exec_push,
    Opcode.POP: Emulator._exec_pop,
    Opcode.CALL: Emulator._exec_call,
    Opcode.CALLI: Emulator._exec_calli,
    Opcode.RET: Emulator._exec_ret,
    Opcode.EXIT: Emulator._exec_exit,
    Opcode.SSY: Emulator._exec_ssy,
    Opcode.BRA: Emulator._exec_bra,
    Opcode.CBRA: Emulator._exec_cbra,
    Opcode.SYNC: Emulator._exec_sync,
    Opcode.NOP: Emulator._exec_nop,
}
