"""Bounded event tracer: structured per-issue / per-stall records.

The tracer is the observability layer's microscope: where the CPI stack
says *how many* cycles went to a cause, the tracer says *which warp, at
which trace position, on which cycle*.  Events live in a ring buffer
(``collections.deque(maxlen=...)``) so tracing an arbitrarily long run
keeps the most recent ``limit`` events at O(1) per event and bounded
memory; ``write_jsonl`` dumps them as one JSON object per line.

When tracing is off the simulator holds no tracer at all (``None``), so
the disabled cost is a single attribute test on the issue path.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, IO, List, Optional, Tuple, Union

#: Default ring capacity (events, not bytes).
DEFAULT_TRACE_LIMIT = 65536

# Compact in-ring layouts (tuples, expanded to dicts only on export):
#   issue: (cycle, kernel, sm, warp, pc, uop)
#   stall: (cycle, kernel, span, cause)
_ISSUE = 0
_STALL = 1


class EventTracer:
    """Ring buffer of issue/stall events for one simulated run."""

    __slots__ = ("limit", "_ring", "kernel", "dropped")

    def __init__(self, limit: int = DEFAULT_TRACE_LIMIT) -> None:
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self._ring: Deque[Tuple] = deque(maxlen=limit)
        self.kernel = ""
        self.dropped = 0  # events pushed out of the ring

    def bind_kernel(self, kernel: str) -> None:
        """Tag subsequent events with the launching kernel's name."""
        self.kernel = kernel

    # -- recording (hot path) -------------------------------------------

    def on_issue(self, cycle: int, sm_id: int, warp_id: int, pc: int,
                 uop_mix: str) -> None:
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append((_ISSUE, cycle, self.kernel, sm_id, warp_id, pc, uop_mix))

    def on_stall(self, cycle: int, span: int, cause: str) -> None:
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append((_STALL, cycle, self.kernel, span, cause))

    # -- export ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[Dict[str, Any]]:
        """Events as JSON-ready dicts, oldest first."""
        out: List[Dict[str, Any]] = []
        for event in self._ring:
            if event[0] == _ISSUE:
                _, cycle, kernel, sm_id, warp_id, pc, uop_mix = event
                out.append({
                    "type": "issue",
                    "cycle": cycle,
                    "kernel": kernel,
                    "sm": sm_id,
                    "warp": warp_id,
                    "pc": pc,
                    "uop": uop_mix,
                })
            else:
                _, cycle, kernel, span, cause = event
                out.append({
                    "type": "stall",
                    "cycle": cycle,
                    "kernel": kernel,
                    "span": span,
                    "cause": cause,
                })
        return out

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one JSON object per line; returns the event count."""
        records = self.records()
        if hasattr(target, "write"):
            for record in records:
                target.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            with open(target, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a trace written by :meth:`EventTracer.write_jsonl`."""
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class ObsSession:
    """Observability configuration + state for one simulated run.

    Passed to :func:`repro.harness._runner.run_workload` (and from there to
    every :class:`~repro.core.gpu.GPU`); ``None`` — the default everywhere
    — means fully disabled: no tracer object exists and the per-warp
    accumulation never runs, so the timing core's hot path only ever pays
    an attribute-is-None test.
    """

    __slots__ = ("tracer", "per_warp")

    def __init__(
        self,
        trace: bool = False,
        trace_limit: Optional[int] = None,
        per_warp: bool = False,
    ) -> None:
        limit = DEFAULT_TRACE_LIMIT if trace_limit is None else trace_limit
        self.tracer: Optional[EventTracer] = (
            EventTracer(limit) if trace else None
        )
        self.per_warp = per_warp
