"""Cycle-accounting observability (`repro.obs`).

Two cooperating facilities over the timing core:

* **CPI-stack accounting** (:mod:`repro.obs.cpi`) — always on: every
  simulated cycle lands in exactly one stall/issue bucket, accumulated
  per kernel into :class:`~repro.metrics.counters.SimStats` with the
  conservation invariant ``sum(buckets) == cycles``.
* **Event tracing** (:mod:`repro.obs.tracer`) — opt-in: a bounded ring
  buffer of per-issue and per-stall records, exported as JSONL by
  ``repro profile --trace out.jsonl``.

See ``docs/architecture.md`` §9 for bucket semantics and the trace schema.
"""

from .cpi import (
    BUCKET_BARRIER,
    BUCKET_CARS_TRAP,
    BUCKET_EMPTY,
    BUCKET_FETCH,
    BUCKET_ISSUED,
    BUCKET_L1_PORT,
    BUCKET_L2_DRAM,
    BUCKET_MSHR,
    BUCKET_REG_ALLOC,
    BUCKET_SCOREBOARD,
    BUCKET_SIMT,
    CPI_BUCKETS,
    MEM_BUCKETS,
    classify_idle,
    cpi_shares,
    ordered_buckets,
    warp_stall_reasons,
)
from .objective import (
    OBJECTIVE_METRIC,
    cpi_features,
    feature_delta,
    objective,
    top_movers,
)
from .tracer import DEFAULT_TRACE_LIMIT, EventTracer, ObsSession, read_jsonl

__all__ = [
    "BUCKET_BARRIER",
    "BUCKET_CARS_TRAP",
    "BUCKET_EMPTY",
    "BUCKET_FETCH",
    "BUCKET_ISSUED",
    "BUCKET_L1_PORT",
    "BUCKET_L2_DRAM",
    "BUCKET_MSHR",
    "BUCKET_REG_ALLOC",
    "BUCKET_SCOREBOARD",
    "BUCKET_SIMT",
    "CPI_BUCKETS",
    "MEM_BUCKETS",
    "DEFAULT_TRACE_LIMIT",
    "EventTracer",
    "OBJECTIVE_METRIC",
    "ObsSession",
    "classify_idle",
    "cpi_features",
    "cpi_shares",
    "feature_delta",
    "objective",
    "ordered_buckets",
    "read_jsonl",
    "top_movers",
    "warp_stall_reasons",
]
