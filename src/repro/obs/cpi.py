"""CPI-stack cycle accounting.

Every simulated cycle of a kernel launch is attributed to exactly one
bucket, so the buckets always sum to the run's total cycles (the
conservation invariant the property tests enforce).  A cycle where any
scheduler issued is ``issued``; a cycle where nothing issued anywhere is
charged to the *highest-priority stall cause* observed across the GPU at
that moment (fast-forwarded idle stretches are charged as a whole to the
cause that opened them — nothing can change mid-stretch by construction
of the event-driven main loop).

The exclusive buckets, in display order:

=====================  ======================================================
bucket                 meaning
=====================  ======================================================
``issued``             at least one scheduler issued this cycle
``cars_trap``          a warp is blocked on a CARS trap / context-switch fill
``spill_fill``         a warp is blocked on a plugin-ABI spill refill
                       (RegDem arena overflow, register-file-cache miss)
``mem_mshr_full``      L1D backlog behind a full MSHR file
``mem_l1_port``        sectors queued for L1D ports (bandwidth interference)
``mem_l2_dram``        outstanding loads in the L2/DRAM service path
``scoreboard_dep``     operands waiting on fixed-latency producer pipelines
``simt_reconverge``    control latency (SSY/CBRA/SYNC/CALL/RET bookkeeping)
``fetch``              i-cache-pressure fetch stalls (the LTO downside)
``barrier``            every runnable warp parked at a block-wide barrier
``cars_reg_alloc``     warps stalled in CARS's issue-stage stalled-warp list
``no_warp``            no eligible warp (drain, SWL throttle, empty SM)
=====================  ======================================================

Priority among stall causes mirrors the usual GPU CPI-stack convention:
memory-system causes win over compute-latency causes, which win over
starvation causes, because an idle cycle with memory in flight is a memory
stall no matter what else is pending.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.warp import NEVER

BUCKET_ISSUED = "issued"
BUCKET_CARS_TRAP = "cars_trap"
BUCKET_SPILL = "spill_fill"
BUCKET_MSHR = "mem_mshr_full"
BUCKET_L1_PORT = "mem_l1_port"
BUCKET_L2_DRAM = "mem_l2_dram"
BUCKET_SCOREBOARD = "scoreboard_dep"
BUCKET_SIMT = "simt_reconverge"
BUCKET_FETCH = "fetch"
BUCKET_BARRIER = "barrier"
BUCKET_REG_ALLOC = "cars_reg_alloc"
BUCKET_EMPTY = "no_warp"

#: Canonical display order (reports iterate this, then any stragglers).
CPI_BUCKETS: Tuple[str, ...] = (
    BUCKET_ISSUED,
    BUCKET_CARS_TRAP,
    BUCKET_SPILL,
    BUCKET_MSHR,
    BUCKET_L1_PORT,
    BUCKET_L2_DRAM,
    BUCKET_SCOREBOARD,
    BUCKET_SIMT,
    BUCKET_FETCH,
    BUCKET_BARRIER,
    BUCKET_REG_ALLOC,
    BUCKET_EMPTY,
)

#: Buckets attributable to the memory system (profile reports sum these).
MEM_BUCKETS: Tuple[str, ...] = (BUCKET_MSHR, BUCKET_L1_PORT, BUCKET_L2_DRAM)

_MEM_CLASS_TO_BUCKET = {
    "mshr": BUCKET_MSHR,
    "l1": BUCKET_L1_PORT,
    "lower": BUCKET_L2_DRAM,
}

#: stall_hint values set by the SM at issue/refill time.
HINT_CTRL = "ctrl"
HINT_FETCH = "fetch"


def classify_idle(gpu, cycle: int) -> str:
    """Attribute one no-issue cycle (and the stretch it opens) to a bucket.

    Inspection order is the stall-cause priority: blocking ABI fills
    (CARS traps, plugin-ABI spill refills — the active context names its
    bucket via ``blocking_fill_bucket``), then the memory subsystem's own
    classification, then a scan of the resident warps for
    compute/synchronization causes.  The scan only happens when the
    memory system is fully drained, which keeps the common (memory-bound)
    idle path O(num_sms).
    """
    for sm in gpu.sms:
        if sm.blocked_fill_warps:
            return gpu.ctx.blocking_fill_bucket
    mem_class = gpu.mem.stall_class()
    if mem_class is not None:
        return _MEM_CLASS_TO_BUCKET[mem_class]

    saw_scoreboard = saw_simt = saw_fetch = False
    saw_barrier = saw_reg = False
    for sm in gpu.sms:
        for warp in sm.warps:
            if warp.done:
                continue
            if warp.stalled or warp.switched_out:
                saw_reg = True
            elif warp.waiting_barrier:
                saw_barrier = True
            elif warp.next_issue > cycle:
                hint = warp.stall_hint
                if hint == HINT_CTRL:
                    saw_simt = True
                elif hint == HINT_FETCH:
                    saw_fetch = True
                else:
                    saw_scoreboard = True
            elif warp.uops and warp.deps_ready_cycle(warp.uops[0]) > cycle:
                saw_scoreboard = True
            # A warp that is ready but unpicked (SWL throttling, scheduler
            # slot mismatch on a drained SM) falls through to ``no_warp``.
    if saw_scoreboard:
        return BUCKET_SCOREBOARD
    if saw_simt:
        return BUCKET_SIMT
    if saw_fetch:
        return BUCKET_FETCH
    if saw_barrier:
        return BUCKET_BARRIER
    if saw_reg:
        return BUCKET_REG_ALLOC
    return BUCKET_EMPTY


def warp_stall_reasons(gpu, cycle: int) -> List[Tuple[object, str]]:
    """Per-warp view of one no-issue cycle: ``(warp, bucket)`` pairs.

    Used for the opt-in per-warp accumulation (``ObsSession.per_warp``);
    unlike :func:`classify_idle` this scans every resident warp, so it is
    never on the always-on path.
    """
    mem_class = gpu.mem.stall_class()
    mem_bucket = _MEM_CLASS_TO_BUCKET.get(mem_class, BUCKET_L2_DRAM)
    out: List[Tuple[object, str]] = []
    for sm in gpu.sms:
        for warp in sm.warps:
            if warp.done:
                continue
            if warp.stalled or warp.switched_out:
                out.append((warp, BUCKET_REG_ALLOC))
            elif warp.waiting_barrier:
                out.append((warp, BUCKET_BARRIER))
            elif warp.next_issue >= NEVER:
                out.append((warp, gpu.ctx.blocking_fill_bucket))
            elif warp.outstanding_loads > 0:
                out.append((warp, mem_bucket))
            elif warp.next_issue > cycle:
                hint = warp.stall_hint
                if hint == HINT_CTRL:
                    out.append((warp, BUCKET_SIMT))
                elif hint == HINT_FETCH:
                    out.append((warp, BUCKET_FETCH))
                else:
                    out.append((warp, BUCKET_SCOREBOARD))
            elif warp.uops and warp.deps_ready_cycle(warp.uops[0]) > cycle:
                out.append((warp, BUCKET_SCOREBOARD))
            else:
                out.append((warp, BUCKET_EMPTY))
    return out


def cpi_shares(cpi_stack: Dict[str, int]) -> Dict[str, float]:
    """Bucket fractions of the total (empty stack -> all zeros)."""
    total = sum(cpi_stack.values())
    if total == 0:
        return {bucket: 0.0 for bucket in CPI_BUCKETS}
    shares = {bucket: cpi_stack.get(bucket, 0) / total for bucket in CPI_BUCKETS}
    for bucket in cpi_stack:
        if bucket not in shares:
            shares[bucket] = cpi_stack[bucket] / total
    return shares


def ordered_buckets(cpi_stack: Dict[str, int]) -> Iterable[str]:
    """Canonical buckets first, then any unexpected keys (sorted)."""
    for bucket in CPI_BUCKETS:
        yield bucket
    for bucket in sorted(set(cpi_stack) - set(CPI_BUCKETS)):
        yield bucket
