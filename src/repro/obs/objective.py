"""Objective extraction for design-space search (:mod:`repro.dse`).

The tuner needs two things from every run, both already computed by the
always-on accounting layer:

* a **scalar to minimize** — total simulated cycles; and
* a **feature vector** explaining *why* one policy beats another — the
  CPI stack normalized to shares, which the conservation invariant
  (``sum(buckets) == cycles``) makes directly comparable across runs of
  different lengths.

Kept here (not in ``repro.dse``) so the objective definition lives next
to the bucket semantics it depends on; the DSL layer treats it as
opaque.
"""

from __future__ import annotations

from typing import Dict

from ..metrics.counters import SimStats
from .cpi import CPI_BUCKETS, cpi_shares

#: The scalar the tuner minimizes (documented for report payloads).
OBJECTIVE_METRIC = "cycles"


def objective(stats: SimStats) -> int:
    """The search objective for one run: total simulated cycles."""
    return stats.cycles


def cpi_features(stats: SimStats) -> Dict[str, float]:
    """Normalized CPI-stack shares over the canonical bucket order.

    Every canonical bucket is present (0.0 when the run never stalled
    there), so vectors from different runs align component-wise.
    """
    shares = cpi_shares(stats.cpi_stack)
    return {bucket: shares.get(bucket, 0.0) for bucket in CPI_BUCKETS}


def feature_delta(
    stats: SimStats, reference: SimStats
) -> Dict[str, float]:
    """Per-bucket share shift of *stats* minus *reference*.

    Positive means *stats* spends a larger fraction of its cycles in
    that bucket.  The tuner reports this for each winning policy against
    the paper default, so "won by trading trap stalls for issue slots"
    is visible straight from the table.
    """
    ours = cpi_features(stats)
    theirs = cpi_features(reference)
    return {bucket: ours[bucket] - theirs[bucket] for bucket in CPI_BUCKETS}


def progress_event(stats: SimStats) -> Dict[str, object]:
    """JSON-friendly run summary for streaming event feeds.

    The service layer attaches this to a finished job's final event so
    remote clients see the same objective + explanation pair the tuner
    consumes, without shipping the full :class:`SimStats`.  Zero-share
    buckets are dropped: the payload rides in every job poll response.
    """
    return {
        "objective": OBJECTIVE_METRIC,
        "cycles": objective(stats),
        "ipc": round(stats.ipc(), 4),
        "traps": stats.traps,
        "cpi_shares": {
            bucket: round(share, 4)
            for bucket, share in cpi_features(stats).items()
            if share
        },
    }


def top_movers(delta: Dict[str, float], count: int = 2) -> Dict[str, float]:
    """The *count* largest-magnitude non-zero components of *delta*."""
    movers = sorted(
        ((b, v) for b, v in delta.items() if v != 0.0),
        key=lambda item: (-abs(item[1]), item[0]),
    )
    return dict(movers[:count])
