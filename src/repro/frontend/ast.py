"""AST for the mini CUDA-like kernel DSL.

Workloads and examples write device code against this AST (usually through
the operator-overloaded expression nodes and the helpers in
:mod:`repro.frontend.builder`).  The compiler in :mod:`repro.frontend.lower`
turns it into mini-ISA functions that follow the GPU function-call ABI the
paper studies.

Expressions are side-effect free except :class:`CallExpr` (device-function
call) and :class:`LoadGlobal`/:class:`LoadShared`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..isa.opcodes import CmpOp, Opcode


class DslError(Exception):
    """Raised for malformed DSL programs."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expressions; provides operator sugar."""

    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.IADD, self, wrap(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.IADD, wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.ISUB, self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.ISUB, wrap(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.IMUL, self, wrap(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.IMUL, wrap(other), self)

    def __and__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.AND, self, wrap(other))

    def __or__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.OR, self, wrap(other))

    def __xor__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.XOR, self, wrap(other))

    def __lshift__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.SHL, self, wrap(other))

    def __rshift__(self, other: "ExprLike") -> "BinOp":
        return BinOp(Opcode.SHR, self, wrap(other))

    # Comparisons build Cmp nodes (predicates), usable in If/While.
    def __eq__(self, other: "ExprLike") -> "Cmp":  # type: ignore[override]
        return Cmp(CmpOp.EQ, self, wrap(other))

    def __ne__(self, other: "ExprLike") -> "Cmp":  # type: ignore[override]
        return Cmp(CmpOp.NE, self, wrap(other))

    def __lt__(self, other: "ExprLike") -> "Cmp":
        return Cmp(CmpOp.LT, self, wrap(other))

    def __le__(self, other: "ExprLike") -> "Cmp":
        return Cmp(CmpOp.LE, self, wrap(other))

    def __gt__(self, other: "ExprLike") -> "Cmp":
        return Cmp(CmpOp.GT, self, wrap(other))

    def __ge__(self, other: "ExprLike") -> "Cmp":
        return Cmp(CmpOp.GE, self, wrap(other))

    __hash__ = object.__hash__


ExprLike = Union[Expr, int]


def wrap(value: ExprLike) -> Expr:
    """Coerce a Python int into a :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    raise DslError(f"cannot use {value!r} as a DSL expression")


@dataclass(frozen=True, eq=False)
class Const(Expr):
    value: int


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A named local variable (assigned via Let/Assign) or parameter."""

    name: str


@dataclass(frozen=True, eq=False)
class Special(Expr):
    """A hardware special value: 'tid', 'bid', 'ntid', 'nctaid'."""

    kind: str

    KINDS = ("tid", "bid", "ntid", "nctaid")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise DslError(f"unknown special {self.kind!r}")


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    op: Opcode
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class Mad(Expr):
    """Fused multiply-add ``a * b + c`` (integer or float flavour)."""

    a: Expr
    b: Expr
    c: Expr
    float_flavour: bool = False


@dataclass(frozen=True, eq=False)
class FloatOp(Expr):
    """FADD/FMUL — latency-class floats (values remain integers)."""

    op: Opcode
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class Mufu(Expr):
    """Special-function-unit op (rsqrt/sin/...); ``fn`` selects which."""

    fn: int
    arg: Expr


@dataclass(frozen=True, eq=False)
class Cmp(Expr):
    op: CmpOp
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class Select(Expr):
    """``cond ? if_true : if_false`` without divergence."""

    cond: "Cmp"
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True, eq=False)
class LoadGlobal(Expr):
    addr: Expr
    offset: int = 0


@dataclass(frozen=True, eq=False)
class LoadShared(Expr):
    addr: Expr
    offset: int = 0


@dataclass(frozen=True, eq=False)
class LoadLocal(Expr):
    """Genuine (non-spill) thread-private local-memory load."""

    offset: int


@dataclass(frozen=True, eq=False)
class CallExpr(Expr):
    """Direct device-function call returning a value."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True, eq=False)
class IndirectCallExpr(Expr):
    """Indirect call: selects one of ``candidates`` by ``selector`` value.

    Models virtual functions / function pointers.  The static candidate list
    is what the paper's call-graph analysis uses for indirect call sites.
    """

    candidates: Tuple[str, ...]
    selector: Expr
    args: Tuple[Expr, ...]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Let(Stmt):
    """Bind or rebind a local variable."""

    name: str
    value: Expr


@dataclass(frozen=True)
class StoreGlobal(Stmt):
    addr: Expr
    value: Expr
    offset: int = 0


@dataclass(frozen=True)
class StoreShared(Stmt):
    addr: Expr
    value: Expr
    offset: int = 0


@dataclass(frozen=True)
class StoreLocal(Stmt):
    """Genuine (non-spill) thread-private local-memory store."""

    offset: int
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Cmp
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    cond: Cmp
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class For(Stmt):
    """``for var in range(start, stop, step)`` counted loop."""

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """Evaluate an expression for its side effects (calls)."""

    expr: Expr


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Barrier(Stmt):
    pass


# --------------------------------------------------------------------------
# Function definitions
# --------------------------------------------------------------------------


@dataclass
class FunctionDef:
    """A DSL function (kernel or device function).

    Attributes:
        name: symbol name.
        params: parameter names (passed in registers per the ABI).
        body: statement list.
        is_kernel: marks ``__global__`` entry points.
        shared_mem_bytes: static shared memory demand (kernels only).
        reg_pressure: minimum callee-saved register count the compiler must
            allocate for this function.  Real compilers derive this from the
            live values in the function body; the synthesizer uses it to
            control per-function FRU exactly (padding with live-across-call
            values when the body alone would not demand that many).
        recursion_bound: declared bound on simultaneous activations of this
            function on one call stack (for recursive functions), or None
            when unknown.  Carried through lowering onto the compiled
            :class:`repro.isa.program.Function` for the interprocedural
            analysis.
    """

    name: str
    params: List[str]
    body: List[Stmt]
    is_kernel: bool = False
    shared_mem_bytes: int = 0
    reg_pressure: int = 0
    recursion_bound: Optional[int] = None


@dataclass
class ProgramDef:
    """A collection of DSL functions compiled/linked together."""

    functions: List[FunctionDef] = field(default_factory=list)

    def add(self, func: FunctionDef) -> FunctionDef:
        if any(f.name == func.name for f in self.functions):
            raise DslError(f"duplicate function {func.name!r}")
        self.functions.append(func)
        return func

    def get(self, name: str) -> FunctionDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise DslError(f"unknown function {name!r}")
