"""Lowering from the DSL AST to linear mini-ISA code over virtual registers.

The output of this pass uses *virtual* register numbers ``VREG_BASE + i``
alongside pre-colored architectural registers (the ABI's special, argument
and return registers).  :mod:`repro.frontend.regalloc` then assigns virtual
registers to architectural ones, splitting them between caller-saved
scratch and the contiguous callee-saved block at R16 per the ABI.

Control flow is lowered structurally with SSY/CBRA/SYNC, matching the
reconvergence-stack discipline the emulator implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import CmpOp, Opcode
from . import abi
from .ast import (
    BinOp,
    Barrier,
    CallExpr,
    Cmp,
    Const,
    DslError,
    Expr,
    ExprStmt,
    FloatOp,
    For,
    FunctionDef,
    If,
    IndirectCallExpr,
    Let,
    LoadGlobal,
    LoadLocal,
    LoadShared,
    Mad,
    Mufu,
    Return,
    Select,
    Special,
    Stmt,
    StoreGlobal,
    StoreLocal,
    StoreShared,
    Var,
    While,
    wrap,
)

#: Virtual registers are numbered from here; anything below is pre-colored.
VREG_BASE = 1 << 16

#: Fixed predicate register used for all compare/branch pairs (each SETP is
#: immediately consumed, so one predicate suffices).
PRED = 0

_NEGATED = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.GE: CmpOp.LT,
}


@dataclass
class LoweredFunction:
    """Linear code over virtual registers, before register allocation."""

    name: str
    code: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    num_vregs: int = 0
    is_kernel: bool = False
    shared_mem_bytes: int = 0
    reg_pressure: int = 0
    recursion_bound: Optional[int] = None
    has_calls: bool = False


class _Lowerer:
    def __init__(self, func: FunctionDef) -> None:
        self.func = func
        self.out = LoweredFunction(
            name=func.name,
            is_kernel=func.is_kernel,
            shared_mem_bytes=func.shared_mem_bytes,
            reg_pressure=func.reg_pressure,
            recursion_bound=func.recursion_bound,
        )
        self._vars: Dict[str, int] = {}
        self._next_vreg = VREG_BASE
        self._next_label = 0
        self._returned_at_top = False

    # -- helpers ----------------------------------------------------------

    def _vreg(self) -> int:
        reg = self._next_vreg
        self._next_vreg += 1
        return reg

    def _label(self, hint: str) -> str:
        name = f".{hint}_{self._next_label}"
        self._next_label += 1
        return name

    def _emit(self, inst: Instruction) -> None:
        self.out.code.append(inst)

    def _mark(self, label: str) -> None:
        self.out.labels[label] = len(self.out.code)

    def _var_reg(self, name: str) -> int:
        if name not in self._vars:
            self._vars[name] = self._vreg()
        return self._vars[name]

    # -- expressions -------------------------------------------------------

    def expr(self, node: Expr) -> int:
        """Lower *node*, returning the register holding its value."""
        if isinstance(node, Const):
            dst = self._vreg()
            self._emit(Instruction(Opcode.MOVI, dst=(dst,), imm=node.value))
            return dst
        if isinstance(node, Var):
            if node.name not in self._vars:
                raise DslError(f"{self.func.name}: use of unbound variable {node.name!r}")
            return self._vars[node.name]
        if isinstance(node, Special):
            return abi.SPECIAL_REGS[node.kind]
        if isinstance(node, BinOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            dst = self._vreg()
            self._emit(Instruction(node.op, dst=(dst,), srcs=(left, right)))
            return dst
        if isinstance(node, FloatOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            dst = self._vreg()
            self._emit(Instruction(node.op, dst=(dst,), srcs=(left, right)))
            return dst
        if isinstance(node, Mad):
            a, b, c = self.expr(node.a), self.expr(node.b), self.expr(node.c)
            dst = self._vreg()
            op = Opcode.FFMA if node.float_flavour else Opcode.IMAD
            self._emit(Instruction(op, dst=(dst,), srcs=(a, b, c)))
            return dst
        if isinstance(node, Mufu):
            arg = self.expr(node.arg)
            dst = self._vreg()
            self._emit(Instruction(Opcode.MUFU, dst=(dst,), srcs=(arg,), imm=node.fn))
            return dst
        if isinstance(node, Select):
            true_reg = self.expr(node.if_true)
            false_reg = self.expr(node.if_false)
            self._setp(node.cond)
            dst = self._vreg()
            self._emit(
                Instruction(Opcode.SEL, dst=(dst,), srcs=(true_reg, false_reg), psrc=PRED)
            )
            return dst
        if isinstance(node, LoadGlobal):
            addr = self.expr(node.addr)
            dst = self._vreg()
            self._emit(Instruction(Opcode.LDG, dst=(dst,), srcs=(addr,), imm=node.offset))
            return dst
        if isinstance(node, LoadShared):
            addr = self.expr(node.addr)
            dst = self._vreg()
            self._emit(Instruction(Opcode.LDS, dst=(dst,), srcs=(addr,), imm=node.offset))
            return dst
        if isinstance(node, LoadLocal):
            dst = self._vreg()
            self._emit(Instruction(Opcode.LDL, dst=(dst,), imm=node.offset))
            return dst
        if isinstance(node, CallExpr):
            return self._call(Instruction(Opcode.CALL, target=node.func), node.args)
        if isinstance(node, IndirectCallExpr):
            sel = self.expr(node.selector)
            return self._call(
                Instruction(
                    Opcode.CALLI, srcs=(sel,), call_targets=tuple(node.candidates)
                ),
                node.args,
                extra_live=(sel,),
            )
        if isinstance(node, Cmp):
            # A bare comparison used as a value: materialize 0/1 via SEL.
            return self.expr(Select(node, Const(1), Const(0)))
        raise DslError(f"cannot lower expression {node!r}")

    def _call(
        self,
        call_inst: Instruction,
        args: Tuple[Expr, ...],
        extra_live: Tuple[int, ...] = (),
    ) -> int:
        if len(args) > abi.MAX_REG_ARGS:
            raise DslError(
                f"{self.func.name}: {len(args)} args exceeds the "
                f"{abi.MAX_REG_ARGS}-register argument limit"
            )
        arg_regs = [self.expr(a) for a in args]
        for i, reg in enumerate(arg_regs):
            self._emit(
                Instruction(Opcode.MOV, dst=(abi.ARG_REG_BASE + i,), srcs=(reg,))
            )
        # Indirect calls read the selector register; rebuild the CALL with
        # the selector moved last so liveness keeps it until the call.
        if call_inst.op is Opcode.CALLI:
            self._emit(
                Instruction(
                    Opcode.CALLI,
                    srcs=call_inst.srcs,
                    call_targets=call_inst.call_targets,
                )
            )
        else:
            self._emit(call_inst)
        self.out.has_calls = True
        result = self._vreg()
        self._emit(Instruction(Opcode.MOV, dst=(result,), srcs=(abi.RETURN_REG,)))
        return result

    def _setp(self, cond: Cmp, negate: bool = False) -> None:
        op = _NEGATED[cond.op] if negate else cond.op
        left = self.expr(cond.left)
        right = self.expr(cond.right)
        self._emit(Instruction(Opcode.SETP, pdst=PRED, srcs=(left, right), imm=int(op)))

    # -- statements ---------------------------------------------------------

    def stmts(self, body) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: Stmt) -> None:
        if isinstance(node, Let):
            value = self.expr(node.value)
            dst = self._var_reg(node.name)
            self._emit(Instruction(Opcode.MOV, dst=(dst,), srcs=(value,)))
            return
        if isinstance(node, StoreGlobal):
            addr = self.expr(node.addr)
            value = self.expr(node.value)
            self._emit(
                Instruction(Opcode.STG, srcs=(addr, value), imm=node.offset)
            )
            return
        if isinstance(node, StoreShared):
            addr = self.expr(node.addr)
            value = self.expr(node.value)
            self._emit(Instruction(Opcode.STS, srcs=(addr, value), imm=node.offset))
            return
        if isinstance(node, StoreLocal):
            value = self.expr(node.value)
            self._emit(Instruction(Opcode.STL, srcs=(value,), imm=node.offset))
            return
        if isinstance(node, ExprStmt):
            self.expr(node.expr)
            return
        if isinstance(node, Barrier):
            self._emit(Instruction(Opcode.BAR))
            return
        if isinstance(node, Return):
            if node.value is not None:
                value = self.expr(node.value)
                self._emit(
                    Instruction(Opcode.MOV, dst=(abi.RETURN_REG,), srcs=(value,))
                )
            # The epilogue (POP + RET / EXIT) is appended per return site by
            # the allocator, once the callee-saved set is known.
            self._emit(Instruction(Opcode.NOP, imm=_RETURN_MARKER))
            return
        if isinstance(node, If):
            self._lower_if(node)
            return
        if isinstance(node, While):
            self._lower_while(node)
            return
        if isinstance(node, For):
            self._lower_for(node)
            return
        raise DslError(f"cannot lower statement {node!r}")

    def _lower_if(self, node: If) -> None:
        then_label = self._label("then")
        end_label = self._label("endif")
        self._setp(node.cond)
        self._emit(Instruction(Opcode.SSY, target=end_label))
        self._emit(Instruction(Opcode.CBRA, psrc=PRED, target=then_label))
        self.stmts(node.else_body)
        self._emit(Instruction(Opcode.SYNC))
        self._mark(then_label)
        self.stmts(node.then_body)
        self._emit(Instruction(Opcode.SYNC))
        self._mark(end_label)

    def _lower_while(self, node: While) -> None:
        head_label = self._label("loop")
        exit_label = self._label("exit")
        end_label = self._label("endloop")
        self._emit(Instruction(Opcode.SSY, target=end_label))
        self._mark(head_label)
        self._setp(node.cond, negate=True)
        self._emit(Instruction(Opcode.CBRA, psrc=PRED, target=exit_label))
        self.stmts(node.body)
        self._emit(Instruction(Opcode.BRA, target=head_label))
        self._mark(exit_label)
        self._emit(Instruction(Opcode.SYNC))
        self._mark(end_label)

    def _lower_for(self, node: For) -> None:
        self.stmt(Let(node.var, node.start))
        cond = Cmp(CmpOp.LT, Var(node.var), wrap(node.stop))
        body = list(node.body) + [Let(node.var, Var(node.var) + wrap(node.step))]
        self._lower_while(While(cond, tuple(body)))

    # -- entry --------------------------------------------------------------

    def run(self) -> LoweredFunction:
        if len(self.func.params) > abi.MAX_REG_ARGS:
            raise DslError(f"{self.func.name}: too many parameters")
        # Copy incoming arguments out of the volatile argument registers.
        for i, name in enumerate(self.func.params):
            dst = self._var_reg(name)
            self._emit(
                Instruction(Opcode.MOV, dst=(dst,), srcs=(abi.ARG_REG_BASE + i,))
            )
        self.stmts(self.func.body)
        # Implicit return at the end of the body.
        last = self.out.code[-1] if self.out.code else None
        if last is None or last.op is not Opcode.NOP or last.imm != _RETURN_MARKER:
            self._emit(Instruction(Opcode.NOP, imm=_RETURN_MARKER))
        self.out.num_vregs = self._next_vreg - VREG_BASE
        return self.out


#: Sentinel in NOP.imm marking a return site to be expanded by the allocator.
_RETURN_MARKER = -0xBEEF


def lower_function(func: FunctionDef) -> LoweredFunction:
    """Lower a single DSL function to linear virtual-register code."""
    return _Lowerer(func).run()


def is_return_marker(inst: Instruction) -> bool:
    """True for the NOP sentinel marking a return site."""
    return inst.op is Opcode.NOP and inst.imm == _RETURN_MARKER
