"""Compiler driver and linker.

``compile_program`` lowers and register-allocates every DSL function, then
links them into a :class:`repro.isa.Module`.  The linker reproduces the
baseline GPU toolchain behaviour the paper describes (Section II): after
each device function is compiled and labeled with its register usage, the
per-kernel *worst-case* register usage over the reachable call graph
determines the warp's static register allotment.
"""

from __future__ import annotations

from typing import Dict

from ..isa.program import Module
from ..isa.validator import validate_module
from .ast import ProgramDef
from .lower import lower_function
from .regalloc import allocate_registers

#: Contemporary GPU instructions are wide: 16 bytes each (Volta/Hopper).
BYTES_PER_INSTRUCTION = 16


def compile_program(program: ProgramDef) -> Module:
    """Compile and link a DSL program into a validated ISA module."""
    module = Module()
    for func_def in program.functions:
        lowered = lower_function(func_def)
        module.add(allocate_registers(lowered))
    link(module)
    validate_module(module)
    return module


def link(module: Module) -> None:
    """Compute per-kernel worst-case register usage and the code footprint."""
    worst: Dict[str, int] = {}
    for kernel in module.kernels():
        names = module.reachable(kernel.name)
        worst[kernel.name] = max(module.function(n).num_regs for n in names)
    module.worst_case_regs = worst
    module.code_bytes = module.total_static_instructions * BYTES_PER_INSTRUCTION
