"""Convenience constructors for writing DSL programs.

Examples and workload generators use these helpers rather than raw AST
nodes::

    from repro.frontend import builder as b

    prog = b.program()
    leaf = b.device(prog, "leaf", ["x"], [
        b.ret(b.v("x") * 3 + 1),
    ], reg_pressure=6)
    b.kernel(prog, "main", ["data"], [
        b.let("i", b.tid()),
        b.store(b.v("data") + b.v("i"), b.call("leaf", b.v("i"))),
    ])
    module = b.compile(prog)
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..isa.opcodes import Opcode
from ..isa.program import Module
from .ast import (
    Barrier,
    CallExpr,
    Cmp,
    Const,
    Expr,
    ExprLike,
    ExprStmt,
    FloatOp,
    For,
    FunctionDef,
    If,
    IndirectCallExpr,
    Let,
    LoadGlobal,
    LoadLocal,
    LoadShared,
    Mad,
    Mufu,
    ProgramDef,
    Return,
    Special,
    Stmt,
    StoreGlobal,
    StoreLocal,
    StoreShared,
    Var,
    While,
    wrap,
)
from .linker import compile_program


def program() -> ProgramDef:
    """Create an empty DSL program."""
    return ProgramDef()


def kernel(
    prog: ProgramDef,
    name: str,
    params: Sequence[str],
    body: Sequence[Stmt],
    shared_mem_bytes: int = 0,
    reg_pressure: int = 0,
) -> FunctionDef:
    """Define a ``__global__`` kernel entry point."""
    return prog.add(
        FunctionDef(
            name=name,
            params=list(params),
            body=list(body),
            is_kernel=True,
            shared_mem_bytes=shared_mem_bytes,
            reg_pressure=reg_pressure,
        )
    )


def device(
    prog: ProgramDef,
    name: str,
    params: Sequence[str],
    body: Sequence[Stmt],
    reg_pressure: int = 0,
    recursion_bound: Optional[int] = None,
) -> FunctionDef:
    """Define a ``__device__`` function.

    ``recursion_bound`` declares the maximum simultaneous activations a
    recursive function stacks (None when unknown); the interprocedural
    analysis turns it into sound depth/demand bounds.
    """
    return prog.add(
        FunctionDef(
            name=name,
            params=list(params),
            body=list(body),
            is_kernel=False,
            reg_pressure=reg_pressure,
            recursion_bound=recursion_bound,
        )
    )


def compile(prog: ProgramDef) -> Module:  # noqa: A001 - deliberate DSL verb
    """Compile and link the program into an ISA module."""
    return compile_program(prog)


# -- expressions -------------------------------------------------------------


def v(name: str) -> Var:
    """Reference a local variable by name."""
    return Var(name)


def c(value: int) -> Const:
    """An integer constant."""
    return Const(value)


def tid() -> Special:
    """Thread index within the block (R0)."""
    return Special("tid")


def bid() -> Special:
    """Block index within the grid (R1)."""
    return Special("bid")


def ntid() -> Special:
    """Threads per block (R2)."""
    return Special("ntid")


def nctaid() -> Special:
    """Blocks in the grid (R3)."""
    return Special("nctaid")


def gid() -> Expr:
    """Global thread index: ``bid * ntid + tid``."""
    return Mad(Special("bid"), Special("ntid"), Special("tid"))


def load(addr: ExprLike, offset: int = 0) -> LoadGlobal:
    """Global-memory load at ``addr + offset``."""
    return LoadGlobal(wrap(addr), offset)


def load_shared(addr: ExprLike, offset: int = 0) -> LoadShared:
    """Shared-memory load."""
    return LoadShared(wrap(addr), offset)


def load_local(offset: int) -> LoadLocal:
    """Genuine (non-spill) local-memory load at a static offset."""
    return LoadLocal(offset)


def call(func: str, *args: ExprLike) -> CallExpr:
    """Direct device-function call expression."""
    return CallExpr(func, tuple(wrap(a) for a in args))


def icall(candidates: Sequence[str], selector: ExprLike, *args: ExprLike) -> IndirectCallExpr:
    """Indirect call: dispatch on ``selector`` among ``candidates``."""
    return IndirectCallExpr(
        tuple(candidates), wrap(selector), tuple(wrap(a) for a in args)
    )


def fadd(a: ExprLike, b_: ExprLike) -> FloatOp:
    """Float-latency add (values stay integral)."""
    return FloatOp(Opcode.FADD, wrap(a), wrap(b_))


def fmul(a: ExprLike, b_: ExprLike) -> FloatOp:
    """Float-latency multiply."""
    return FloatOp(Opcode.FMUL, wrap(a), wrap(b_))


def ffma(a: ExprLike, b_: ExprLike, c_: ExprLike) -> Mad:
    """Fused multiply-add on the FP pipe."""
    return Mad(wrap(a), wrap(b_), wrap(c_), float_flavour=True)


def mad(a: ExprLike, b_: ExprLike, c_: ExprLike) -> Mad:
    """Integer multiply-add ``a*b + c``."""
    return Mad(wrap(a), wrap(b_), wrap(c_))


def mufu(arg: ExprLike, fn: int = 0) -> Mufu:
    """Special-function-unit op (transcendental latency class)."""
    return Mufu(fn, wrap(arg))


# -- statements ----------------------------------------------------------------


def let(name: str, value: ExprLike) -> Let:
    """Bind or rebind a local variable."""
    return Let(name, wrap(value))


def store(addr: ExprLike, value: ExprLike, offset: int = 0) -> StoreGlobal:
    """Global-memory store."""
    return StoreGlobal(wrap(addr), wrap(value), offset)


def store_shared(addr: ExprLike, value: ExprLike, offset: int = 0) -> StoreShared:
    """Shared-memory store."""
    return StoreShared(wrap(addr), wrap(value), offset)


def store_local(offset: int, value: ExprLike) -> StoreLocal:
    """Genuine local-memory store at a static offset."""
    return StoreLocal(offset, wrap(value))


def if_(cond: Cmp, then_body: Sequence[Stmt], else_body: Sequence[Stmt] = ()) -> If:
    """Structured if/else (lowered to SSY/CBRA/SYNC)."""
    return If(cond, tuple(then_body), tuple(else_body))


def while_(cond: Cmp, body: Sequence[Stmt]) -> While:
    """Structured while loop."""
    return While(cond, tuple(body))


def for_(
    var: str,
    start: ExprLike,
    stop: ExprLike,
    body: Sequence[Stmt],
    step: ExprLike = 1,
) -> For:
    """Counted loop ``for var in range(start, stop, step)``."""
    return For(var, wrap(start), wrap(stop), wrap(step), tuple(body))


def ret(value: Optional[ExprLike] = None) -> Return:
    """Return from the enclosing function (or end the kernel)."""
    return Return(wrap(value) if value is not None else None)


def do(expr: Expr) -> ExprStmt:
    """Evaluate an expression for its side effects (calls)."""
    return ExprStmt(expr)


def barrier() -> Barrier:
    """Block-wide barrier (BAR)."""
    return Barrier()
