"""Kernel DSL, compiler, linker, and LTO inliner (the GPU toolchain substrate)."""

from .ast import DslError, FunctionDef, ProgramDef
from .linker import compile_program, link, BYTES_PER_INSTRUCTION
from .inliner import inline_program
from . import abi, builder

__all__ = [
    "DslError",
    "FunctionDef",
    "ProgramDef",
    "compile_program",
    "link",
    "inline_program",
    "abi",
    "builder",
    "BYTES_PER_INSTRUCTION",
]
