"""AST-level full inliner — the LTO baseline of Fig 16.

``inline_program`` clones every inlinable device-function body into its call
sites, transitively, producing a program whose kernels make no runtime calls
(matching the paper's fully-inlined/LTO configuration).  Functions are *not*
inlinable when they are recursive (directly or through a cycle) or when they
are targets of an indirect call (their address is taken); such calls remain,
exactly as a real link-time optimizer would leave them.

Inlining requires the callee to be in "single-exit" form: any Return must be
the final statement of the body (the lowering produced by
:mod:`repro.workloads` and the examples satisfies this).  A callee with an
early return is treated as non-inlinable.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Set, Tuple

from .ast import (
    BinOp,
    CallExpr,
    Cmp,
    Const,
    DslError,
    Expr,
    ExprStmt,
    FloatOp,
    For,
    FunctionDef,
    If,
    IndirectCallExpr,
    Let,
    LoadGlobal,
    LoadShared,
    Mad,
    Mufu,
    ProgramDef,
    Return,
    Select,
    Stmt,
    StoreGlobal,
    StoreLocal,
    StoreShared,
    Var,
    While,
)


def _callees_of(body) -> Set[str]:
    """All direct-call targets appearing anywhere in *body*."""
    found: Set[str] = set()

    def walk_expr(node: Expr) -> None:
        if isinstance(node, CallExpr):
            found.add(node.func)
            for a in node.args:
                walk_expr(a)
        elif isinstance(node, IndirectCallExpr):
            walk_expr(node.selector)
            for a in node.args:
                walk_expr(a)
        elif isinstance(node, (BinOp, FloatOp)):
            walk_expr(node.left)
            walk_expr(node.right)
        elif isinstance(node, Cmp):
            walk_expr(node.left)
            walk_expr(node.right)
        elif isinstance(node, Mad):
            walk_expr(node.a)
            walk_expr(node.b)
            walk_expr(node.c)
        elif isinstance(node, Mufu):
            walk_expr(node.arg)
        elif isinstance(node, Select):
            walk_expr(node.cond)
            walk_expr(node.if_true)
            walk_expr(node.if_false)
        elif isinstance(node, (LoadGlobal, LoadShared)):
            walk_expr(node.addr)

    def walk_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            walk_expr(stmt.value)
        elif isinstance(stmt, (StoreGlobal, StoreShared)):
            walk_expr(stmt.addr)
            walk_expr(stmt.value)
        elif isinstance(stmt, StoreLocal):
            walk_expr(stmt.value)
        elif isinstance(stmt, ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                walk_expr(stmt.value)
        elif isinstance(stmt, If):
            walk_expr(stmt.cond)
            for s in stmt.then_body:
                walk_stmt(s)
            for s in stmt.else_body:
                walk_stmt(s)
        elif isinstance(stmt, While):
            walk_expr(stmt.cond)
            for s in stmt.body:
                walk_stmt(s)
        elif isinstance(stmt, For):
            walk_expr(stmt.start)
            walk_expr(stmt.stop)
            walk_expr(stmt.step)
            for s in stmt.body:
                walk_stmt(s)

    for stmt in body:
        walk_stmt(stmt)
    return found


def _has_early_return(body) -> bool:
    """True when a Return appears anywhere but as the final statement."""

    def nested_return(stmts) -> bool:
        for stmt in stmts:
            if isinstance(stmt, Return):
                return True
            if isinstance(stmt, If):
                if nested_return(stmt.then_body) or nested_return(stmt.else_body):
                    return True
            if isinstance(stmt, While) and nested_return(stmt.body):
                return True
            if isinstance(stmt, For) and nested_return(stmt.body):
                return True
        return False

    if not body:
        return False
    *head, tail = body
    if nested_return(head):
        return True
    if isinstance(tail, (If, While, For)):
        return nested_return([tail])
    return False


def _indirect_targets(program: ProgramDef) -> Set[str]:
    taken: Set[str] = set()

    def walk_expr(node: Expr) -> None:
        if isinstance(node, IndirectCallExpr):
            taken.update(node.candidates)
        for child in _expr_children(node):
            walk_expr(child)

    for func in program.functions:
        for stmt in _all_stmts(func.body):
            for expr in _stmt_exprs(stmt):
                walk_expr(expr)
    return taken


def _expr_children(node: Expr) -> Tuple[Expr, ...]:
    if isinstance(node, (BinOp, FloatOp, Cmp)):
        return (node.left, node.right)
    if isinstance(node, Mad):
        return (node.a, node.b, node.c)
    if isinstance(node, Mufu):
        return (node.arg,)
    if isinstance(node, Select):
        return (node.cond, node.if_true, node.if_false)
    if isinstance(node, (LoadGlobal, LoadShared)):
        return (node.addr,)
    if isinstance(node, CallExpr):
        return tuple(node.args)
    if isinstance(node, IndirectCallExpr):
        return (node.selector,) + tuple(node.args)
    return ()


def _all_stmts(body):
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _all_stmts(stmt.then_body)
            yield from _all_stmts(stmt.else_body)
        elif isinstance(stmt, (While, For)):
            yield from _all_stmts(stmt.body)


def _stmt_exprs(stmt: Stmt) -> Tuple[Expr, ...]:
    if isinstance(stmt, Let):
        return (stmt.value,)
    if isinstance(stmt, (StoreGlobal, StoreShared)):
        return (stmt.addr, stmt.value)
    if isinstance(stmt, StoreLocal):
        return (stmt.value,)
    if isinstance(stmt, ExprStmt):
        return (stmt.expr,)
    if isinstance(stmt, Return) and stmt.value is not None:
        return (stmt.value,)
    if isinstance(stmt, If):
        return (stmt.cond,)
    if isinstance(stmt, While):
        return (stmt.cond,)
    if isinstance(stmt, For):
        return (stmt.start, stmt.stop, stmt.step)
    return ()


def _recursive_functions(program: ProgramDef) -> Set[str]:
    """Functions on a call-graph cycle (directly or mutually recursive)."""
    graph: Dict[str, Set[str]] = {
        f.name: _callees_of(f.body) for f in program.functions
    }
    recursive: Set[str] = set()
    for root in graph:
        stack = [root]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            for callee in graph.get(node, ()):
                if callee == root:
                    recursive.add(root)
                    stack = []
                    break
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
    return recursive


class _Inliner:
    def __init__(self, program: ProgramDef) -> None:
        self.program = program
        self.counter = itertools.count()
        recursive = _recursive_functions(program)
        indirect = _indirect_targets(program)
        self.not_inlinable = recursive | indirect | {
            f.name for f in program.functions if _has_early_return(f.body)
        }

    def can_inline(self, name: str) -> bool:
        return name not in self.not_inlinable

    # The core transform: rewrite a statement list so that every CallExpr to
    # an inlinable function is replaced by the callee's (renamed) body.
    def rewrite_body(self, body) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in body:
            out.extend(self.rewrite_stmt(stmt))
        return out

    def rewrite_stmt(self, stmt: Stmt) -> List[Stmt]:
        pre: List[Stmt] = []
        if isinstance(stmt, Let):
            value = self.rewrite_expr(stmt.value, pre)
            return pre + [Let(stmt.name, value)]
        if isinstance(stmt, StoreGlobal):
            addr = self.rewrite_expr(stmt.addr, pre)
            value = self.rewrite_expr(stmt.value, pre)
            return pre + [StoreGlobal(addr, value, stmt.offset)]
        if isinstance(stmt, StoreShared):
            addr = self.rewrite_expr(stmt.addr, pre)
            value = self.rewrite_expr(stmt.value, pre)
            return pre + [StoreShared(addr, value, stmt.offset)]
        if isinstance(stmt, StoreLocal):
            value = self.rewrite_expr(stmt.value, pre)
            return pre + [StoreLocal(stmt.offset, value)]
        if isinstance(stmt, ExprStmt):
            expr = self.rewrite_expr(stmt.expr, pre)
            if isinstance(expr, Var) and not isinstance(stmt.expr, Var):
                return pre  # the call became inlined statements
            return pre + [ExprStmt(expr)]
        if isinstance(stmt, Return):
            if stmt.value is None:
                return [stmt]
            value = self.rewrite_expr(stmt.value, pre)
            return pre + [Return(value)]
        if isinstance(stmt, If):
            cond = self.rewrite_cmp(stmt.cond, pre)
            then_body = tuple(self.rewrite_body(stmt.then_body))
            else_body = tuple(self.rewrite_body(stmt.else_body))
            return pre + [If(cond, then_body, else_body)]
        if isinstance(stmt, While):
            # Calls inside loop conditions would need per-iteration
            # re-evaluation; hoisting is only valid for call-free conditions.
            cond = self.rewrite_cmp(stmt.cond, pre)
            if pre:
                raise DslError("cannot inline a call inside a while-condition")
            return [While(cond, tuple(self.rewrite_body(stmt.body)))]
        if isinstance(stmt, For):
            start = self.rewrite_expr(stmt.start, pre)
            stop = self.rewrite_expr(stmt.stop, pre)
            step = self.rewrite_expr(stmt.step, pre)
            return pre + [
                For(stmt.var, start, stop, step, tuple(self.rewrite_body(stmt.body)))
            ]
        return [stmt]

    def rewrite_cmp(self, cond: Cmp, pre: List[Stmt]) -> Cmp:
        return Cmp(
            cond.op,
            self.rewrite_expr(cond.left, pre),
            self.rewrite_expr(cond.right, pre),
        )

    def rewrite_expr(self, node: Expr, pre: List[Stmt]) -> Expr:
        if isinstance(node, CallExpr):
            args = tuple(self.rewrite_expr(a, pre) for a in node.args)
            if not self.can_inline(node.func):
                return CallExpr(node.func, args)
            return self.inline_call(node.func, args, pre)
        if isinstance(node, IndirectCallExpr):
            return IndirectCallExpr(
                node.candidates,
                self.rewrite_expr(node.selector, pre),
                tuple(self.rewrite_expr(a, pre) for a in node.args),
            )
        if isinstance(node, BinOp):
            return BinOp(
                node.op,
                self.rewrite_expr(node.left, pre),
                self.rewrite_expr(node.right, pre),
            )
        if isinstance(node, FloatOp):
            return FloatOp(
                node.op,
                self.rewrite_expr(node.left, pre),
                self.rewrite_expr(node.right, pre),
            )
        if isinstance(node, Cmp):
            return self.rewrite_cmp(node, pre)
        if isinstance(node, Mad):
            return Mad(
                self.rewrite_expr(node.a, pre),
                self.rewrite_expr(node.b, pre),
                self.rewrite_expr(node.c, pre),
                node.float_flavour,
            )
        if isinstance(node, Mufu):
            return Mufu(node.fn, self.rewrite_expr(node.arg, pre))
        if isinstance(node, Select):
            return Select(
                self.rewrite_cmp(node.cond, pre),
                self.rewrite_expr(node.if_true, pre),
                self.rewrite_expr(node.if_false, pre),
            )
        if isinstance(node, LoadGlobal):
            return LoadGlobal(self.rewrite_expr(node.addr, pre), node.offset)
        if isinstance(node, LoadShared):
            return LoadShared(self.rewrite_expr(node.addr, pre), node.offset)
        return node

    def inline_call(self, name: str, args: Tuple[Expr, ...], pre: List[Stmt]) -> Expr:
        callee = self.program.get(name)
        instance = next(self.counter)
        prefix = f"__inl{instance}_{name}_"

        rename: Dict[str, str] = {p: prefix + p for p in callee.params}
        for i, param in enumerate(callee.params):
            pre.append(Let(rename[param], args[i]))

        result_var = prefix + "__ret"
        body = self.rewrite_body(callee.body)  # inline transitively first
        renamed = [_rename_stmt(s, rename, prefix, result_var) for s in body]
        pre.extend(renamed)
        return Var(result_var)


def _rename_expr(node: Expr, rename: Dict[str, str], prefix: str) -> Expr:
    if isinstance(node, Var):
        return Var(rename.setdefault(node.name, prefix + node.name))
    if isinstance(node, BinOp):
        return BinOp(
            node.op,
            _rename_expr(node.left, rename, prefix),
            _rename_expr(node.right, rename, prefix),
        )
    if isinstance(node, FloatOp):
        return FloatOp(
            node.op,
            _rename_expr(node.left, rename, prefix),
            _rename_expr(node.right, rename, prefix),
        )
    if isinstance(node, Cmp):
        return Cmp(
            node.op,
            _rename_expr(node.left, rename, prefix),
            _rename_expr(node.right, rename, prefix),
        )
    if isinstance(node, Mad):
        return Mad(
            _rename_expr(node.a, rename, prefix),
            _rename_expr(node.b, rename, prefix),
            _rename_expr(node.c, rename, prefix),
            node.float_flavour,
        )
    if isinstance(node, Mufu):
        return Mufu(node.fn, _rename_expr(node.arg, rename, prefix))
    if isinstance(node, Select):
        return Select(
            _rename_expr(node.cond, rename, prefix),
            _rename_expr(node.if_true, rename, prefix),
            _rename_expr(node.if_false, rename, prefix),
        )
    if isinstance(node, LoadGlobal):
        return LoadGlobal(_rename_expr(node.addr, rename, prefix), node.offset)
    if isinstance(node, LoadShared):
        return LoadShared(_rename_expr(node.addr, rename, prefix), node.offset)
    if isinstance(node, CallExpr):
        return CallExpr(
            node.func, tuple(_rename_expr(a, rename, prefix) for a in node.args)
        )
    if isinstance(node, IndirectCallExpr):
        return IndirectCallExpr(
            node.candidates,
            _rename_expr(node.selector, rename, prefix),
            tuple(_rename_expr(a, rename, prefix) for a in node.args),
        )
    return node


def _rename_stmt(
    stmt: Stmt, rename: Dict[str, str], prefix: str, result_var: str
) -> Stmt:
    if isinstance(stmt, Let):
        value = _rename_expr(stmt.value, rename, prefix)
        return Let(rename.setdefault(stmt.name, prefix + stmt.name), value)
    if isinstance(stmt, StoreGlobal):
        return StoreGlobal(
            _rename_expr(stmt.addr, rename, prefix),
            _rename_expr(stmt.value, rename, prefix),
            stmt.offset,
        )
    if isinstance(stmt, StoreShared):
        return StoreShared(
            _rename_expr(stmt.addr, rename, prefix),
            _rename_expr(stmt.value, rename, prefix),
            stmt.offset,
        )
    if isinstance(stmt, StoreLocal):
        return StoreLocal(stmt.offset, _rename_expr(stmt.value, rename, prefix))
    if isinstance(stmt, ExprStmt):
        return ExprStmt(_rename_expr(stmt.expr, rename, prefix))
    if isinstance(stmt, Return):
        value = (
            _rename_expr(stmt.value, rename, prefix)
            if stmt.value is not None
            else Const(0)
        )
        return Let(result_var, value)
    if isinstance(stmt, If):
        return If(
            _rename_expr(stmt.cond, rename, prefix),
            tuple(_rename_stmt(s, rename, prefix, result_var) for s in stmt.then_body),
            tuple(_rename_stmt(s, rename, prefix, result_var) for s in stmt.else_body),
        )
    if isinstance(stmt, While):
        return While(
            _rename_expr(stmt.cond, rename, prefix),
            tuple(_rename_stmt(s, rename, prefix, result_var) for s in stmt.body),
        )
    if isinstance(stmt, For):
        return For(
            rename.setdefault(stmt.var, prefix + stmt.var),
            _rename_expr(stmt.start, rename, prefix),
            _rename_expr(stmt.stop, rename, prefix),
            _rename_expr(stmt.step, rename, prefix),
            tuple(_rename_stmt(s, rename, prefix, result_var) for s in stmt.body),
        )
    return stmt


def inline_program(program: ProgramDef) -> ProgramDef:
    """Fully inline a program (the LTO configuration of Fig 16).

    Kernels keep their names; device functions that remain call targets
    (recursive / address-taken / early-return) are retained, all others are
    dropped from the output program.
    """
    inliner = _Inliner(program)
    out = ProgramDef()
    still_needed: Set[str] = set()
    new_kernels: List[FunctionDef] = []
    for func in program.functions:
        if not func.is_kernel and func.name not in inliner.not_inlinable:
            continue
        body = inliner.rewrite_body(func.body)
        new_func = FunctionDef(
            name=func.name,
            params=list(func.params),
            body=body,
            is_kernel=func.is_kernel,
            shared_mem_bytes=func.shared_mem_bytes,
            reg_pressure=func.reg_pressure,
            recursion_bound=func.recursion_bound,
        )
        new_kernels.append(new_func)
        still_needed |= _callees_of(body)
    # Retain transitively-needed non-inlinable functions.
    for func in new_kernels:
        out.add(func)
    frontier = set(still_needed) - {f.name for f in out.functions}
    while frontier:
        name = frontier.pop()
        func = program.get(name)
        body = inliner.rewrite_body(func.body)
        out.add(
            FunctionDef(
                name=func.name,
                params=list(func.params),
                body=body,
                is_kernel=False,
                reg_pressure=func.reg_pressure,
                recursion_bound=func.recursion_bound,
            )
        )
        frontier |= _callees_of(body) - {f.name for f in out.functions}
    return out
