"""Register allocation implementing the GPU function-call ABI.

Virtual registers produced by :mod:`repro.frontend.lower` are assigned to:

* caller-saved scratch (R12..R15) when their live range does not cross a
  call site, or
* the contiguous callee-saved block starting at R16 when it does (or when
  scratch runs out) — exactly the registers the ABI obliges the callee to
  spill/fill, and the ones CARS renames instead.

Device functions get a prologue ``PUSH R16..R16+n-1`` and every return site
gets the matching ``POP`` before ``RET``; kernels push nothing (they have no
caller to preserve registers for).  The per-function FRU (Function Register
Usage, Section III of the paper) falls out of this pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Instruction, CALLEE_SAVED_BASE, MAX_REGS
from ..isa.opcodes import Opcode, is_call
from ..isa.program import Function, IsaError
from . import abi
from .lower import LoweredFunction, VREG_BASE, is_return_marker


def _successors(code: List[Instruction], labels: Dict[str, int]) -> List[List[int]]:
    """Conservative CFG successors per instruction index."""
    succs: List[List[int]] = []
    n = len(code)
    for i, inst in enumerate(code):
        out: List[int] = []
        if inst.op is Opcode.BRA:
            out.append(labels[inst.target])
        elif inst.op is Opcode.CBRA:
            out.append(labels[inst.target])
            if i + 1 < n:
                out.append(i + 1)
        elif inst.op is Opcode.SSY:
            # Reconvergence point is a possible continuation.
            out.append(labels[inst.target])
            if i + 1 < n:
                out.append(i + 1)
        elif inst.op in (Opcode.RET, Opcode.EXIT):
            pass
        elif is_return_marker(inst):
            pass
        else:
            if i + 1 < n:
                out.append(i + 1)
        succs.append(out)
    return succs


def _liveness(
    code: List[Instruction], succs: List[List[int]]
) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Backward dataflow: per-instruction live-in/live-out virtual registers."""
    n = len(code)
    uses: List[Set[int]] = []
    defs: List[Set[int]] = []
    for inst in code:
        uses.append({r for r in inst.srcs if r >= VREG_BASE})
        defs.append({r for r in inst.dst if r >= VREG_BASE})
    live_in: List[Set[int]] = [set() for _ in range(n)]
    live_out: List[Set[int]] = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out: Set[int] = set()
            for s in succs[i]:
                out |= live_in[s]
            new_in = uses[i] | (out - defs[i])
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i] = out
                live_in[i] = new_in
                changed = True
    return live_in, live_out


@dataclass
class _Interval:
    vreg: int
    start: int
    end: int
    cross_call: bool


def _intervals(
    code: List[Instruction],
    live_in: List[Set[int]],
    live_out: List[Set[int]],
) -> List[_Interval]:
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    cross: Set[int] = set()

    def touch(vreg: int, i: int) -> None:
        if vreg not in first:
            first[vreg] = i
        last[vreg] = i

    for i, inst in enumerate(code):
        for vreg in live_in[i]:
            touch(vreg, i)
        for vreg in live_out[i]:
            touch(vreg, i)
        for vreg in inst.dst:
            if vreg >= VREG_BASE:
                touch(vreg, i)
        for vreg in inst.srcs:
            if vreg >= VREG_BASE:
                touch(vreg, i)
        if is_call(inst.op):
            cross |= live_out[i]
    return sorted(
        (
            _Interval(v, first[v], last[v], v in cross)
            for v in first
        ),
        key=lambda iv: (iv.start, iv.end),
    )


class _LinearScan:
    """Linear-scan assignment within one register pool."""

    def __init__(self, pool: List[int]) -> None:
        self._free = list(reversed(pool))  # pop() takes the lowest number
        self._active: List[Tuple[int, int]] = []  # (end, reg)

    def allocate(self, interval: _Interval) -> Optional[int]:
        self._expire(interval.start)
        if not self._free:
            return None
        reg = self._free.pop()
        self._active.append((interval.end, reg))
        self._active.sort()
        return reg

    def _expire(self, point: int) -> None:
        while self._active and self._active[0][0] < point:
            _, reg = self._active.pop(0)
            self._free.append(reg)
            self._free.sort(reverse=True)


def allocate_registers(lowered: LoweredFunction) -> Function:
    """Assign virtual registers and materialize the final ABI function."""
    code = lowered.code
    succs = _successors(code, lowered.labels)
    live_in, live_out = _liveness(code, succs)
    intervals = _intervals(code, live_in, live_out)

    scratch_pool = list(
        range(abi.TEMP_REG_BASE, abi.TEMP_REG_BASE + abi.TEMP_REG_COUNT)
    )
    callee_pool = list(range(CALLEE_SAVED_BASE, MAX_REGS))
    scratch = _LinearScan(scratch_pool)
    callee = _LinearScan(callee_pool)

    mapping: Dict[int, int] = {}
    max_callee_used = -1
    for interval in intervals:
        reg: Optional[int] = None
        if not interval.cross_call:
            reg = scratch.allocate(interval)
        if reg is None:
            reg = callee.allocate(interval)
        if reg is None:
            raise IsaError(
                f"{lowered.name}: out of registers "
                f"(needs more than {MAX_REGS} architectural registers)"
            )
        mapping[interval.vreg] = reg
        if reg >= CALLEE_SAVED_BASE:
            max_callee_used = max(max_callee_used, reg)

    callee_count = 0
    if max_callee_used >= 0:
        callee_count = max_callee_used - CALLEE_SAVED_BASE + 1
    if not lowered.is_kernel:
        callee_count = max(callee_count, lowered.reg_pressure)
    if CALLEE_SAVED_BASE + callee_count > MAX_REGS:
        raise IsaError(f"{lowered.name}: callee-saved demand exceeds the ISA limit")

    def remap(reg: int) -> int:
        return mapping[reg] if reg >= VREG_BASE else reg

    needs_push = (not lowered.is_kernel) and callee_count > 0
    new_code: List[Instruction] = []
    index_map: List[int] = []  # old index -> new index

    if needs_push:
        new_code.append(
            Instruction(Opcode.PUSH, push_regs=(CALLEE_SAVED_BASE, callee_count))
        )

    for inst in code:
        index_map.append(len(new_code))
        if is_return_marker(inst):
            if needs_push:
                new_code.append(
                    Instruction(
                        Opcode.POP, push_regs=(CALLEE_SAVED_BASE, callee_count)
                    )
                )
            new_code.append(
                Instruction(Opcode.EXIT if lowered.is_kernel else Opcode.RET)
            )
            continue
        new_code.append(
            Instruction(
                op=inst.op,
                dst=tuple(remap(r) for r in inst.dst),
                srcs=tuple(remap(r) for r in inst.srcs),
                imm=inst.imm,
                target=inst.target,
                pdst=inst.pdst,
                psrc=inst.psrc,
                push_regs=inst.push_regs,
                is_spill=inst.is_spill,
                call_targets=inst.call_targets,
            )
        )

    labels = {
        name: (index_map[idx] if idx < len(index_map) else len(new_code))
        for name, idx in lowered.labels.items()
    }

    used_regs = [r for inst in new_code for r in inst.dst + inst.srcs]
    high = max(used_regs) if used_regs else abi.TEMP_REG_BASE
    num_regs = max(high + 1, CALLEE_SAVED_BASE)
    if callee_count:
        num_regs = max(num_regs, CALLEE_SAVED_BASE + callee_count)
    if lowered.is_kernel:
        num_regs = max(num_regs, CALLEE_SAVED_BASE + lowered.reg_pressure)

    func = Function(
        name=lowered.name,
        instructions=new_code,
        labels=labels,
        num_regs=num_regs,
        callee_saved=(CALLEE_SAVED_BASE, callee_count) if needs_push else None,
        is_kernel=lowered.is_kernel,
        shared_mem_bytes=lowered.shared_mem_bytes,
        recursion_bound=lowered.recursion_bound,
    )
    # FRU: kernels contribute their whole frame; device functions contribute
    # their callee-saved block plus one slot for the caller's saved RFP.
    func.fru = num_regs if lowered.is_kernel else callee_count + 1
    return func
