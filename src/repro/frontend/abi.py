"""The GPU function-call ABI constants.

Mirrors the contemporary NVIDIA ABI the paper profiles (Section II):

* a handful of read-only special registers,
* arguments and return values in caller-saved registers,
* a contiguous callee-saved block starting at R16 that callees must
  spill/fill (the traffic CARS eliminates).
"""

from __future__ import annotations

from ..isa.instructions import CALLEE_SAVED_BASE

#: Read-only special registers, set by hardware at launch.
REG_TID = 0  # thread index within the block
REG_BID = 1  # block index within the grid
REG_NTID = 2  # threads per block
REG_NCTAID = 3  # blocks in the grid

SPECIAL_REGS = {
    "tid": REG_TID,
    "bid": REG_BID,
    "ntid": REG_NTID,
    "nctaid": REG_NCTAID,
}

#: Argument / return-value registers (caller-saved).
ARG_REG_BASE = 4
MAX_REG_ARGS = 8  # R4..R11
RETURN_REG = 4

#: Scratch caller-saved registers usable for expression temporaries.
TEMP_REG_BASE = 12
TEMP_REG_COUNT = 4  # R12..R15

#: First callee-saved register (re-exported for convenience).
CALLEE_SAVED_START = CALLEE_SAVED_BASE

#: Bytes per register lane (4B x 32 lanes = 128B per warp register).
BYTES_PER_REG_LANE = 4
