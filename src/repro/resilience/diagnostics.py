"""Structured diagnostic dumps for wedged or over-budget simulations.

When the timing model deadlocks, livelocks, or exhausts its cycle budget,
the bare exception message ("deadlock at cycle N") is useless for finding
*which* warp is stuck behind *what*.  :func:`collect_dump` snapshots the
state a human needs:

* per-warp: fetch cursor (the trace-level "pc"), park reason, scheduler
  bounds (``ready_at``/``next_issue``), outstanding loads, the scoreboard
  registers the head µop is waiting on, and — under CARS — the register
  stack's RFP/RSP/depth and residency;
* the memory hierarchy's in-flight census (queue depths, MSHR occupancy
  and waiter counts, scheduled fills);
* the CPI-stack picture: idle cycles attributed so far plus the recent
  stall-window trail kept by the watchdog.

The dump rides on the exception (``exc.diagnostics``) and renders to a
readable block via :meth:`DiagnosticDump.render`; ``to_dict`` gives the
same data as plain JSON-able structures for tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.uop import UopKind
from ..core.warp import NEVER

#: Cap on warp lines in the rendered dump (to_dict always carries all).
_RENDER_WARP_LIMIT = 48


def _fmt_cycle(value: int) -> Any:
    """NEVER-parked bounds render as the sentinel name, not 2**60."""
    return "NEVER" if value >= NEVER else value


def _park_reason(sm, warp, cycle: int) -> str:
    """Why this warp cannot issue right now (mirrors ``SM._ready``)."""
    if warp.done:
        return "done"
    if warp.stalled:
        return "reg_alloc_stall"
    if warp.switched_out:
        return "switched_out"
    if warp.waiting_barrier:
        return "barrier"
    if warp.next_issue >= NEVER:
        return "blocking_fill"
    if warp.next_issue > cycle:
        return "pipeline_latency"
    if not warp.uops:
        return "fetch" if warp.cursor < len(warp.records) else "drained"
    head = warp.uops[0]
    if (
        head.kind == UopKind.MEM
        and not head.is_store
        and warp.outstanding_loads >= sm._max_out
    ):
        return "max_outstanding_loads"
    get = warp.reg_ready.get
    pending_load = False
    blocked = False
    for reg in head.deps:
        t = get(reg, 0)
        if t > cycle:
            blocked = True
            if t >= NEVER:
                pending_load = True
    if pending_load:
        return "load_pending"
    if blocked:
        return "scoreboard"
    return "runnable"


def _warp_state(sm, warp, cycle: int) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "sm": sm.sm_id,
        "warp": warp.global_index,
        "slot": warp.slot,
        "pc": warp.cursor,
        "records": len(warp.records),
        "park": _park_reason(sm, warp, cycle),
        "ready_at": _fmt_cycle(warp.ready_at),
        "next_issue": _fmt_cycle(warp.next_issue),
        "outstanding_loads": warp.outstanding_loads,
        "uops_pending": len(warp.uops),
    }
    if warp.uops:
        waiting: Dict[int, Any] = {}
        get = warp.reg_ready.get
        for reg in warp.uops[0].deps:
            t = get(reg, 0)
            if t > cycle:
                waiting[reg] = _fmt_cycle(t)
        if waiting:
            state["scoreboard"] = waiting
    if warp.cars is not None:
        state["stack"] = warp.cars.state_dict()
    return state


@dataclass
class DiagnosticDump:
    """Snapshot of the simulation at the point of failure."""

    reason: str
    cycle: int
    kernel: str
    blocks_remaining: int
    pending_blocks: int
    micro_ops: int
    warps: List[Dict[str, Any]] = field(default_factory=list)
    mem: Dict[str, Any] = field(default_factory=dict)
    idle_buckets: Dict[str, int] = field(default_factory=dict)
    issued_cycles: int = 0
    #: Most recent (cycle, span, bucket) idle windows, oldest first.
    stall_trail: List[Tuple[int, int, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "cycle": self.cycle,
            "kernel": self.kernel,
            "blocks_remaining": self.blocks_remaining,
            "pending_blocks": self.pending_blocks,
            "micro_ops": self.micro_ops,
            "warps": list(self.warps),
            "mem": dict(self.mem),
            "idle_buckets": dict(self.idle_buckets),
            "issued_cycles": self.issued_cycles,
            "stall_trail": [list(entry) for entry in self.stall_trail],
        }

    def render(self) -> str:
        lines = [
            f"=== diagnostic dump: {self.reason} at cycle {self.cycle} "
            f"(kernel {self.kernel!r}) ===",
            f"blocks remaining: {self.blocks_remaining} "
            f"({self.pending_blocks} not yet assigned to an SM)",
            f"micro-ops retired: {self.micro_ops}; "
            f"issue cycles: {self.issued_cycles}",
        ]
        if self.idle_buckets:
            shares = ", ".join(
                f"{bucket}={span}"
                for bucket, span in sorted(
                    self.idle_buckets.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"idle cycles by bucket: {shares}")
        if self.stall_trail:
            tail = self.stall_trail[-8:]
            trail = ", ".join(
                f"@{cycle}+{span}:{bucket}" for cycle, span, bucket in tail
            )
            lines.append(f"recent stall windows: {trail}")
        if self.mem:
            mshrs = self.mem.get("l1_mshrs", [])
            busy = [
                f"sm{sm_id}:{entry['sectors']}mshr/{entry['waiters']}wait"
                for sm_id, entry in enumerate(mshrs)
                if entry["sectors"] or entry["waiters"]
            ]
            lines.append(
                "memory: "
                f"l1_queues={self.mem.get('l1_queues')} "
                f"l2_queue={self.mem.get('l2_queue')} "
                f"l2_mshr={self.mem.get('l2_mshr_sectors')} "
                f"dram_queue={self.mem.get('dram_queue')} "
                f"fills_in_flight={self.mem.get('inflight_fills')} "
                f"hits_in_flight={self.mem.get('inflight_hits')}"
            )
            if busy:
                lines.append("l1 mshr census: " + ", ".join(busy))
        interesting = [w for w in self.warps if w["park"] != "done"]
        shown = interesting[:_RENDER_WARP_LIMIT]
        lines.append(
            f"warps: {len(self.warps)} resident, "
            f"{len(interesting)} not retired"
        )
        for w in shown:
            extra = ""
            if "scoreboard" in w:
                regs = ", ".join(
                    f"r{reg}@{t}" for reg, t in w["scoreboard"].items()
                )
                extra += f" waits[{regs}]"
            if "stack" in w:
                s = w["stack"]
                extra += (
                    f" stack[rfp={s['rfp']} rsp={s['rsp']} depth={s['depth']}"
                    f" resident={s['resident_regs']}/{s['capacity']}]"
                )
            lines.append(
                f"  sm{w['sm']} w{w['warp']}: {w['park']} pc={w['pc']}/"
                f"{w['records']} ready_at={w['ready_at']} "
                f"next_issue={w['next_issue']} "
                f"loads={w['outstanding_loads']}{extra}"
            )
        if len(interesting) > len(shown):
            lines.append(f"  ... (+{len(interesting) - len(shown)} more)")
        return "\n".join(lines)


def collect_dump(
    gpu,
    cycle: int,
    *,
    reason: str,
    idle_buckets: Optional[Dict[str, int]] = None,
    issued_cycles: int = 0,
    trail=None,
) -> DiagnosticDump:
    """Snapshot *gpu* into a :class:`DiagnosticDump` (read-only)."""
    warps: List[Dict[str, Any]] = []
    for sm in gpu.sms:
        for warp in sm.warps:
            warps.append(_warp_state(sm, warp, cycle))
    trace = getattr(gpu.ctx, "trace", None)
    kernel = trace.kernel if trace is not None else "?"
    return DiagnosticDump(
        reason=reason,
        cycle=cycle,
        kernel=kernel,
        blocks_remaining=gpu._blocks_remaining,
        pending_blocks=len(gpu._pending),
        micro_ops=gpu.stats.micro_ops,
        warps=warps,
        mem=gpu.mem.census(),
        idle_buckets=dict(idle_buckets or {}),
        issued_cycles=issued_cycles,
        stall_trail=list(trail) if trail is not None else [],
    )
