"""Guardrail self-check: inject one fault per class, expect the right alarm.

``python -m repro selfcheck`` (and the CI smoke job) run a miniature
meta-validation battery: a small CARS workload whose every fill event is
load-bearing (chained loads feeding a deep call chain) is simulated once
under an empty fault plan to count event ordinals, then once per fault
class with a seeded single-fault plan.  Each run must end in the *exact*
typed exception its fault class maps to — or, for the delay control,
complete with conservation intact:

* ``drop_fill`` → :class:`~repro.resilience.errors.DeadlockError` with a
  non-empty diagnostic dump (the structural no-future-events check);
* ``delay_fill`` → completion, at least as many cycles as the clean run
  (proves delays propagate without tripping a false alarm);
* ``corrupt_stack`` → :class:`~repro.resilience.errors.InvariantViolation`
  (``WarpRegisterStack.check_invariants``);
* ``starve_mshr`` → :class:`~repro.resilience.errors.DeadlockError` from
  the zero-retirement watchdog (a replay livelock, not a deadlock);
* ``drop_idle_charge`` → :class:`~repro.resilience.errors.InvariantViolation`
  from the CPI-stack conservation check in ``GPU.run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..callgraph import analyze_kernel, build_call_graph
from ..config import volta
from ..core.backends import resolve_backend
from ..core.techniques import CARS_LOW
from ..frontend import builder as b
from ..metrics.counters import SimStats
from ..workloads import KernelLaunch, Workload
from .errors import DeadlockError, InvariantViolation, SimulationError
from .faults import FaultPlan, StarveMSHR, inject_faults, seeded_plan
from .watchdog import Watchdog

#: Fault classes the battery exercises, in report order.
SELFCHECK_CLASSES = (
    "drop_fill",
    "delay_fill",
    "corrupt_stack",
    "starve_mshr",
    "drop_idle_charge",
)

#: Small watchdog window for the starvation case: the injected livelock
#: replays every cycle, so a few thousand zero-retirement cycles is proof.
_STARVE_WINDOW = 5_000

_MAX_CYCLES = 2_000_000


@dataclass
class CheckReport:
    """Outcome of one fault-class probe."""

    fault_class: str
    fault: str
    expected: str
    outcome: str
    ok: bool
    detail: str = ""


def guardrail_workload() -> Workload:
    """Deep CARS calls + chained loads: every fill event is load-bearing.

    Each load's destination feeds the next instruction, so dropping *any*
    fill wedges its warp — the battery's fault positions can be seeded
    anywhere in the observed ordinal range.
    """
    prog = b.program()
    depth = 4
    for level in range(1, depth):
        b.device(prog, f"f{level}", ["x"],
                 [b.ret(b.call(f"f{level + 1}", b.v("x") + level))],
                 reg_pressure=8)
    b.device(prog, f"f{depth}", ["x"], [b.ret(b.v("x") * 2 + 1)],
             reg_pressure=8)
    b.kernel(prog, "main", ["out"], [
        b.let("i", b.gid()),
        b.let("a", b.load(b.v("out") + (b.v("i") * 131 & 8191))),
        b.let("r", b.call("f1", b.v("a"))),
        b.let("c", b.load(b.v("out") + (b.v("r") * 17 & 8191))),
        b.store(b.v("out") + b.v("i"), b.v("c")),
    ])
    return Workload(name="selfcheck", suite="t", program=prog,
                    launches=[KernelLaunch("main", 2, 32, (1 << 20,))])


def _run_guarded(
    workload: Workload,
    *,
    watchdog: Optional[Watchdog] = None,
    max_cycles: int = _MAX_CYCLES,
    backend: str = "event",
) -> SimStats:
    """One CARS_LOW launch of *workload* on a fresh GPU."""
    technique = CARS_LOW
    cfg = technique.adjust_config(volta())
    trace = workload.traces(inlined=technique.use_inlined)[0]
    stats = SimStats()
    analysis = analyze_kernel(build_call_graph(workload.module()), trace.kernel)
    ctx = technique.make_context(trace, cfg, stats, analysis)
    gpu = resolve_backend(backend).gpu_cls(cfg, ctx, stats)
    gpu.run(trace, max_cycles=max_cycles, watchdog=watchdog)
    return stats


def run_selfcheck(seed: int = 0, backend: str = "event") -> List[CheckReport]:
    """Run the full battery; one report per fault class.

    *backend* runs every probe (and the ordinal-counting clean run) under
    a different timing backend — the guardrails are part of the backend
    contract, so each registered backend must convert every fault class
    into the same typed alarm.
    """
    workload = guardrail_workload()
    with inject_faults() as counting:
        clean = _run_guarded(workload, backend=backend)
    plans = seeded_plan(seed, counting.counters, SELFCHECK_CLASSES)
    reports: List[CheckReport] = []
    for name in SELFCHECK_CLASSES:
        plan = plans.get(name)
        if plan is None:
            reports.append(CheckReport(
                fault_class=name, fault="(no event of this class observed)",
                expected="n/a", outcome="skipped", ok=False,
                detail="counting run produced no target events",
            ))
            continue
        reports.append(_probe(workload, name, plan, clean, backend=backend))
    return reports


def _probe(
    workload: Workload, name: str, plan: FaultPlan, clean: SimStats,
    *, backend: str = "event",
) -> CheckReport:
    fault = plan.faults[0]
    watchdog = None
    if isinstance(fault, StarveMSHR):
        watchdog = Watchdog(window=_STARVE_WINDOW)
    expected = {
        "drop_fill": "DeadlockError",
        "delay_fill": "completes (>= clean cycles)",
        "corrupt_stack": "InvariantViolation",
        "starve_mshr": "DeadlockError (watchdog)",
        "drop_idle_charge": "InvariantViolation",
    }[name]
    try:
        with inject_faults(plan) as session:
            stats = _run_guarded(workload, watchdog=watchdog, backend=backend)
    except SimulationError as exc:
        outcome = type(exc).__name__
        dump = exc.diagnostics
        if name in ("drop_fill", "starve_mshr"):
            ok = isinstance(exc, DeadlockError)
            detail = ""
            if ok and (dump is None or not dump.warps):
                ok = False
                detail = "deadlock raised without a diagnostic dump"
            elif ok:
                detail = f"dump covers {len(dump.warps)} warps"
        elif name in ("corrupt_stack", "drop_idle_charge"):
            ok = isinstance(exc, InvariantViolation)
            detail = str(exc)
        else:
            ok = False
            detail = f"unexpected failure: {exc}"
        return CheckReport(
            fault_class=name, fault=repr(fault), expected=expected,
            outcome=outcome, ok=ok, detail=detail,
        )
    if name == "delay_fill":
        ok = bool(session.triggered) and stats.cycles >= clean.cycles
        return CheckReport(
            fault_class=name, fault=repr(fault), expected=expected,
            outcome=f"completed in {stats.cycles} cycles",
            ok=ok,
            detail=f"clean run took {clean.cycles} cycles",
        )
    return CheckReport(
        fault_class=name, fault=repr(fault), expected=expected,
        outcome=f"completed in {stats.cycles} cycles", ok=False,
        detail="fault was not detected by any guardrail",
    )


def render_report(reports: List[CheckReport]) -> str:
    lines = ["guardrail self-check:"]
    for report in reports:
        mark = "OK  " if report.ok else "FAIL"
        lines.append(
            f"  [{mark}] {report.fault_class:<18} {report.fault}"
        )
        lines.append(
            f"         expected {report.expected}; got {report.outcome}"
            + (f" ({report.detail})" if report.detail else "")
        )
    passed = sum(1 for r in reports if r.ok)
    lines.append(f"{passed}/{len(reports)} fault classes detected correctly")
    return "\n".join(lines)
