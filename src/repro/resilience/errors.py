"""Typed failure taxonomy for the simulator and harness.

Every way a simulation or sweep can fail maps to one subclass of
:class:`SimulationError`, so callers (and the CLI's exit-code mapping)
can tell a wedged timing model from an exhausted cycle budget from a
corrupted invariant from a crashed worker:

* :class:`DeadlockError` — the timing model stopped making forward
  progress (no future events, or the watchdog saw a zero-retirement
  window).  Carries a :class:`~repro.resilience.diagnostics.DiagnosticDump`.
* :class:`MaxCyclesError` — the run exceeded its ``max_cycles`` budget
  while work remained.  Also carries a dump (the state *at* the budget).
* :class:`InvariantViolation` — internal bookkeeping broke: CPI-stack
  accounting leaks, register-stack corruption, impossible register
  balances.  ``RegisterStackError`` in :mod:`repro.cars.register_stack`
  subclasses this.
* :class:`WorkerCrashError` — a sweep request failed outside the model
  itself (worker process died, retries exhausted); carries the worker's
  formatted traceback.  ``ExecutorError`` subclasses this.
* :class:`UnknownTechniqueError` — a technique name matched neither the
  registry nor any registered parametric family.  Also a ``KeyError``,
  so pre-existing ``except KeyError`` callers keep working; carries
  difflib "did you mean" suggestions.
* :class:`UnsupportedFeatureError` — a harness feature (checkpointing,
  …) was requested from a timing backend that deliberately does not
  implement it; raised before any state changes so the caller can fall
  back to the event-driven backend.

This module is a leaf — it imports nothing from ``repro`` — so every
layer (core, cars, mem, harness, cli) can use it without import cycles.
Exceptions keep ``args == (message,)`` and store the extras in instance
attributes, so they pickle cleanly across process-pool boundaries.
"""

from __future__ import annotations

import difflib
from typing import Optional, Sequence


class SimulationError(RuntimeError):
    """Base class for every typed simulator/harness failure.

    ``diagnostics`` (when present) is a
    :class:`~repro.resilience.diagnostics.DiagnosticDump`; the message
    stays short so logs are readable, and the dump carries the detail.
    """

    def __init__(self, message: str = "", *, diagnostics=None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class DeadlockError(SimulationError):
    """The timing model stopped making forward progress.

    Raised either structurally (no warp can issue and no memory event is
    pending while blocks remain) or by the no-forward-progress watchdog
    (a cycle window passed with zero retired µops — a livelock).
    """


class MaxCyclesError(SimulationError):
    """The run exceeded its ``max_cycles`` budget with work remaining.

    The boundary contract (pinned by ``tests/test_max_cycles_boundary``):
    a run whose total length is ``T`` cycles completes iff
    ``max_cycles >= T - 1``; both the per-cycle guard and the
    fast-forward clamp fire at cycle ``max_cycles + 1``.
    """


class InvariantViolation(SimulationError):
    """Internal model bookkeeping failed a self-check.

    Covers CPI-stack conservation leaks, register-stack corruption
    (``RegisterStackError``), and impossible register balances during
    CARS context switches.
    """


class WorkerCrashError(SimulationError):
    """A sweep request failed outside the timing model's own guards.

    ``worker_traceback`` preserves the failing worker's formatted
    traceback (remote tracebacks included) instead of swallowing it.
    """

    def __init__(
        self,
        message: str = "",
        *,
        worker_traceback: Optional[str] = None,
        diagnostics=None,
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.worker_traceback = worker_traceback


class UnsupportedFeatureError(SimulationError):
    """A feature was requested from a backend that cannot provide it.

    The timing-backend registry (:mod:`repro.core.backends`) lets every
    backend implement the same simulation contract, but optional harness
    features — today: checkpoint/resume, which pickles the live warp
    state — may be deliberately unsupported by a backend.  Requesting
    such a combination raises this error *before* any state changes, so
    callers can fall back (e.g. rerun under ``backend="event"``) instead
    of discovering a corrupt checkpoint later.  ``feature`` and
    ``backend`` name the offending pair.
    """

    def __init__(
        self,
        message: str = "",
        *,
        feature: str = "",
        backend: str = "",
        diagnostics=None,
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.feature = feature
        self.backend = backend


class StoreCorruptionError(SimulationError):
    """The result store holds torn, truncated, or undecodable entries.

    Raised by ``ResultStore.verify(strict=True)`` (``repro cache
    verify``) after the offending files have been moved to the store's
    ``quarantine/`` directory, so a corrupted cache is contained rather
    than silently served or repeatedly re-crashing sweeps.
    ``quarantined`` lists the quarantined file names.
    """

    def __init__(
        self,
        message: str = "",
        *,
        quarantined: Sequence[str] = (),
        diagnostics=None,
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.quarantined = tuple(quarantined)


class ServiceError(SimulationError):
    """Base class for service-layer (job queue / HTTP) failures.

    Every subclass carries an ``http_status`` and a stable machine
    ``code`` so the HTTP adapter can map failures to distinct response
    statuses and the client can re-raise the same typed error from a
    response body (:mod:`repro.service.errors` defines the concrete
    admission/queue/job subclasses).
    """

    #: HTTP response status the adapter maps this failure to.
    http_status: int = 500
    #: Stable machine-readable code carried in response bodies.
    code: str = "service_error"


class DeadlineExceededError(ServiceError):
    """A job (or one of its requests) outlived its submission deadline.

    Deadline-exceeded jobs are *cancelled*, not failed: the work is
    abandoned (results already committed to the store stay), the job is
    journalled ``cancelled`` with reason ``deadline``, and both the HTTP
    adapter (504) and the CLI exit code (:data:`EXIT_DEADLINE`) report
    it distinctly from every other failure class.
    """

    http_status = 504
    code = "deadline_exceeded"


class UnknownTechniqueError(SimulationError, KeyError):
    """A technique name resolved to nothing.

    Subclasses both :class:`SimulationError` (typed taxonomy, own exit
    code) and :class:`KeyError` (the historical contract of
    ``resolve_technique``).  ``suggestions`` holds close-match names.
    """

    def __init__(
        self, message: str = "", *, suggestions: Sequence[str] = (), diagnostics=None
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.suggestions = tuple(suggestions)

    # KeyError.__str__ would repr() the message; keep it readable.
    __str__ = RuntimeError.__str__

    @classmethod
    def for_name(
        cls, name: str, known: Sequence[str]
    ) -> "UnknownTechniqueError":
        """Build the error with difflib did-you-mean suggestions."""
        suggestions = difflib.get_close_matches(name, list(known), n=3, cutoff=0.5)
        message = f"unknown technique {name!r}"
        if suggestions:
            message += " (did you mean: " + ", ".join(suggestions) + "?)"
        return cls(message, suggestions=suggestions)


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------

#: Distinct process exit codes per failure class (0 = success, 1 = normal
#: gate/usage failures, 2+ = typed simulation failures).  README's "When a
#: run fails" section documents this mapping; keep them in lockstep.
EXIT_SIMULATION = 2
EXIT_DEADLOCK = 3
EXIT_MAX_CYCLES = 4
EXIT_INVARIANT = 5
EXIT_WORKER_CRASH = 6
EXIT_UNKNOWN_TECHNIQUE = 7
EXIT_UNSUPPORTED_FEATURE = 8
EXIT_SERVICE = 9
EXIT_DEADLINE = 10
EXIT_STORE_CORRUPTION = 11

_EXIT_BY_CLASS = (
    (DeadlockError, EXIT_DEADLOCK),
    (MaxCyclesError, EXIT_MAX_CYCLES),
    (StoreCorruptionError, EXIT_STORE_CORRUPTION),
    (InvariantViolation, EXIT_INVARIANT),
    (WorkerCrashError, EXIT_WORKER_CRASH),
    (UnknownTechniqueError, EXIT_UNKNOWN_TECHNIQUE),
    (UnsupportedFeatureError, EXIT_UNSUPPORTED_FEATURE),
    (DeadlineExceededError, EXIT_DEADLINE),
    (ServiceError, EXIT_SERVICE),
)


def exit_code_for(exc: BaseException) -> int:
    """Process exit code for *exc* (most specific class wins)."""
    for cls, code in _EXIT_BY_CLASS:
        if isinstance(exc, cls):
            return code
    if isinstance(exc, SimulationError):
        return EXIT_SIMULATION
    return 1
