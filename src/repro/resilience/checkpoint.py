"""Checkpoint/resume for long simulations.

A checkpoint freezes one kernel launch mid-run — the whole object graph
(GPU, SMs, warps, CARS register stacks, memory hierarchy, accumulated
``SimStats``) plus the loop state the accounting needs (current cycle,
issue-cycle count, idle-bucket attribution) — at an idle-stretch boundary
of the event loop, where no half-applied cycle exists.

File format (schema-versioned, see ``docs/architecture.md`` §11):

* line 1 — magic: ``repro-checkpoint``
* line 2 — JSON metadata: ``schema``, ``cycle``, ``kernel``,
  ``blocks_remaining`` (readable without unpickling via
  :func:`read_meta`)
* rest — the pickled payload dict (``gpu``, ``trace``, ``cycle``,
  ``issued_cycles``, ``idle_buckets``)

Determinism: resuming replays the identical event sequence, so a resumed
run's final :class:`~repro.metrics.counters.SimStats` is byte-identical
to the uninterrupted run's (pinned by ``tests/test_resilience_checkpoint``).
Checkpoints are *not* portable across simulator source changes — like the
result store, treat them as crash insurance, not archival data.

Observability sessions (tracers hold open ring buffers and per-warp
caches keyed into live objects) are not checkpointable; ``GPU.run``
rejects ``checkpoint=`` together with an ``ObsSession``.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .errors import SimulationError

#: Bump on any layout change to the payload or metadata line; mismatched
#: checkpoints refuse to load instead of resuming corrupt state.
CHECKPOINT_SCHEMA_VERSION = 1

_MAGIC = b"repro-checkpoint\n"


class CheckpointError(SimulationError):
    """A checkpoint could not be written, read, or validated."""


class CheckpointPolicy:
    """When and where ``GPU._run_loop`` writes checkpoints.

    Args:
        directory: target directory (created on first save).
        every_cycles: minimum simulated cycles between saves.  Saves land
            on idle-stretch boundaries, so the actual spacing is "the
            first idle boundary at or after the due cycle".
        keep: newest checkpoints retained; older ones are pruned.
        prefix: filename prefix (``<prefix>-<cycle>.ckpt``).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every_cycles: int = 1_000_000,
        *,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        if every_cycles <= 0:
            raise ValueError("every_cycles must be positive")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.every_cycles = every_cycles
        self.keep = keep
        self.prefix = prefix
        self.next_due = every_cycles
        self.saved: List[Path] = []

    def save(
        self,
        gpu,
        trace,
        cycle: int,
        issued_cycles: int,
        idle_buckets: Dict[str, int],
    ) -> Path:
        """Write one checkpoint; prunes beyond ``keep``; returns the path."""
        if gpu.obs is not None:
            raise CheckpointError(
                "cannot checkpoint a run with an active ObsSession "
                "(tracer state is not serializable); run without obs= "
                "or without checkpoint="
            )
        self.next_due = cycle + self.every_cycles
        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "cycle": cycle,
            "kernel": trace.kernel,
            "blocks_remaining": gpu._blocks_remaining,
        }
        payload = {
            "gpu": gpu,
            "trace": trace,
            "cycle": cycle,
            "issued_cycles": issued_cycles,
            "idle_buckets": dict(idle_buckets),
        }
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"simulation state is not serializable: {exc}"
            ) from exc
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{self.prefix}-{cycle:012d}.ckpt"
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(json.dumps(meta, sort_keys=True).encode() + b"\n")
            fh.write(blob)
        os.replace(tmp, path)
        self.saved.append(path)
        while len(self.saved) > self.keep:
            stale = self.saved.pop(0)
            try:
                stale.unlink()
            except OSError:
                pass
        return path


class DrainInterrupt(SimulationError):
    """A run was checkpointed and stopped on purpose (graceful drain).

    Raised by a :class:`DrainController` policy right *after* the
    checkpoint hit disk, at an idle-stretch boundary where no
    half-applied cycle exists — so the caller (the service's SIGTERM
    handler, typically) can exit immediately and a restart resumes from
    the saved state with byte-identical final statistics.  This is a
    cooperative shutdown signal, not a failure: the executor's retry
    machinery lets it propagate untouched instead of recording a crash.
    """

    def __init__(
        self, message: str = "", *, path: Optional[Path] = None,
        cycle: int = 0, diagnostics=None,
    ) -> None:
        super().__init__(message, diagnostics=diagnostics)
        self.path = path
        self.cycle = cycle


class _DrainCheckpoint(CheckpointPolicy):
    """A checkpoint policy that turns a drain request into save-and-stop.

    Until the controller's event is set it behaves like its base (saving
    every ``every_cycles``, which defaults to "never" here); once drain
    is requested, ``next_due`` collapses to zero so the run loop saves at
    the very next idle-stretch boundary, and that save raises
    :class:`DrainInterrupt` carrying the checkpoint path.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        event: threading.Event,
        every_cycles: int,
        *,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        self._event = event
        super().__init__(directory, every_cycles, keep=keep, prefix=prefix)

    @property
    def next_due(self) -> int:
        return 0 if self._event.is_set() else self._base_due

    @next_due.setter
    def next_due(self, value: int) -> None:
        self._base_due = value

    def save(self, gpu, trace, cycle, issued_cycles, idle_buckets) -> Path:
        path = super().save(gpu, trace, cycle, issued_cycles, idle_buckets)
        if self._event.is_set():
            raise DrainInterrupt(
                f"run drained at cycle {cycle}: checkpoint {path}",
                path=path, cycle=cycle,
            )
        return path


class DrainController:
    """Shared drain switch for every in-flight checkpointable run.

    The service hands each run a policy from :meth:`policy_for`; calling
    :meth:`drain` (from a signal handler or another thread — the switch
    is a :class:`threading.Event`) makes every armed run save a
    checkpoint at its next idle-stretch boundary and stop with
    :class:`DrainInterrupt`.  Runs armed after the drain fire at their
    first boundary, so a drain request can never be lost to a race.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    @property
    def draining(self) -> bool:
        return self._event.is_set()

    def drain(self) -> None:
        """Request save-and-stop on every armed run (idempotent)."""
        self._event.set()

    def reset(self) -> None:
        """Re-arm after a completed drain (a restarted service does this)."""
        self._event.clear()

    def policy_for(
        self,
        directory: Union[str, Path],
        *,
        every_cycles: Optional[int] = None,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> CheckpointPolicy:
        """A drain-armed policy writing to *directory*.

        ``every_cycles=None`` means "only on drain" — no periodic saves;
        pass a cycle count to also keep rolling crash-insurance
        checkpoints while the run is healthy.
        """
        return _DrainCheckpoint(
            directory, self._event,
            every_cycles if every_cycles is not None else 1 << 62,
            keep=keep, prefix=prefix,
        )


def read_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """The metadata line alone — cheap, no unpickling."""
    with open(path, "rb") as fh:
        if fh.readline() != _MAGIC:
            raise CheckpointError(f"{path}: not a repro checkpoint")
        try:
            meta = json.loads(fh.readline().decode())
        except ValueError as exc:
            raise CheckpointError(f"{path}: corrupt metadata line") from exc
    if meta.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint schema v{meta.get('schema')} does not "
            f"match this build's v{CHECKPOINT_SCHEMA_VERSION}"
        )
    return meta


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate and unpickle a checkpoint's full payload."""
    read_meta(path)  # magic + schema validation
    with open(path, "rb") as fh:
        fh.readline()
        fh.readline()
        try:
            payload = pickle.loads(fh.read())
        except Exception as exc:
            raise CheckpointError(f"{path}: corrupt payload: {exc}") from exc
    for key in ("gpu", "trace", "cycle", "issued_cycles", "idle_buckets"):
        if key not in payload:
            raise CheckpointError(f"{path}: payload missing {key!r}")
    return payload


def latest_checkpoint(
    directory: Union[str, Path], prefix: str = "ckpt"
) -> Optional[Path]:
    """Newest checkpoint in *directory* (by cycle in the name), or None."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob(f"{prefix}-*.ckpt"))
    return candidates[-1] if candidates else None


def resume_run(
    source: Union[str, Path, Dict[str, Any]],
    *,
    max_cycles: int = 50_000_000,
    watchdog=None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> Tuple[Any, int]:
    """Resume a checkpointed launch and run it to completion.

    *source* is a checkpoint path or an already-loaded payload dict.
    ``max_cycles`` keeps its absolute meaning (total cycles since launch,
    not since the checkpoint).  Returns ``(gpu, final_cycle)``; the
    resumed run's merged stats live on ``gpu.stats``.
    """
    payload = (
        source if isinstance(source, dict) else load_checkpoint(source)
    )
    gpu = payload["gpu"]
    cycle = gpu._finish_run(
        payload["trace"],
        max_cycles,
        payload["cycle"],
        payload["issued_cycles"],
        dict(payload["idle_buckets"]),
        watchdog,
        checkpoint,
    )
    return gpu, cycle
