"""Checkpoint/resume for long simulations.

A checkpoint freezes one kernel launch mid-run — the whole object graph
(GPU, SMs, warps, CARS register stacks, memory hierarchy, accumulated
``SimStats``) plus the loop state the accounting needs (current cycle,
issue-cycle count, idle-bucket attribution) — at an idle-stretch boundary
of the event loop, where no half-applied cycle exists.

File format (schema-versioned, see ``docs/architecture.md`` §11):

* line 1 — magic: ``repro-checkpoint``
* line 2 — JSON metadata: ``schema``, ``cycle``, ``kernel``,
  ``blocks_remaining`` (readable without unpickling via
  :func:`read_meta`)
* rest — the pickled payload dict (``gpu``, ``trace``, ``cycle``,
  ``issued_cycles``, ``idle_buckets``)

Determinism: resuming replays the identical event sequence, so a resumed
run's final :class:`~repro.metrics.counters.SimStats` is byte-identical
to the uninterrupted run's (pinned by ``tests/test_resilience_checkpoint``).
Checkpoints are *not* portable across simulator source changes — like the
result store, treat them as crash insurance, not archival data.

Observability sessions (tracers hold open ring buffers and per-warp
caches keyed into live objects) are not checkpointable; ``GPU.run``
rejects ``checkpoint=`` together with an ``ObsSession``.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .errors import SimulationError

#: Bump on any layout change to the payload or metadata line; mismatched
#: checkpoints refuse to load instead of resuming corrupt state.
CHECKPOINT_SCHEMA_VERSION = 1

_MAGIC = b"repro-checkpoint\n"


class CheckpointError(SimulationError):
    """A checkpoint could not be written, read, or validated."""


class CheckpointPolicy:
    """When and where ``GPU._run_loop`` writes checkpoints.

    Args:
        directory: target directory (created on first save).
        every_cycles: minimum simulated cycles between saves.  Saves land
            on idle-stretch boundaries, so the actual spacing is "the
            first idle boundary at or after the due cycle".
        keep: newest checkpoints retained; older ones are pruned.
        prefix: filename prefix (``<prefix>-<cycle>.ckpt``).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every_cycles: int = 1_000_000,
        *,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        if every_cycles <= 0:
            raise ValueError("every_cycles must be positive")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.every_cycles = every_cycles
        self.keep = keep
        self.prefix = prefix
        self.next_due = every_cycles
        self.saved: List[Path] = []

    def save(
        self,
        gpu,
        trace,
        cycle: int,
        issued_cycles: int,
        idle_buckets: Dict[str, int],
    ) -> Path:
        """Write one checkpoint; prunes beyond ``keep``; returns the path."""
        if gpu.obs is not None:
            raise CheckpointError(
                "cannot checkpoint a run with an active ObsSession "
                "(tracer state is not serializable); run without obs= "
                "or without checkpoint="
            )
        self.next_due = cycle + self.every_cycles
        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "cycle": cycle,
            "kernel": trace.kernel,
            "blocks_remaining": gpu._blocks_remaining,
        }
        payload = {
            "gpu": gpu,
            "trace": trace,
            "cycle": cycle,
            "issued_cycles": issued_cycles,
            "idle_buckets": dict(idle_buckets),
        }
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"simulation state is not serializable: {exc}"
            ) from exc
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{self.prefix}-{cycle:012d}.ckpt"
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(json.dumps(meta, sort_keys=True).encode() + b"\n")
            fh.write(blob)
        os.replace(tmp, path)
        self.saved.append(path)
        while len(self.saved) > self.keep:
            stale = self.saved.pop(0)
            try:
                stale.unlink()
            except OSError:
                pass
        return path


def read_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """The metadata line alone — cheap, no unpickling."""
    with open(path, "rb") as fh:
        if fh.readline() != _MAGIC:
            raise CheckpointError(f"{path}: not a repro checkpoint")
        try:
            meta = json.loads(fh.readline().decode())
        except ValueError as exc:
            raise CheckpointError(f"{path}: corrupt metadata line") from exc
    if meta.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint schema v{meta.get('schema')} does not "
            f"match this build's v{CHECKPOINT_SCHEMA_VERSION}"
        )
    return meta


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate and unpickle a checkpoint's full payload."""
    read_meta(path)  # magic + schema validation
    with open(path, "rb") as fh:
        fh.readline()
        fh.readline()
        try:
            payload = pickle.loads(fh.read())
        except Exception as exc:
            raise CheckpointError(f"{path}: corrupt payload: {exc}") from exc
    for key in ("gpu", "trace", "cycle", "issued_cycles", "idle_buckets"):
        if key not in payload:
            raise CheckpointError(f"{path}: payload missing {key!r}")
    return payload


def latest_checkpoint(
    directory: Union[str, Path], prefix: str = "ckpt"
) -> Optional[Path]:
    """Newest checkpoint in *directory* (by cycle in the name), or None."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob(f"{prefix}-*.ckpt"))
    return candidates[-1] if candidates else None


def resume_run(
    source: Union[str, Path, Dict[str, Any]],
    *,
    max_cycles: int = 50_000_000,
    watchdog=None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> Tuple[Any, int]:
    """Resume a checkpointed launch and run it to completion.

    *source* is a checkpoint path or an already-loaded payload dict.
    ``max_cycles`` keeps its absolute meaning (total cycles since launch,
    not since the checkpoint).  Returns ``(gpu, final_cycle)``; the
    resumed run's merged stats live on ``gpu.stats``.
    """
    payload = (
        source if isinstance(source, dict) else load_checkpoint(source)
    )
    gpu = payload["gpu"]
    cycle = gpu._finish_run(
        payload["trace"],
        max_cycles,
        payload["cycle"],
        payload["issued_cycles"],
        dict(payload["idle_buckets"]),
        watchdog,
        checkpoint,
    )
    return gpu, cycle
