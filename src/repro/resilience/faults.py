"""Deterministic, seeded fault injection for guardrail meta-validation.

A simulator's self-checks are only trustworthy if they demonstrably fire.
This module injects *known* damage at *deterministic* points and lets the
test battery assert that the matching guardrail — watchdog, structural
deadlock check, ``WarpRegisterStack.check_invariants``, CPI-stack
conservation — converts each fault class into the right typed exception:

===================  ==========================================  ====================
fault                model effect                                expected detector
===================  ==========================================  ====================
:class:`DropFill`    a scheduled fill event vanishes             ``DeadlockError``
                                                                 (structural: MSHR
                                                                 never drains)
:class:`DelayFill`   a fill lands N cycles late                  none — the run must
                                                                 *complete*, slower,
                                                                 with conservation
                                                                 intact (control)
:class:`CorruptStack`  register-stack bookkeeping skewed          ``InvariantViolation``
                       (RSP offset / resident overflow)           (check_invariants)
:class:`StarveMSHR`  L1 MSHR file reports size 0 in a window     ``DeadlockError``
                                                                 (watchdog livelock)
:class:`DropIdleCharge`  one idle window's CPI attribution lost  ``InvariantViolation``
                                                                 (conservation check)
===================  ==========================================  ====================

Faults address *event ordinals*, not cycles (except ``StarveMSHR``):
"the k-th fill delivered", "the k-th stack call".  Ordinals are stable
across runs of a deterministic simulator, which makes seeded selection
reproducible: count events with an empty plan first, then pick ordinals
with a seeded RNG (:func:`seeded_plan`).

Activation is scoped: components snapshot :func:`active_session` at
construction, so only simulations *built inside* an
:func:`inject_faults` block see the session — the hooks cost nothing
(one ``is not None`` test) on every other run, and an **empty** plan
doubles as a pure event counter.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Fault classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DropFill:
    """Silently discard the *index*-th fill event delivery."""

    index: int


@dataclass(frozen=True)
class DelayFill:
    """Deliver the *index*-th fill event *delay* cycles late (>= 1)."""

    index: int
    delay: int = 200


@dataclass(frozen=True)
class CorruptStack:
    """Skew register-stack bookkeeping at the *index*-th ``call``.

    ``mode="rsp_skew"`` bumps the logical stack height (``_next_start``,
    the RSP) without a frame to account for it; ``mode="resident_overflow"``
    inflates the top frame past the stack capacity.
    """

    index: int
    mode: str = "rsp_skew"


@dataclass(frozen=True)
class StarveMSHR:
    """Report an L1 MSHR file of size 0 during ``[start, end]`` cycles."""

    start: int
    end: int = 1 << 62


@dataclass(frozen=True)
class DropIdleCharge:
    """Lose the *index*-th idle window's CPI-stack attribution."""

    index: int


Fault = Union[DropFill, DelayFill, CorruptStack, StarveMSHR, DropIdleCharge]

#: Class-name keys used by seeded_plan / the selfcheck battery.
FAULT_CLASSES = (
    "drop_fill",
    "delay_fill",
    "corrupt_stack",
    "starve_mshr",
    "drop_idle_charge",
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults to inject into one run."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        return cls(tuple(faults))


def seeded_plan(
    seed: int,
    counters: Dict[str, int],
    classes: Sequence[str] = FAULT_CLASSES,
) -> Dict[str, FaultPlan]:
    """One deterministic single-fault plan per requested class.

    *counters* are the event counts observed by a prior run under an
    empty plan (:attr:`FaultSession.counters`); the seed positions each
    fault inside the observed range.  Classes whose event never occurred
    (count 0) are omitted.
    """
    rng = random.Random(seed)
    plans: Dict[str, FaultPlan] = {}
    fills = counters.get("fills", 0)
    calls = counters.get("stack_calls", 0)
    idles = counters.get("idle_charges", 0)
    for name in classes:
        if name == "drop_fill" and fills:
            plans[name] = FaultPlan.of(DropFill(rng.randrange(fills)))
        elif name == "delay_fill" and fills:
            plans[name] = FaultPlan.of(
                DelayFill(rng.randrange(fills), delay=100 + rng.randrange(400))
            )
        elif name == "corrupt_stack" and calls:
            mode = rng.choice(("rsp_skew", "resident_overflow"))
            plans[name] = FaultPlan.of(
                CorruptStack(rng.randrange(calls), mode=mode)
            )
        elif name == "starve_mshr":
            plans[name] = FaultPlan.of(StarveMSHR(start=0))
        elif name == "drop_idle_charge" and idles:
            plans[name] = FaultPlan.of(DropIdleCharge(rng.randrange(idles)))
    return plans


# ---------------------------------------------------------------------------
# Session: mutable per-run state
# ---------------------------------------------------------------------------


class FaultSession:
    """Deterministic event counters plus the plan's trigger bookkeeping.

    Components poll it through three hooks:

    * :meth:`on_fill` — every fill-event delivery in
      ``MemorySubsystem._drain_events``;
    * :meth:`mshr_cap` — the per-cycle L1 MSHR capacity in ``_tick_l1``;
    * :meth:`on_stack_call` — every ``WarpRegisterStack.call``;
    * :meth:`drop_idle_charge` — every idle classification in
      ``GPU._run_loop``.

    ``triggered`` records each fault the run actually hit, so tests can
    assert the damage landed (and not just that *something* blew up).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fills_seen = 0
        self.stack_calls = 0
        self.idle_charges = 0
        self.triggered: List[Fault] = []
        self._drop_fills: Dict[int, DropFill] = {}
        self._delay_fills: Dict[int, DelayFill] = {}
        self._corrupt: Dict[int, CorruptStack] = {}
        self._starve: List[StarveMSHR] = []
        self._drop_idle: Dict[int, DropIdleCharge] = {}
        for fault in plan.faults:
            if isinstance(fault, DropFill):
                self._drop_fills[fault.index] = fault
            elif isinstance(fault, DelayFill):
                if fault.delay < 1:
                    raise ValueError("DelayFill.delay must be >= 1")
                self._delay_fills[fault.index] = fault
            elif isinstance(fault, CorruptStack):
                if fault.mode not in ("rsp_skew", "resident_overflow"):
                    raise ValueError(f"unknown CorruptStack mode {fault.mode!r}")
                self._corrupt[fault.index] = fault
            elif isinstance(fault, StarveMSHR):
                self._starve.append(fault)
            elif isinstance(fault, DropIdleCharge):
                self._drop_idle[fault.index] = fault
            else:
                raise TypeError(f"unknown fault {fault!r}")

    @property
    def counters(self) -> Dict[str, int]:
        """Deterministic event counts, for seeding a follow-up plan."""
        return {
            "fills": self.fills_seen,
            "stack_calls": self.stack_calls,
            "idle_charges": self.idle_charges,
        }

    # -- hooks ----------------------------------------------------------

    def on_fill(self, t: int, payload) -> Optional[int]:
        """Returns None to deliver, -1 to drop, or a delay in cycles."""
        index = self.fills_seen
        self.fills_seen = index + 1
        fault = self._drop_fills.get(index)
        if fault is not None:
            self.triggered.append(fault)
            return -1
        delay = self._delay_fills.get(index)
        if delay is not None:
            self.triggered.append(delay)
            return delay.delay
        return None

    def mshr_cap(self, cycle: int, cap: int) -> int:
        for fault in self._starve:
            if fault.start <= cycle <= fault.end:
                if not self.triggered or self.triggered[-1] is not fault:
                    self.triggered.append(fault)
                return 0
        return cap

    def on_stack_call(self, stack) -> None:
        """Apply any scheduled corruption to *stack* after its call."""
        index = self.stack_calls
        self.stack_calls = index + 1
        fault = self._corrupt.get(index)
        if fault is None:
            return
        self.triggered.append(fault)
        if fault.mode == "rsp_skew":
            stack._next_start += 7
        else:  # resident_overflow
            stack.frames[-1].fru += stack.capacity + 1

    def drop_idle_charge(self) -> bool:
        index = self.idle_charges
        self.idle_charges = index + 1
        fault = self._drop_idle.get(index)
        if fault is not None:
            self.triggered.append(fault)
            return True
        return False


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultSession] = None


def active_session() -> Optional[FaultSession]:
    """The session components should bind at construction (usually None)."""
    return _ACTIVE


@contextmanager
def inject_faults(plan: Union[FaultPlan, FaultSession, None] = None):
    """Activate a fault session for simulations built inside the block.

    Yields the :class:`FaultSession` so callers can read counters and
    ``triggered`` afterwards.  An empty/None plan still activates the
    counting hooks — the cheapest way to measure a run's event ordinals.
    """
    global _ACTIVE
    if isinstance(plan, FaultSession):
        session = plan
    else:
        session = FaultSession(plan if plan is not None else FaultPlan())
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
