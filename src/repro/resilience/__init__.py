"""Resilience layer: typed errors, watchdog, fault injection, checkpoints.

See ``docs/architecture.md`` §11.  Submodules:

* :mod:`~repro.resilience.errors` — the :class:`SimulationError` hierarchy
  and the CLI exit-code mapping;
* :mod:`~repro.resilience.diagnostics` — structured state dumps attached
  to deadlock/budget failures;
* :mod:`~repro.resilience.watchdog` — the zero-retirement livelock
  detector fed by ``GPU._run_loop``;
* :mod:`~repro.resilience.faults` — deterministic, seeded fault injection
  for guardrail meta-validation;
* :mod:`~repro.resilience.checkpoint` — mid-run serialization + resume;
* :mod:`~repro.resilience.selfcheck` — the one-fault-per-class battery
  behind ``python -m repro selfcheck``.

Only the stdlib-leaf modules (``errors``, ``faults``) are imported
eagerly: ``core``/``mem``/``cars`` import them at module level, and an
eager import of ``diagnostics`` here would re-enter ``repro.core`` while
it is still initializing.  Everything else resolves lazily.
"""

from .errors import (
    DeadlineExceededError,
    DeadlockError,
    InvariantViolation,
    MaxCyclesError,
    ServiceError,
    SimulationError,
    StoreCorruptionError,
    WorkerCrashError,
    exit_code_for,
)
from .faults import (
    CorruptStack,
    DelayFill,
    DropFill,
    DropIdleCharge,
    FaultPlan,
    FaultSession,
    StarveMSHR,
    active_session,
    inject_faults,
    seeded_plan,
)

__all__ = [
    # errors
    "SimulationError",
    "DeadlockError",
    "MaxCyclesError",
    "InvariantViolation",
    "WorkerCrashError",
    "ServiceError",
    "DeadlineExceededError",
    "StoreCorruptionError",
    "exit_code_for",
    # faults
    "FaultPlan",
    "FaultSession",
    "DropFill",
    "DelayFill",
    "CorruptStack",
    "StarveMSHR",
    "DropIdleCharge",
    "inject_faults",
    "active_session",
    "seeded_plan",
    # lazy
    "DiagnosticDump",
    "collect_dump",
    "Watchdog",
    "CheckpointPolicy",
    "CheckpointError",
    "DrainController",
    "DrainInterrupt",
    "CHECKPOINT_SCHEMA_VERSION",
    "latest_checkpoint",
    "load_checkpoint",
    "read_meta",
    "resume_run",
    "run_selfcheck",
    "render_report",
]

_LAZY = {
    "DiagnosticDump": "diagnostics",
    "collect_dump": "diagnostics",
    "Watchdog": "watchdog",
    "CheckpointPolicy": "checkpoint",
    "CheckpointError": "checkpoint",
    "DrainController": "checkpoint",
    "DrainInterrupt": "checkpoint",
    "CHECKPOINT_SCHEMA_VERSION": "checkpoint",
    "latest_checkpoint": "checkpoint",
    "load_checkpoint": "checkpoint",
    "read_meta": "checkpoint",
    "resume_run": "checkpoint",
    "run_selfcheck": "selfcheck",
    "render_report": "selfcheck",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(f".{module_name}", __name__), name)
    globals()[name] = value
    return value
