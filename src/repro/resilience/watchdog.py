"""No-forward-progress watchdog for the event-driven main loop.

The structural deadlock check in ``GPU._run_loop`` (no warp can issue
*and* no future event exists) misses livelocks: states where the model
keeps generating events — an MSHR-starved L1 queue replaying every cycle,
a pathological wake ping-pong — without ever retiring a µop.  The
watchdog closes that gap with a pure observer: the loop reports every
idle classification, and if the retired-µop counter stays flat across a
configurable cycle window, the run is declared dead.

Design constraints:

* **Timing-invisible.**  The watchdog only reads ``stats.micro_ops`` and
  appends to a bounded trail; enabling it (the default) cannot change a
  single simulated number — golden stats stay byte-identical.
* **Fast-forward aware.**  Progress is tracked in *cycles since the last
  retirement*, not in observations, so one legitimate multi-thousand-cycle
  DRAM stretch never false-fires, while a 1-cycle replay livelock is
  caught after ``window`` cycles of zero retirement.
* **Self-describing.**  The trail of recent (cycle, span, bucket) idle
  windows rides into every diagnostic dump, so a deadlock report shows
  what the model thought it was waiting for.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .diagnostics import collect_dump
from .errors import DeadlockError

#: Cycles of zero µop retirement before declaring a livelock.  Far above
#: any legitimate stall (the deepest memory round trip is a few hundred
#: cycles; barrier convoys a few thousand) and far below the default
#: 50M-cycle budget, so real hangs die fast with a dump instead of
#: grinding to MaxCyclesError.
DEFAULT_WINDOW = 1_000_000

#: Idle windows kept for the diagnostic trail.
TRAIL_LEN = 32


class Watchdog:
    """Zero-retirement detector fed by ``GPU._run_loop``.

    One instance observes one run (``GPU.run`` creates a fresh default
    instance per call unless handed one).  ``note_idle`` is called once
    per idle classification — at most once per skipped stretch — with the
    window's span and CPI bucket.
    """

    __slots__ = ("window", "trail", "_last_ops", "_progress_cycle")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ValueError("watchdog window must be positive")
        self.window = window
        self.trail: Deque[Tuple[int, int, str]] = deque(maxlen=TRAIL_LEN)
        self._last_ops = -1  # forces the first note to count as progress
        self._progress_cycle = 0

    def note_idle(
        self,
        gpu,
        cycle: int,
        span: int,
        bucket: str,
        idle_buckets,
        issued_cycles: int,
    ) -> None:
        """Record one idle window; raise on a zero-retirement overrun."""
        self.trail.append((cycle, span, bucket))
        ops = gpu.stats.micro_ops
        if ops != self._last_ops:
            self._last_ops = ops
            self._progress_cycle = cycle
            return
        stalled = cycle + span - self._progress_cycle
        if stalled > self.window:
            raise DeadlockError(
                f"no forward progress for {stalled} cycles "
                f"(zero µops retired since cycle {self._progress_cycle}; "
                f"current stall bucket {bucket!r}) — livelock suspected",
                diagnostics=collect_dump(
                    gpu,
                    cycle,
                    reason="watchdog: zero-retirement window",
                    idle_buckets=idle_buckets,
                    issued_cycles=issued_cycles,
                    trail=self.trail,
                ),
            )
