"""CARS: Concurrency-Aware Register Stacks for Efficient GPU Function Calls.

A full-system Python reproduction of the MICRO 2024 paper: GPU toolchain
(kernel DSL, ABI compiler, linker, LTO inliner), functional SIMT emulator,
cycle-level timing model, the CARS register-stack mechanism, energy model,
the paper's 22 workloads, and a harness regenerating every figure/table.

Public entry points:

* ``repro.frontend.builder`` — write kernels.
* ``repro.workloads`` — the Table I suite and the synthesizer.
* ``repro.harness`` — run techniques and regenerate experiments.
* ``repro.core.techniques`` — the studied configurations.
"""

__version__ = "1.0.0"

# Importing the spill package registers the RegDem and register-file-cache
# ABI models, techniques, and parametric families, so any process that
# imports ``repro`` (pool workers included) can resolve them by name.
from . import spill  # noqa: E402,F401

__all__ = [
    "callgraph",
    "cars",
    "config",
    "core",
    "emu",
    "frontend",
    "harness",
    "isa",
    "mem",
    "metrics",
    "power",
    "spill",
    "workloads",
]
