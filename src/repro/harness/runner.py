"""Deprecated import path — use :mod:`repro.api` instead.

The runner implementation lives in :mod:`repro.harness._runner`; this
module re-exports it for backward compatibility and emits one
:class:`DeprecationWarning` when imported.  New code should go through the
stable facade::

    from repro.api import Simulation, Sweep, RunResult, geomean
"""

from __future__ import annotations

import warnings

from ._runner import (  # noqa: F401
    RunResult,
    SWL_SWEEP,
    geomean,
    run_baseline,
    run_best_swl,
    run_workload,
)

__all__ = [
    "RunResult",
    "SWL_SWEEP",
    "geomean",
    "run_baseline",
    "run_best_swl",
    "run_workload",
]

warnings.warn(
    "repro.harness.runner is deprecated; use the stable facade in "
    "repro.api (Simulation / Sweep) instead",
    DeprecationWarning,
    stacklevel=2,
)
