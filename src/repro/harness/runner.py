"""Experiment runner: (workload x technique) -> statistics.

Mirrors the paper's methodology: every technique replays the same traces
on the same (scaled) hardware configuration; results are normalized to the
baseline run on that configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis import ensure_module_linted
from ..callgraph import analyze_kernel, build_call_graph
from ..cars.policy import PolicyMemory
from ..config.gpu_config import GPUConfig
from ..config import volta
from ..core.gpu import GPU
from ..core.techniques import BASELINE, Technique, swl
from ..metrics.counters import SimStats
from ..power.model import DEFAULT_ENERGY_MODEL, EnergyModel
from ..workloads.spec import Workload

#: SWL warp counts the paper sweeps for Best-SWL.
SWL_SWEEP = (1, 2, 3, 4, 8, 16)


@dataclass
class RunResult:
    """Outcome of one (workload, technique) simulation."""

    workload: str
    technique: str
    config: GPUConfig
    stats: SimStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def speedup_over(self, baseline: "RunResult") -> float:
        return baseline.cycles / self.cycles if self.cycles else 0.0

    def energy(self, model: EnergyModel = DEFAULT_ENERGY_MODEL) -> float:
        return model.energy(self.stats, self.config)

    def energy_efficiency(self, model: EnergyModel = DEFAULT_ENERGY_MODEL) -> float:
        return model.efficiency(self.stats, self.config)


def run_workload(
    workload: Workload,
    technique: Technique,
    config: Optional[GPUConfig] = None,
    policy_memory: Optional[PolicyMemory] = None,
) -> RunResult:
    """Simulate every kernel launch of *workload* under *technique*."""
    base_config = config if config is not None else volta()
    cfg = technique.adjust_config(base_config)
    module = workload.module(inlined=technique.use_inlined)
    # Refuse to simulate binaries that fail the ABI/stack-safety lint:
    # a PUSH/POP imbalance or SSY mismatch would corrupt the simulated
    # register stack and produce garbage figures rather than a crash.
    ensure_module_linted(module, workload.name)
    traces = workload.traces(inlined=technique.use_inlined)
    graph = build_call_graph(module) if technique.abi == "cars" else None
    memory = policy_memory if policy_memory is not None else PolicyMemory()

    total = SimStats()
    for trace in traces:
        kernel_stats = SimStats()
        analysis = analyze_kernel(graph, trace.kernel) if graph is not None else None
        ctx = technique.make_context(trace, cfg, kernel_stats, analysis, memory)
        GPU(cfg, ctx, kernel_stats).run(trace)
        total.merge_kernel(kernel_stats)
    return RunResult(workload.name, technique.name, cfg, total)


def run_best_swl(
    workload: Workload,
    config: Optional[GPUConfig] = None,
    sweep: Sequence[int] = SWL_SWEEP,
) -> RunResult:
    """The paper's Best-SWL: sweep warp limits, keep the fastest."""
    best: Optional[RunResult] = None
    cfg = config if config is not None else volta()
    for limit in sweep:
        if limit > cfg.max_warps_per_sm:
            continue
        result = run_workload(workload, swl(limit), cfg)
        if best is None or result.cycles < best.cycles:
            best = result
    assert best is not None
    return RunResult(best.workload, "best_swl", best.config, best.stats)


def run_baseline(workload: Workload, config: Optional[GPUConfig] = None) -> RunResult:
    """Simulate *workload* under the baseline ABI."""
    return run_workload(workload, BASELINE, config)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
