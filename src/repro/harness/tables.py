"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    rows: Mapping[str, Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a dict-of-dicts as an aligned text table.

    Row order follows insertion order; columns default to the union of the
    row keys (first-seen order).
    """
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = []
        for row in rows.values():
            for key in row:
                if key not in columns:
                    columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    header = ["workload"] + list(columns)
    body = [[name] + [fmt(row.get(col, "")) for col in columns]
            for name, row in rows.items()]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines) + "\n"


def format_series(series: Sequence[tuple], headers: Sequence[str], title: str = "") -> str:
    """Render a list of tuples (a timeline/series) as a text table."""
    rows = {str(i): dict(zip(headers, row)) for i, row in enumerate(series)}
    return format_table(rows, columns=list(headers), title=title)
