"""Regenerate every paper table/figure and write EXPERIMENTS.md.

Usage::

    python -m repro regen [output.md] [--jobs N]

(The ``repro regen`` subcommand is the supported entry point; this
module is harness-internal plumbing, like :mod:`repro.harness._runner`.)

Set ``REPRO_WORKLOADS=smoke`` (or a comma list) to restrict scope.
Expect ~15-40 minutes for the full 22-workload suite on one core;
``--jobs N`` fans the sweep out over N worker processes.  Completed runs
persist in the content-addressed result store, so an interrupted sweep
resumes where it stopped and a warm rerun simulates nothing (the final
``executor:`` line reports the run counter).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from . import experiments as ex
from .tables import format_table


_PAPER_NOTES = {
    "fig2": "paper: spills/fills are 40.4% of in-core L1D accesses (V100 average)",
    "fig8": "paper: CARS geomean +26%, beating IdealVW / 10MB-L1 / Best-SWL",
    "fig9": "paper: spill/fill share of accesses drops by ~40 points; globals unchanged",
    "fig10": "paper: ALL-HIT tracks (and stays below) CARS on bandwidth-bound apps",
    "fig11": "paper: CARS raises PTA's average global bandwidth by 98%",
    "fig12": "paper: 35% average MPKI reduction",
    "fig13": "paper: spill/fill instruction share shrinks; CARS adds cheap stack ops",
    "fig14": "paper: over half of PTA kernels show no difference; only K1 context-switches",
    "fig15": "paper: 28% better energy efficiency (geomean)",
    "fig16": "paper: LTO +28% vs CARS +26%; LTO loses on front-end-pressured apps",
    "fig17": "paper: more L1 ports give the baseline only 1.02-1.03x; CARS stays ~1.28x",
    "fig18": "paper: CARS speedups are resilient on Ampere (MST flips to Low-watermark)",
    "tab1": "paper: Table I call depth / CPKI per workload",
    "tab2": "paper: Table II main speedup factor per workload",
    "tab3": "paper: only PTA traps: 0.014% of functions, 0.78 B spilled/filled per call",
    "rivals": "related work: RegDem (arXiv 1907.02894) and a register-file "
              "cache (arXiv 2310.17501) vs CARS on the identical model",
}


def generate_markdown() -> str:
    """Run every experiment and render EXPERIMENTS.md."""
    t0 = time.time()
    names = ex.workload_names()
    out = []
    out.append("# EXPERIMENTS — paper vs. measured (scaled simulator)\n")
    out.append(
        f"Workloads in scope: {', '.join(names)}\n\n"
        "All speedups are normalized to the baseline (spills/fills ABI) on\n"
        "the identical scaled configuration; see DESIGN.md for scaling and\n"
        "fidelity notes. Regenerate with `python -m repro regen`.\n"
    )

    def section(tag: str, title: str, body: str) -> None:
        out.append(f"\n## {title}\n")
        out.append(f"*{_PAPER_NOTES[tag]}*\n")
        out.append("```\n" + body + "```\n")

    section("fig2", "Fig 2 — Baseline L1D access mix",
            format_table(ex.fig2_baseline_access_mix(names)))
    out.append("\n## Fig 4 — Call-graph analysis example\n")
    out.append("*paper: Low-watermark 30 registers, High-watermark 56*\n")
    out.append("```\n" + str(ex.fig4_callgraph_example()) + "\n```\n")
    out.append("\n## Fig 5 — Dynamic reservation state machine demo\n")
    out.append("```\n" + str(ex.fig5_policy_demo()) + "\n```\n")
    out.append("\n## Fig 6 — Circular-stack wrap-around demo\n")
    out.append("```\n" + str(ex.fig6_wraparound_demo()) + "\n```\n")
    section("fig8", "Fig 8 — Performance vs idealized configurations",
            format_table(ex.fig8_performance(names)))
    section("fig9", "Fig 9 — Memory-access reduction with CARS",
            format_table(ex.fig9_access_reduction(names)))
    section("fig10", "Fig 10 — ALL-HIT study",
            format_table(ex.fig10_allhit(names)))
    fig11 = ex.fig11_bandwidth_timeline()
    section("fig11", "Fig 11 — PTA bandwidth timeline (averages)",
            format_table({
                "baseline": {"avg_global_sectors_per_cycle":
                             fig11["baseline_avg_global_bw"]},
                "cars": {"avg_global_sectors_per_cycle":
                         fig11["cars_avg_global_bw"]},
                "cars/baseline": {"avg_global_sectors_per_cycle":
                                  fig11["cars_avg_global_bw"]
                                  / max(1e-12, fig11["baseline_avg_global_bw"])},
            }))
    section("fig12", "Fig 12 — L1D MPKI", format_table(ex.fig12_mpki(names)))
    section("fig13", "Fig 13 — Instruction mix (normalized to baseline)",
            format_table(ex.fig13_instruction_mix(names)))
    section("fig14", "Fig 14 — PTA allocation mechanisms (per kernel)",
            format_table(ex.fig14_pta_allocation()))
    section("fig15", "Fig 15 — Energy efficiency",
            format_table(ex.fig15_energy(names)))
    section("fig16", "Fig 16 — Fully-inlined (LTO) vs CARS",
            format_table(ex.fig16_lto(names)))
    section("fig17", "Fig 17 — L1 bandwidth scaling",
            format_table(ex.fig17_port_scaling(names)))
    section("fig18", "Fig 18 — Ampere (RTX 3070-like)",
            format_table(ex.fig18_ampere(names)))
    section("tab1", "Table I — Workload characteristics",
            format_table(ex.table1_workloads(names)))
    section("tab2", "Table II — Main speedup factors",
            format_table(ex.table2_speedup_factors(names)))
    section("tab3", "Table III — Software-trap frequency/severity",
            format_table(ex.table3_trap_stats(names), float_fmt="{:.4f}"))
    section("rivals", "Rival arms — CARS vs RegDem vs register-file cache",
            format_table(ex.table_rivals(names)))

    out.append(f"\n---\nGenerated in {time.time() - t0:.0f}s.\n")
    return "".join(out)


def _progress(done: int, total: int, request, source: str) -> None:
    print(f"  [{done}/{total}] {request.workload:>14s} "
          f"{request.technique:<12s} ({source})", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro regen",
        description="Regenerate every paper figure/table into a markdown file.",
    )
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-run progress lines on stderr",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: write EXPERIMENTS.md (optional path arg)."""
    args = build_parser().parse_args(
        argv if argv is not None else sys.argv[1:]
    )
    executor = ex.configure_executor(
        jobs=args.jobs, progress=None if args.quiet else _progress
    )
    markdown = generate_markdown()
    with open(args.output, "w") as handle:
        handle.write(markdown)
    print(f"wrote {args.output}")
    print(f"executor: {executor.stats.summary()} "
          f"(store: {executor.store.info()['entries']} entries at "
          f"{executor.store.root})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
