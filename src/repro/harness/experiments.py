"""Per-figure/table experiment functions.

Every function regenerates the rows/series of one paper figure or table on
the scaled simulator.  Instead of simulating inline, each function builds a
declarative :class:`~repro.harness.executor.ExperimentPlan` naming every
(workload x technique x config) cell it needs and executes it through the
module's shared :class:`~repro.harness.executor.Executor` — so the many
figures that share the same sweeps (Figs 8/9/10/12/13/15, Tables II/III)
cost one simulation each, cells are computed in parallel when the executor
has ``jobs > 1``, and results persist in the content-addressed store (an
interrupted sweep resumes where it stopped).

Workload scope is controlled by ``REPRO_WORKLOADS`` (comma list, ``all``,
or ``smoke``); the default executor's parallelism by ``REPRO_JOBS``.  The
benchmark suite and ``repro regen`` (:mod:`repro.harness._regenerate`)
both go through these functions.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..callgraph import analyze_kernel, build_call_graph
from ..cars.policy import PolicyMemory
from ..config import ampere, volta
from ..config.gpu_config import GPUConfig
from ..core.techniques import (
    ALL_HIT,
    BASELINE,
    CARS,
    IDEAL_VW,
    L1_HUGE,
    LTO,
    Technique,
    cars_nxlow,
)
from ..metrics.counters import STREAM_GLOBAL, STREAM_LOCAL, STREAM_SPILL
from ..power.model import DEFAULT_ENERGY_MODEL
from ..spill import REGDEM, RFCACHE
from ..workloads import WORKLOAD_NAMES, SMOKE_NAMES, make_workload
from .executor import Executor, ExperimentPlan, ExperimentRequest, ProgressFn, ResultStore
from ._runner import RunResult, geomean

#: Fig 8's studied techniques, in the paper's order.
FIG8_TECHNIQUES = ("ideal_vw", "l1_10mb", "best_swl", "cars")

#: The rival register-pressure arms compared by :func:`table_rivals`.
RIVAL_TECHNIQUES = ("cars", "regdem", "rfcache")

_EXECUTOR: Optional[Executor] = None


def workload_names() -> List[str]:
    """Workloads in scope (REPRO_WORKLOADS=all|smoke|CSV; default all)."""
    raw = os.environ.get("REPRO_WORKLOADS", "all").strip()
    if raw in ("", "all"):
        return list(WORKLOAD_NAMES)
    if raw == "smoke":
        return list(SMOKE_NAMES)
    names = [n.strip() for n in raw.split(",") if n.strip()]
    unknown = set(names) - set(WORKLOAD_NAMES)
    if unknown:
        raise KeyError(f"unknown workloads: {sorted(unknown)}")
    return names


# ---------------------------------------------------------------------------
# The shared executor
# ---------------------------------------------------------------------------


def default_jobs() -> int:
    """Worker processes for the default executor (``REPRO_JOBS``, else 1)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    return max(1, int(raw)) if raw else 1


def get_executor() -> Executor:
    """The executor shared by every figure/table function."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = Executor(jobs=default_jobs())
    return _EXECUTOR


def configure_executor(
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
) -> Executor:
    """Replace the shared executor (e.g. ``regenerate --jobs N``)."""
    global _EXECUTOR
    _EXECUTOR = Executor(
        jobs=jobs if jobs is not None else default_jobs(),
        store=store,
        progress=progress,
    )
    return _EXECUTOR


def reset_executor() -> None:
    """Drop the shared executor (a fresh one picks up current env vars)."""
    global _EXECUTOR
    _EXECUTOR = None


def clear_cache() -> None:
    """Drop all in-memory run results (not the on-disk store)."""
    if _EXECUTOR is not None:
        _EXECUTOR.clear_memo()


def _plan() -> ExperimentPlan:
    return ExperimentPlan(get_executor())


TechniqueLike = Union[Technique, str]


def _sweep(
    names: Sequence[str],
    techniques: Sequence[TechniqueLike] = (),
    *,
    best_swl: bool = False,
    config: Optional[GPUConfig] = None,
) -> None:
    """Execute the (names x techniques) grid, deduplicated, via one plan.

    The grid is declared as a :class:`repro.dse.Space` and compiled to a
    plan — the same path ``repro tune`` and user-written explorations
    take — so dedup and store keying have exactly one implementation.
    """
    from ..dse import Space

    arms: List[TechniqueLike] = list(techniques)
    if best_swl:
        arms.append("best_swl")
    if not names or not arms:
        return
    space = (
        Space()
        .add_parameter("workload", list(names))
        .add_parameter("technique", arms)
    )
    if config is not None:
        space.add_function("config", lambda cfg: cfg, params={"cfg": config})
    plan = _plan()
    plan.add_space(space)
    plan.execute()


def _run(
    name: str, technique: TechniqueLike, config: Optional[GPUConfig] = None
) -> RunResult:
    """One cell; a memo hit when a plan already covered it."""
    tech = technique if isinstance(technique, str) else technique.name
    return get_executor().run_one(ExperimentRequest(
        name, tech, config if config is not None else volta()
    ))


def _run_best_swl(name: str, config: Optional[GPUConfig] = None) -> RunResult:
    return get_executor().run_one(ExperimentRequest(
        name, "best_swl", config if config is not None else volta()
    ))


def _speedup(name: str, technique: TechniqueLike) -> float:
    return _run(name, technique).speedup_over(_run(name, BASELINE))


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def fig1_trend() -> List[Tuple[int, int, int]]:
    """Fig 1: (year, SLOC, device functions) survey series."""
    from ..workloads.fig1_data import series

    return series()


def fig2_baseline_access_mix(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 2: baseline L1D access mix (spills/fills vs other locals vs
    globals), per workload plus the suite average."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE,))
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        rows[name] = _run(name, BASELINE).stats.access_breakdown()
    rows["average"] = {
        stream: sum(rows[n][stream] for n in names) / len(names)
        for stream in (STREAM_SPILL, STREAM_LOCAL, STREAM_GLOBAL)
    }
    return rows


def fig4_callgraph_example() -> Dict[str, int]:
    """Fig 4: the paper's call-graph numbers, computed by our analysis."""
    from ..callgraph.graph import CallGraph
    from ..callgraph.analysis import analyze_kernel as _analyze

    # FRUs chosen to match the numbers quoted in the paper's text:
    # Low-watermark = 20 (kernel) + 10 (largest FRU) = 30, and the bold
    # High-watermark chain k -> f2 -> f4 -> f5 -> f6 sums to 56.
    graph = CallGraph()
    graph.edges = {
        "kernel": {"f1", "f2"},
        "f1": {"f3"},
        "f2": {"f3", "f4"},
        "f3": set(),
        "f4": {"f5"},
        "f5": {"f6"},
        "f6": set(),
    }
    graph.fru = {
        "kernel": 20, "f1": 8, "f2": 10, "f3": 9, "f4": 10, "f5": 9, "f6": 7,
    }
    graph.kernels = ("kernel",)
    analysis = _analyze(graph, "kernel")
    return {
        "low_watermark": analysis.low_watermark,
        "high_watermark": analysis.high_watermark,
        "2xlow_watermark": analysis.nxlow_watermark(2),
    }


def fig5_policy_demo() -> Dict[str, object]:
    """Fig 5: drive the state machine and report its decisions."""
    from ..cars.policy import DynamicReservationPolicy

    memory = PolicyMemory()
    levels = [30, 40, 56]
    policy = DynamicReservationPolicy("demo", levels, num_sms=4, memory=memory)
    seeds = [policy.level_for_new_block(sm) for sm in range(4)]
    policy.record_block(0, 0, runtime=3000)  # Low block finishes, slow
    policy.record_block(3, 2, runtime=1800)  # High block finishes, faster
    adjusted = [policy.level_for_new_block(sm) for sm in range(4)]
    best = policy.finalize()
    reseeded = DynamicReservationPolicy("demo", levels, 4, memory)
    next_launch = [reseeded.level_for_new_block(sm) for sm in range(4)]
    return {
        "seeds": seeds,
        "after_measurement": adjusted,
        "remembered_best": best,
        "next_launch_seeds": next_launch,
    }


def fig6_wraparound_demo(capacity: int = 20, frus: Sequence[int] = (8, 8, 8, 8)) -> Dict[str, int]:
    """Fig 6: circular-stack behaviour on a deep chain."""
    from ..cars.register_stack import WarpRegisterStack

    stack = WarpRegisterStack(capacity)
    spilled = sum(sum(c for _, c in stack.call(fru)) for fru in frus)
    filled = 0
    while stack.depth:
        fill = stack.ret()
        if fill is not None:
            filled += fill[1]
    return {"spilled_regs": spilled, "filled_regs": filled}


def fig8_performance(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 8 (headline): speedups of IdealVW / 10MB-L1 / Best-SWL / CARS
    over the baseline, plus the geomean row."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, IDEAL_VW, L1_HUGE, CARS), best_swl=True)
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        rows[name] = {
            "ideal_vw": _speedup(name, IDEAL_VW),
            "l1_10mb": _speedup(name, L1_HUGE),
            "best_swl": _run_best_swl(name).speedup_over(_run(name, BASELINE)),
            "cars": _speedup(name, CARS),
        }
    rows["geomean"] = {
        tech: geomean([rows[n][tech] for n in names]) for tech in FIG8_TECHNIQUES
    }
    return rows


def fig9_access_reduction(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 9: L1D accesses under CARS vs baseline, by stream (normalized
    to the workload's baseline total)."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, CARS))
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = _run(name, BASELINE).stats
        cars = _run(name, CARS).stats
        total = max(1, base.total_l1_accesses)
        rows[name] = {
            "baseline_spill": base.l1_accesses[STREAM_SPILL] / total,
            "baseline_local": base.l1_accesses[STREAM_LOCAL] / total,
            "baseline_global": base.l1_accesses[STREAM_GLOBAL] / total,
            "cars_spill": cars.l1_accesses[STREAM_SPILL] / total,
            "cars_local": cars.l1_accesses[STREAM_LOCAL] / total,
            "cars_global": cars.l1_accesses[STREAM_GLOBAL] / total,
        }
    return rows


def fig10_allhit(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 10: ALL-HIT vs CARS speedups."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, ALL_HIT, CARS))
    rows = {
        name: {"all_hit": _speedup(name, ALL_HIT), "cars": _speedup(name, CARS)}
        for name in names
    }
    rows["geomean"] = {
        "all_hit": geomean([rows[n]["all_hit"] for n in names]),
        "cars": geomean([rows[n]["cars"] for n in names]),
    }
    return rows


def fig11_bandwidth_timeline(name: str = "PTA") -> Dict[str, object]:
    """Fig 11: global/local L1 bandwidth over time, baseline vs CARS."""
    _sweep([name], (BASELINE, CARS))
    base = _run(name, BASELINE)
    cars = _run(name, CARS)
    return {
        "baseline_series": base.stats.global_bandwidth_timeline(),
        "cars_series": cars.stats.global_bandwidth_timeline(),
        "baseline_avg_global_bw": base.stats.average_global_bandwidth(),
        "cars_avg_global_bw": cars.stats.average_global_bandwidth(),
    }


def fig12_mpki(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 12: L1D MPKI for baseline and CARS, plus the mean reduction."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, CARS))
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        rows[name] = {
            "baseline": _run(name, BASELINE).stats.mpki(),
            "cars": _run(name, CARS).stats.mpki(),
        }
    reductions = [
        1 - rows[n]["cars"] / rows[n]["baseline"]
        for n in names
        if rows[n]["baseline"] > 0
    ]
    rows["average_reduction"] = {
        "baseline": 0.0,
        "cars": sum(reductions) / len(reductions) if reductions else 0.0,
    }
    return rows


def fig13_instruction_mix(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 13: issued-instruction mix, normalized to the baseline total."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, CARS))
    groups = {
        "alu": ("ALU", "FPU", "SFU", "SMEM"),
        "global": ("GLOBAL_LD", "GLOBAL_ST"),
        "spill": ("SPILL_LD", "SPILL_ST"),
        "local": ("LOCAL_LD", "LOCAL_ST"),
        "ctrl": ("BRANCH", "CALL", "RET", "BAR", "EXIT"),
        "stack": ("STACK",),
    }
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = _run(name, BASELINE).stats.instruction_mix()
        cars = _run(name, CARS).stats.instruction_mix()
        total = max(1, sum(base.values()))
        row = {}
        for label, kinds in groups.items():
            row[f"baseline_{label}"] = sum(base.get(k, 0) for k in kinds) / total
            row[f"cars_{label}"] = sum(cars.get(k, 0) for k in kinds) / total
        rows[name] = row
    return rows


def fig14_pta_allocation() -> Dict[str, Dict[str, float]]:
    """Fig 14: per-PTA-kernel speedups of the allocation mechanisms.

    This study simulates each kernel launch in isolation, below the
    workload granularity the executor addresses, so it drives the timing
    model directly rather than submitting plan requests.
    """
    workload = make_workload("PTA")
    mechanisms = {
        "low": Technique("cars_low", abi="cars", cars_mode="low"),
        "nxlow2": cars_nxlow(2),
        "high": Technique("cars_high", abi="cars", cars_mode="high"),
        "dynamic": CARS,
    }
    cfg = volta()
    module = workload.module()
    graph = build_call_graph(module)
    # Per-kernel runs: simulate each launch in isolation per mechanism.
    from ..core.gpu import GPU
    from ..metrics.counters import SimStats

    rows: Dict[str, Dict[str, float]] = {}
    traces = workload.traces()
    seen = set()
    base_cycles: Dict[str, int] = {}
    for trace in traces:
        if trace.kernel in seen:
            continue
        seen.add(trace.kernel)
        stats = SimStats()
        ctx = BASELINE.make_context(trace, cfg, stats)
        GPU(cfg, ctx, stats).run(trace)
        base_cycles[trace.kernel] = stats.cycles
        rows[trace.kernel] = {}
    seen.clear()
    for trace in traces:
        if trace.kernel in seen:
            continue
        seen.add(trace.kernel)
        analysis = analyze_kernel(graph, trace.kernel)
        for label, technique in mechanisms.items():
            stats = SimStats()
            ctx = technique.make_context(trace, cfg, stats, analysis)
            GPU(cfg, ctx, stats).run(trace)
            rows[trace.kernel][label] = base_cycles[trace.kernel] / stats.cycles
            if label == "high":
                rows[trace.kernel]["high_context_switches"] = stats.context_switches
    return rows


def fig15_energy(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 15: energy efficiency normalized to the baseline."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, IDEAL_VW, L1_HUGE, CARS), best_swl=True)
    model = DEFAULT_ENERGY_MODEL
    techniques = {
        "ideal_vw": IDEAL_VW,
        "l1_10mb": L1_HUGE,
        "cars": CARS,
    }
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        base_eff = _run(name, BASELINE).energy_efficiency(model)
        row = {
            label: _run(name, tech).energy_efficiency(model) / base_eff
            for label, tech in techniques.items()
        }
        row["best_swl"] = _run_best_swl(name).energy_efficiency(model) / base_eff
        rows[name] = row
    rows["geomean"] = {
        label: geomean([rows[n][label] for n in names])
        for label in ("ideal_vw", "l1_10mb", "best_swl", "cars")
    }
    return rows


def fig16_lto(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 16: fully-inlined (LTO) vs CARS speedups."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, LTO, CARS))
    rows = {
        name: {"lto": _speedup(name, LTO), "cars": _speedup(name, CARS)}
        for name in names
    }
    rows["geomean"] = {
        "lto": geomean([rows[n]["lto"] for n in names]),
        "cars": geomean([rows[n]["cars"] for n in names]),
    }
    return rows


def fig17_port_scaling(
    names: Optional[Sequence[str]] = None, factors: Sequence[int] = (2, 4, 8)
) -> Dict[str, Dict[str, float]]:
    """Fig 17: baseline and CARS under scaled L1 bandwidth, all normalized
    to the 1x baseline."""
    names = list(names) if names is not None else workload_names()
    base_ports = volta().l1.ports
    port_configs = [volta().with_l1_ports(base_ports * f) for f in factors]
    plan = _plan()
    for name in names:
        plan.add(name, BASELINE)
        plan.add(name, CARS)
        for cfg in port_configs:
            plan.add(name, BASELINE, config=cfg)
            plan.add(name, CARS, config=cfg)
    plan.execute()
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        base_1x = _run(name, BASELINE).cycles
        row = {"cars_1x": base_1x / _run(name, CARS).cycles}
        for factor, cfg in zip(factors, port_configs):
            row[f"baseline_{factor}x"] = base_1x / _run(name, BASELINE, cfg).cycles
            row[f"cars_{factor}x"] = base_1x / _run(name, CARS, cfg).cycles
        rows[name] = row
    keys = list(next(iter(rows.values())).keys())
    rows["geomean"] = {k: geomean([rows[n][k] for n in names]) for k in keys}
    return rows


def fig18_ampere(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Fig 18: CARS speedup on the Ampere (RTX 3070-like) configuration."""
    names = list(names) if names is not None else workload_names()
    cfg = ampere()
    _sweep(names, (BASELINE, CARS), config=cfg)
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = _run(name, BASELINE, cfg)
        cars = _run(name, CARS, cfg)
        rows[name] = {"cars": cars.speedup_over(base)}
    rows["geomean"] = {"cars": geomean([rows[n]["cars"] for n in names])}
    return rows


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1_workloads(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Table I: measured call depth and CPKI vs the paper's values."""
    names = list(names) if names is not None else workload_names()
    rows = {}
    for name in names:
        workload = make_workload(name)
        rows[name] = {
            "suite": workload.suite,
            "paper_depth": workload.paper_call_depth,
            "measured_depth": workload.measured_call_depth(),
            "paper_cpki": workload.paper_cpki,
            "measured_cpki": workload.measured_cpki(),
        }
    return rows


def table2_speedup_factors(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, str]]:
    """Table II: diagnose each workload's main CARS speedup factor from the
    idealized-configuration responses (the paper's Section VI-A logic)."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, CARS, L1_HUGE, ALL_HIT))
    rows: Dict[str, Dict[str, str]] = {}
    for name in names:
        cars = _speedup(name, CARS)
        l1 = _speedup(name, L1_HUGE)
        all_hit = _speedup(name, ALL_HIT)
        base_stats = _run(name, BASELINE).stats
        spill_frac = base_stats.spill_fraction()
        blocks = {(blk.sm_id, blk.block_id) for blk in base_stats.blocks}
        if cars < 1.04 and spill_frac < 0.25:
            # Few spills to begin with: CARS is (correctly) neutral.
            diagnosis = "Low total local memory access count"
        elif len(blocks) <= volta().num_sms and cars > 1.04:
            # ~1 block per SM: not enough warps to hide latency.
            diagnosis = "Low occupancy"
        elif spill_frac >= 0.7 or all_hit >= l1 * 0.98:
            # ALL-HIT (which only removes spill *misses*) explains the gain
            # as well as unlimited capacity does -> the bottleneck is the
            # spill traffic itself, not the cache size.
            diagnosis = "L1D bandwidth contention"
        elif l1 > 1.2:
            diagnosis = "L1D capacity and contention"
        elif l1 > 1.08:
            diagnosis = "L1D capacity"
        else:
            diagnosis = "L1D bandwidth contention"
        rows[name] = {
            "diagnosed": diagnosis,
            "paper": _PAPER_TABLE2.get(name, ""),
        }
    return rows


_PAPER_TABLE2 = {
    "PTA": "L1D bandwidth contention",
    "DMR": "L1D capacity and contention",
    "MST": "L1D capacity and contention",
    "SSSP": "L1D bandwidth contention",
    "CFD": "L1D capacity and contention",
    "TRAF": "L1D bandwidth contention",
    "GOL": "L1D capacity and contention",
    "NBD": "L1D bandwidth contention",
    "COLI": "L1D bandwidth contention",
    "STUT": "L1D capacity and contention",
    "RAY": "L1D bandwidth contention",
    "LULESH": "Low total local memory access count",
    "FIB": "L1D bandwidth contention",
    "Bert_LT": "L1D capacity",
    "Bert_AtScore": "Low occupancy",
    "Bert_AtOp": "Low occupancy",
    "Bert_FC": "L1D capacity",
    "Resnet_FP": "L1D capacity and contention",
    "Resnet_WG": "L1D capacity",
    "SVR": "L1D bandwidth contention",
    "KMEAN": "L1D bandwidth contention",
    "RF": "L1D bandwidth contention",
}


def table3_trap_stats(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Table III: trap-handler frequency and severity under CARS (only
    workloads that actually trapped appear, as in the paper)."""
    names = list(names) if names is not None else workload_names()
    _sweep(names, (CARS,))
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        stats = _run(name, CARS).stats
        if stats.traps == 0 and stats.context_switches == 0:
            continue
        rows[name] = {
            "trap_fraction": stats.trap_fraction(),
            "bytes_per_call": stats.bytes_spilled_per_call(),
            "context_switches": stats.context_switches,
        }
    return rows


def table_rivals(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Rival register-pressure arms: CARS vs RegDem vs register-file cache.

    Per workload: speedup over the baseline ABI and the spill share of
    L1D accesses under each arm (the traffic the mechanism was supposed
    to remove), plus the register-file cache's hit rate.  The geomean
    row summarizes the speedups, as Fig 8 does for the idealized arms.
    """
    names = list(names) if names is not None else workload_names()
    _sweep(names, (BASELINE, CARS, REGDEM, RFCACHE))
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        row: Dict[str, float] = {}
        for technique in (CARS, REGDEM, RFCACHE):
            stats = _run(name, technique).stats
            row[f"{technique.name}_speedup"] = _speedup(name, technique)
            row[f"{technique.name}_spill_share"] = stats.spill_fraction()
        row["rfcache_hit_rate"] = _run(name, RFCACHE).stats.rfcache_hit_rate()
        rows[name] = row
    rows["geomean"] = {
        f"{tech}_speedup": geomean(
            [rows[n][f"{tech}_speedup"] for n in names]
        )
        for tech in RIVAL_TECHNIQUES
    }
    return rows
