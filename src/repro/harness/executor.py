"""Parallel experiment executor and content-addressed result store.

The paper's evaluation is an embarrassingly parallel grid — 22 workloads
x {baseline, CARS, Best-SWL sweep, idealized configs} replayed across 18
figures and 3 tables.  This module supplies the engine behind it:

* :class:`ExperimentRequest` — one declarative (workload, technique,
  config) cell, picklable and hashable, so the same request appearing in
  many figures deduplicates to one simulation.
* :class:`ExperimentPlan` — an ordered, deduplicated batch of requests;
  every ``fig*``/``table*`` function builds one and calls
  :meth:`ExperimentPlan.execute` instead of simulating inline.
* :class:`Executor` — runs a plan through an in-memory memo, then the
  on-disk store, then a process pool (``jobs`` workers) with per-run
  timeout and retry; a serial in-process path (``jobs=1``) is the
  deterministic reference.
* :class:`ResultStore` — a schema-versioned JSON store addressed by
  content: the key hashes the simulator source digest, the workload's
  compiled module, the technique name, and the full
  :meth:`~repro.config.gpu_config.GPUConfig.fingerprint`.  Editing the
  simulator, a workload, or any config knob changes the key, so stale
  results *miss* instead of being served silently — the store never
  needs manual clearing for correctness.

Results cross the store and the process boundary as plain JSON
(:meth:`RunResult.to_dict`), never as pickled class layouts, so the
serial and parallel paths produce byte-identical store entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from functools import lru_cache
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config.gpu_config import GPUConfig
from ..config import volta
from ..core.techniques import resolve_technique
from ..resilience.checkpoint import DrainInterrupt
from ..resilience.errors import (
    InvariantViolation,
    SimulationError,
    StoreCorruptionError,
    WorkerCrashError,
)
from ..workloads import make_workload
from ..workloads.spec import Workload
from ._runner import RunResult, SWL_SWEEP, run_best_swl, run_workload

#: Bump whenever the stored JSON layout changes; old entries then miss.
#: v2: SimStats grew the CPI-stack fields (cpi_stack, cpi_by_kernel,
#: warp_stalls) — v1 entries lack them and would crash from_dict.
#: v3: SimStats grew peak_stack_depth and RunResult grew the interproc
#: static-feature block.
#: v4: SimStats grew the plugin-ABI spill/fill and register-file-cache
#: counters (smem_spill_regs .. rfcache_evictions).
STORE_SCHEMA_VERSION = 4

#: Files under ``repro/`` whose edits cannot change simulation results and
#: therefore stay out of the simulator digest (everything else is hashed).
_DIGEST_EXEMPT_TOP = ("cli.py", "__main__.py")
_DIGEST_EXEMPT_HARNESS = ("__init__.py", "executor.py", "experiments.py",
                          "_regenerate.py", "tables.py")
#: Whole packages that only orchestrate (which cells to run, in what
#: order) and can never change what a single simulation computes.
#: ``service`` qualifies because checkpoint/resume is byte-identical by
#: contract — a drained-and-resumed run stores the same statistics an
#: uninterrupted one would.
_DIGEST_EXEMPT_PACKAGES = ("dse", "service")


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ExecutorError(WorkerCrashError):
    """A request failed after exhausting its retries (or was quarantined).

    ``worker_traceback`` carries the last failing attempt's formatted
    traceback — remote (pool-worker) tracebacks included — and every
    attempt's traceback lands in ``ExecutorStats.crash_log``.

    ``transient`` tells callers with their own retry budget (the service
    scheduler) whether re-submitting could plausibly succeed: ``True``
    for environmental failures (worker death, timeouts, pickling), and
    ``False`` when the underlying cause is a deterministic
    :class:`SimulationError` or the request is quarantined — replaying
    those can only fail again, identically.
    """

    def __init__(
        self,
        message: str = "",
        *,
        worker_traceback: Optional[str] = None,
        transient: bool = True,
        diagnostics=None,
    ) -> None:
        super().__init__(
            message, worker_traceback=worker_traceback, diagnostics=diagnostics
        )
        self.transient = transient


def _remote_traceback(exc: BaseException) -> str:
    """Formatted traceback for *exc*, preferring the pool's remote one.

    ``concurrent.futures`` re-raises worker exceptions with the worker's
    formatted traceback chained as a ``_RemoteTraceback`` cause; that is
    the one that names the failing simulator frame, so prefer it over the
    local re-raise site.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def simulator_digest() -> str:
    """Digest of every simulator-relevant source file in the package.

    Any edit to the ISA, emulator, timing model, CARS mechanism, configs,
    metrics, workload definitions, or the runner changes this digest and
    thereby every store key — the "cache must be cleared manually after
    changing simulator code" failure mode of the old pickle cache is gone.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if len(rel.parts) == 1 and rel.name in _DIGEST_EXEMPT_TOP:
            continue
        if rel.parts[0] == "harness" and rel.name in _DIGEST_EXEMPT_HARNESS:
            continue
        if rel.parts[0] in _DIGEST_EXEMPT_PACKAGES:
            continue
        digest.update(str(rel).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def workload_digest(workload: Workload, inlined: bool = False) -> str:
    """Digest of the compiled module a run replays, plus its launch schedule.

    Hashes the module's :meth:`~repro.isa.program.Module.content_digest`
    (every function's instruction listing and register metadata, for the
    baseline or LTO-inlined binary, whichever *inlined* selects) together
    with the kernel-launch schedule.  The module digest is the same key
    the lint and interprocedural-analysis registries use.
    """
    module = workload.module(inlined)
    outer = hashlib.sha256(module.content_digest().encode())
    for launch in workload.launches:
        outer.update(repr(launch).encode())
    outer.update(str(workload.max_warp_instructions).encode())
    return outer.hexdigest()


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentRequest:
    """One cell of the evaluation grid, addressed by content.

    ``technique`` is a *name* (``"cars"``, ``"swl_4"``, ``"best_swl"``, …)
    rather than a :class:`Technique` object so requests can cross process
    boundaries; workers resolve names via
    :func:`repro.core.techniques.resolve_technique`.  ``sweep`` applies
    only to ``best_swl`` and is normalized to ``()`` otherwise so equal
    cells hash equally across figures.
    """

    workload: str
    technique: str
    config: GPUConfig = field(default_factory=volta)
    sweep: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.technique == "best_swl":
            if not self.sweep:
                object.__setattr__(self, "sweep", tuple(SWL_SWEEP))
        elif self.sweep:
            object.__setattr__(self, "sweep", ())

    @property
    def uses_inlined(self) -> bool:
        if self.technique == "best_swl":
            return False
        return resolve_technique(self.technique).use_inlined

    def to_dict(self) -> Dict[str, Any]:
        # config.to_dict() deliberately drops the backend (it is not part
        # of the simulated machine); thread it at the request level so
        # pool workers honour the caller's backend choice.
        return {
            "workload": self.workload,
            "technique": self.technique,
            "config": self.config.to_dict(),
            "backend": self.config.backend,
            "sweep": list(self.sweep),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentRequest":
        config = GPUConfig.from_dict(data["config"])
        backend = data.get("backend", "event")
        if backend != config.backend:
            config = config.with_backend(backend)
        return cls(
            workload=data["workload"],
            technique=data["technique"],
            config=config,
            sweep=tuple(data["sweep"]),
        )

    def store_key(self, workload: Workload) -> str:
        # ``config.fingerprint()`` excludes the timing backend on
        # purpose: backends are byte-identical by contract, so both
        # backends address the same entry (ResultStore.save cross-checks
        # the contract whenever an entry is recomputed).
        material = {
            "schema": STORE_SCHEMA_VERSION,
            "simulator": simulator_digest(),
            "workload": self.workload,
            "module": workload_digest(workload, self.uses_inlined),
            "technique": self.technique,
            "config": self.config.fingerprint(),
            "sweep": list(self.sweep),
        }
        return hashlib.sha256(_canonical_json(material).encode()).hexdigest()


def execute_request(request: ExperimentRequest, workload: Workload) -> RunResult:
    """Simulate one request (used by both the serial path and workers)."""
    if request.technique == "best_swl":
        return run_best_swl(workload, config=request.config, sweep=request.sweep)
    technique = resolve_technique(request.technique)
    return run_workload(workload, technique, config=request.config)


def _pool_worker(payload: Tuple[Callable[[str], Workload], Dict[str, Any]]):
    """Top-level pool entry point: returns the result as plain JSON data."""
    factory, request_data = payload
    request = ExperimentRequest.from_dict(request_data)
    return execute_request(request, factory(request.workload)).to_dict()


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------


def default_store_root() -> str:
    """``REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-cars``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.expanduser(os.path.join("~", ".cache"))
    return os.path.join(base, "repro-cars")


class ResultStore:
    """Content-addressed, schema-versioned JSON result store.

    One file per key; writes are atomic (temp file + rename) so parallel
    workers and concurrent invocations never observe torn entries.
    Entries with a different schema version are treated as misses.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = Path(root if root is not None else default_store_root())

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[RunResult]:
        try:
            text = self.path_for(key).read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        if payload.get("schema") != STORE_SCHEMA_VERSION:
            return None
        return RunResult.from_dict(payload["result"])

    def save(self, key: str, request: ExperimentRequest, result: RunResult) -> Path:
        # Store keys exclude the timing backend, so a recompute under a
        # different backend (or a racing worker) must land on identical
        # statistics.  A mismatch here means the backends diverged — a
        # correctness bug, never something to silently overwrite.
        existing = self.load(key)
        if (
            existing is not None
            and existing.stats.to_dict() != result.stats.to_dict()
        ):
            raise InvariantViolation(
                f"result store divergence for {request.workload}/"
                f"{request.technique} (key {key[:12]}…): a recomputation "
                f"under backend {request.config.backend!r} produced "
                f"different statistics than the stored entry; timing "
                f"backends must be byte-identical"
            )
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "workload": request.workload,
            "technique": request.technique,
            "config_name": request.config.name,
            "result": result.to_dict(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(f"{key}.{os.getpid()}.tmp")
        # flush + fsync before the rename: rename-only guarantees the
        # *name* is atomic, not that the bytes hit disk — a power cut
        # between write and sync could publish a truncated entry.
        with open(tmp, "w") as fh:
            fh.write(_canonical_json(payload) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def info(self) -> Dict[str, Any]:
        paths = self.entries()
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "entries": len(paths),
            "bytes": sum(p.stat().st_size for p in paths),
        }

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def verify(self, *, strict: bool = False) -> Dict[str, Any]:
        """Fsck the store: quarantine torn/corrupt entries, report the rest.

        Each entry must parse as JSON, carry the ``schema``/``key``/
        ``result`` fields :meth:`save` writes, name itself consistently
        (filename stem == embedded key), and decode back into a
        :class:`RunResult`.  Entries failing any of those are moved to
        ``quarantine/`` (kept, not deleted — they are evidence).  Entries
        from an older schema version are *stale*, not corrupt: they were
        written correctly and simply miss, exactly as :meth:`load` treats
        them.  Leftover ``*.tmp`` files from interrupted saves are debris
        by construction (a completed save renames them away) and are
        removed.

        With ``strict=True`` a non-empty quarantine raises
        :class:`StoreCorruptionError` (after quarantining), which the CLI
        maps to a distinct non-zero exit code.
        """
        ok = stale = 0
        quarantined: List[str] = []
        removed_tmp = 0
        if self.root.is_dir():
            for debris in sorted(self.root.glob("*.tmp")):
                try:
                    debris.unlink()
                    removed_tmp += 1
                except OSError:
                    pass
        for path in self.entries():
            reason = self._entry_fault(path)
            if reason is None:
                ok += 1
            elif reason == "stale":
                stale += 1
            else:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, self.quarantine_dir / path.name)
                quarantined.append(path.name)
        report = {
            "root": str(self.root),
            "checked": ok + stale + len(quarantined),
            "ok": ok,
            "stale": stale,
            "removed_tmp": removed_tmp,
            "quarantined": quarantined,
        }
        if strict and quarantined:
            raise StoreCorruptionError(
                f"{len(quarantined)} corrupt store entr"
                f"{'y' if len(quarantined) == 1 else 'ies'} moved to "
                f"{self.quarantine_dir}",
                quarantined=quarantined,
            )
        return report

    def _entry_fault(self, path: Path) -> Optional[str]:
        """Why *path* is not a healthy entry: None, ``"stale"``, or a
        corruption reason."""
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None  # vanished under us (concurrent clear); not corrupt
        except ValueError:
            return "undecodable JSON (torn or truncated write)"
        if not isinstance(payload, dict):
            return "payload is not an object"
        for field_name in ("schema", "key", "workload", "technique", "result"):
            if field_name not in payload:
                return f"missing field {field_name!r}"
        if payload["schema"] != STORE_SCHEMA_VERSION:
            return "stale"
        if payload["key"] != path.stem:
            return "embedded key does not match filename"
        try:
            RunResult.from_dict(payload["result"])
        except Exception:
            return "result block does not decode"
        return None


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Counters for one executor's lifetime (the warm-cache proof reads
    ``executed``: a fully warm sweep simulates zero runs)."""

    executed: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    pool_breaks: int = 0
    quarantined: int = 0
    #: One entry per failed attempt: workload/technique/stage plus the
    #: formatted traceback (remote tracebacks preserved from workers).
    crash_log: List[Dict[str, str]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            data[f.name] = list(value) if isinstance(value, list) else value
        return data

    def reset(self) -> None:
        for f in fields(self):
            current = getattr(self, f.name)
            setattr(self, f.name, [] if isinstance(current, list) else 0)

    def summary(self) -> str:
        text = (
            f"simulated {self.executed} runs, {self.store_hits} store hits, "
            f"{self.memo_hits} memo hits, {self.retries} retries, "
            f"{self.timeouts} timeouts"
        )
        if self.pool_breaks or self.quarantined:
            text += (
                f", {self.pool_breaks} pool breaks, "
                f"{self.quarantined} quarantined"
            )
        return text


#: Progress callback: (done, total, request, source) with source one of
#: "memo" | "store" | "run".
ProgressFn = Callable[[int, int, ExperimentRequest, str], None]


class Executor:
    """Executes experiment requests with memoization, the result store,
    and an optional process pool.

    Args:
        jobs: worker processes; ``1`` runs serially in-process (the
            deterministic reference path — both paths store identical
            bytes).
        store: the :class:`ResultStore` (default: the shared on-disk one).
        timeout: per-request cap in seconds on *waiting* for a worker;
            timed-out requests are re-run in-process.  ``None`` disables.
        retries: attempts per request before :class:`ExecutorError`.
        progress: optional callback invoked as each request resolves.
        workload_factory: name -> :class:`Workload` resolver; must be a
            picklable module-level callable when ``jobs > 1``.
        breaker_threshold: failed-sweep count after which a request is
            quarantined — further attempts raise immediately instead of
            re-crashing the sweep (circuit breaker).
        backoff_base: first retry delay in seconds; doubles per attempt
            (capped at 30 s).  Zero disables sleeping.
        runner: the callable the *in-process* path uses to simulate one
            request, ``(request, workload) -> RunResult`` (default
            :func:`execute_request`).  The service layer swaps in a
            drain-aware, checkpoint-resuming runner here; pool workers
            always use the plain :func:`execute_request` since a runner
            closure cannot cross the process boundary.

    A :class:`~repro.resilience.checkpoint.DrainInterrupt` raised by the
    runner is *not* a failure: it propagates untouched — no retry, no
    crash-log entry, no breaker count — because it means the run was
    deliberately checkpointed for a graceful shutdown.

    Degradation: a broken process pool (a worker killed by the OS takes
    the whole ``ProcessPoolExecutor`` down) fails its in-flight requests
    over to the in-process path and pins the executor serial from then on
    — a crashing environment degrades to slow, not to lost sweeps.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        store: Optional[ResultStore] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        progress: Optional[ProgressFn] = None,
        workload_factory: Callable[[str], Workload] = make_workload,
        breaker_threshold: int = 3,
        backoff_base: float = 0.1,
        runner: Callable[[ExperimentRequest, Workload], RunResult] = (
            execute_request
        ),
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.store = store if store is not None else ResultStore()
        self.timeout = timeout
        self.retries = max(1, int(retries))
        self.progress = progress
        self.workload_factory = workload_factory
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.backoff_base = backoff_base
        self.runner = runner
        self.stats = ExecutorStats()
        self._memo: Dict[ExperimentRequest, RunResult] = {}
        self._keys: Dict[ExperimentRequest, str] = {}
        self._fail_streak: Dict[ExperimentRequest, int] = {}
        self._quarantined: set = set()
        self._pool_broken = False

    # -- cache plumbing -------------------------------------------------

    def clear_memo(self) -> None:
        """Drop in-memory results (the on-disk store is untouched)."""
        self._memo.clear()
        self._keys.clear()

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    def key_for(self, request: ExperimentRequest) -> str:
        key = self._keys.get(request)
        if key is None:
            key = request.store_key(self.workload_factory(request.workload))
            self._keys[request] = key
        return key

    # -- execution ------------------------------------------------------

    def run_one(self, request: ExperimentRequest) -> RunResult:
        return self.run_many([request])[request]

    def run_many(
        self, requests: Iterable[ExperimentRequest]
    ) -> Dict[ExperimentRequest, RunResult]:
        ordered: List[ExperimentRequest] = []
        seen = set()
        for request in requests:
            if request not in seen:
                seen.add(request)
                ordered.append(request)

        results: Dict[ExperimentRequest, RunResult] = {}
        pending: List[ExperimentRequest] = []
        total = len(ordered)
        self._done = 0
        for request in ordered:
            cached = self._memo.get(request)
            if cached is not None:
                self.stats.memo_hits += 1
                results[request] = cached
                self._notify(total, request, "memo")
                continue
            try:
                stored = self.store.load(self.key_for(request))
            except Exception:
                # A workload factory (or store) that fails here must not
                # crash the sweep untyped; _run_local re-raises it through
                # the retry/quarantine machinery below.
                stored = None
            if stored is not None:
                self.stats.store_hits += 1
                self._memo[request] = stored
                results[request] = stored
                self._notify(total, request, "store")
                continue
            pending.append(request)

        if pending:
            if self.jobs > 1 and len(pending) > 1 and not self._pool_broken:
                self._run_pool(pending, results, total)
            else:
                for request in pending:
                    results[request] = self._run_local(request, total)
        return results

    # -- internals ------------------------------------------------------

    def _notify(self, total: int, request: ExperimentRequest, source: str) -> None:
        self._done += 1
        if self.progress is not None:
            self.progress(self._done, total, request, source)

    def _commit(
        self, request: ExperimentRequest, result: RunResult, total: int
    ) -> RunResult:
        # Round-trip through the JSON form so serial and pooled execution
        # hand figures bit-identical objects (workers already return JSON).
        result = RunResult.from_dict(result.to_dict())
        self.store.save(self.key_for(request), request, result)
        self._memo[request] = result
        self.stats.executed += 1
        self._notify(total, request, "run")
        return result

    def _record_crash(
        self,
        request: ExperimentRequest,
        stage: str,
        exc: BaseException,
        tb: Optional[str],
    ) -> None:
        self.stats.crash_log.append({
            "workload": request.workload,
            "technique": request.technique,
            "stage": stage,
            "error": repr(exc),
            "traceback": tb or "",
        })

    def _note_failure(self, request: ExperimentRequest) -> None:
        """Count a retries-exhausted failure toward the circuit breaker."""
        self.stats.failures += 1
        streak = self._fail_streak.get(request, 0) + 1
        self._fail_streak[request] = streak
        if streak >= self.breaker_threshold and request not in self._quarantined:
            self._quarantined.add(request)
            self.stats.quarantined += 1

    def _run_local(
        self,
        request: ExperimentRequest,
        total: int,
        *,
        attempts_used: int = 0,
        last_error: Optional[BaseException] = None,
        last_tb: Optional[str] = None,
    ) -> RunResult:
        """In-process attempts for *request*.

        ``attempts_used`` (with the failure that consumed them) carries
        over attempts already burned by the pool path — a timed-out or
        crashed pool attempt counts against the same retry budget instead
        of granting a fresh one, and if the budget is gone the error
        raised here chains from that original pool failure.
        """
        if request in self._quarantined:
            raise ExecutorError(
                f"{request.workload}/{request.technique} is quarantined "
                f"after {self._fail_streak.get(request, 0)} failed sweeps "
                f"(circuit breaker; see stats.crash_log)",
                transient=False,
            )
        deterministic = False
        for attempt in range(attempts_used, self.retries):
            if attempt:
                self.stats.retries += 1
                if self.backoff_base > 0:
                    time.sleep(
                        min(self.backoff_base * 2 ** (attempt - 1), 30.0)
                    )
            try:
                result = self.runner(
                    request, self.workload_factory(request.workload)
                )
            except DrainInterrupt:
                # Deliberate checkpoint-and-stop, not a failure; the
                # service resumes this run after restart.
                raise
            except SimulationError as exc:
                # The model itself failed (deadlock, budget, invariant):
                # deterministic, so a replay cannot go differently.
                last_error = exc
                last_tb = traceback.format_exc()
                self._record_crash(request, "local", exc, last_tb)
                deterministic = True
                break
            except Exception as exc:
                last_error = exc
                last_tb = traceback.format_exc()
                self._record_crash(request, "local", exc, last_tb)
                continue
            self._fail_streak.pop(request, None)
            return self._commit(request, result, total)
        self._note_failure(request)
        raise ExecutorError(
            f"{request.workload}/{request.technique} failed after "
            f"{max(self.retries, attempts_used)} attempts: {last_error!r}",
            worker_traceback=last_tb,
            transient=not deterministic,
        ) from last_error

    def _run_pool(
        self,
        pending: Sequence[ExperimentRequest],
        results: Dict[ExperimentRequest, RunResult],
        total: int,
    ) -> None:
        workers = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: List[Tuple[ExperimentRequest, Any]] = []
        # (request, attempts_used, last_error, last_tb): what falls back
        # to the in-process path, with the attempts (and the failure that
        # burned them) the pool already consumed from the retry budget.
        failed: List[
            Tuple[ExperimentRequest, int,
                  Optional[BaseException], Optional[str]]
        ] = []
        hung = False
        try:
            try:
                for request in pending:
                    futures.append((request, pool.submit(
                        _pool_worker,
                        (self.workload_factory, request.to_dict()),
                    )))
            except BrokenProcessPool:
                # Broke mid-submission; the already-submitted futures
                # raise the same error below and record it once there.
                pass
            for index, (request, future) in enumerate(futures):
                try:
                    data = future.result(timeout=self.timeout)
                except FutureTimeoutError as exc:
                    # A hung attempt is still an attempt: it counts
                    # against the retry budget (attempts_used=1) and is
                    # logged so the final failure chain shows the hang,
                    # not just whatever the replay does.
                    self.stats.timeouts += 1
                    hung = True
                    tb = (
                        f"worker exceeded the {self.timeout}s per-request "
                        f"timeout for {request.workload}/{request.technique}"
                    )
                    self._record_crash(request, "timeout", exc, tb)
                    failed.append((request, 1, exc, tb))
                except BrokenProcessPool as exc:
                    # A worker died hard (signal/OOM): the pool is gone,
                    # and so is every in-flight future.  Degrade to the
                    # serial path for the rest of this executor's life.
                    # The collateral futures get a fresh budget — their
                    # own attempts never ran.
                    self.stats.pool_breaks += 1
                    self._pool_broken = True
                    self._record_crash(
                        request, "pool", exc, _remote_traceback(exc)
                    )
                    failed.extend(
                        (r, 0, None, None) for r, _ in futures[index:]
                    )
                    break
                except SimulationError as exc:
                    # A typed simulator failure is deterministic; re-running
                    # it in-process would only fail again, slower.
                    tb = _remote_traceback(exc)
                    self._record_crash(request, "pool", exc, tb)
                    self._note_failure(request)
                    raise ExecutorError(
                        f"{request.workload}/{request.technique} failed in "
                        f"a worker: {exc}",
                        worker_traceback=tb,
                        transient=False,
                    ) from exc
                except Exception as exc:
                    # Environmental failure (pickling, transient OS error):
                    # worth an in-process replay, charged one attempt
                    # (_run_local counts it via attempts_used).
                    tb = _remote_traceback(exc)
                    self._record_crash(request, "pool", exc, tb)
                    failed.append((request, 1, exc, tb))
                else:
                    results[request] = self._commit(
                        request, RunResult.from_dict(data), total
                    )
        finally:
            # A hung worker must not block shutdown; abandon it.
            pool.shutdown(wait=not hung, cancel_futures=True)
        if len(futures) < len(pending):
            # The pool broke before everything was even submitted.
            if not self._pool_broken:
                self.stats.pool_breaks += 1
                self._pool_broken = True
            submitted = {request for request, _ in futures}
            failed.extend(
                (r, 0, None, None) for r in pending if r not in submitted
            )
        # Whatever the pool could not finish runs in-process, resuming
        # the retry budget where the pool attempt left it.
        for request, used, exc, tb in failed:
            results[request] = self._run_local(
                request, total,
                attempts_used=used, last_error=exc, last_tb=tb,
            )


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanProgress:
    """Where a plan stands against the caches, without simulating.

    ``memo`` cells resolve from this executor's in-memory memo, ``stored``
    from the on-disk result store; ``pending`` is what :meth:`execute`
    would actually have to simulate.  Probing is pure reads — the memo,
    the store, and the counters are all untouched.
    """

    total: int
    memo: int
    stored: int

    @property
    def pending(self) -> int:
        return self.total - self.memo - self.stored

    @property
    def complete(self) -> bool:
        return self.pending == 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "memo": self.memo,
            "stored": self.stored,
            "pending": self.pending,
        }


class ExperimentPlan:
    """An ordered, deduplicated batch of requests bound to an executor.

    Figure functions declare *what* they need here; the executor decides
    how to satisfy it (memo, store, pool).  A plan is resumable mid-sweep:
    every completed request is persisted individually, so re-running an
    interrupted plan only simulates the remainder (:meth:`progress`
    reports the split without triggering any simulation).

    Beyond the imperative :meth:`add` / :meth:`add_best_swl` path, a plan
    can be compiled from a declarative :class:`repro.dse.Space` via
    :meth:`from_space` / :meth:`add_space` — anything exposing
    ``compile_requests() -> Iterable[ExperimentRequest]`` qualifies, so
    the executor layer stays import-free of the DSL.
    """

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self._requests: List[ExperimentRequest] = []
        self._seen: set = set()

    @classmethod
    def from_space(cls, *, space: Any, executor: Executor) -> "ExperimentPlan":
        """Compile *space* into a fresh plan bound to *executor*.

        Keyword-only by contract: this is the stable constructor path the
        DSL (and :func:`repro.api.explore`) builds on.
        """
        plan = cls(executor)
        plan.add_space(space)
        return plan

    def add_space(self, space: Any) -> List[ExperimentRequest]:
        """Queue every cell *space* compiles to; returns them in order.

        Cells already queued (by a previous space, or imperatively)
        deduplicate exactly like repeated :meth:`add` calls, so
        overlapping spaces share simulations.
        """
        return [self.add_request(r) for r in space.compile_requests()]

    def add_request(self, request: ExperimentRequest) -> ExperimentRequest:
        if request not in self._seen:
            self._seen.add(request)
            self._requests.append(request)
        return request

    def add(
        self,
        workload: str,
        technique,
        *,
        config: Optional[GPUConfig] = None,
    ) -> ExperimentRequest:
        """Queue one (workload, technique[, config]) cell.

        ``technique`` may be a :class:`Technique` or its name.
        """
        name = technique if isinstance(technique, str) else technique.name
        return self.add_request(ExperimentRequest(
            workload, name, config if config is not None else volta()
        ))

    def add_best_swl(
        self,
        workload: str,
        *,
        config: Optional[GPUConfig] = None,
        sweep: Sequence[int] = SWL_SWEEP,
    ) -> ExperimentRequest:
        return self.add_request(ExperimentRequest(
            workload, "best_swl",
            config if config is not None else volta(), tuple(sweep),
        ))

    @property
    def requests(self) -> List[ExperimentRequest]:
        return list(self._requests)

    def __len__(self) -> int:
        return len(self._requests)

    def progress(self) -> PlanProgress:
        """Split the plan's cells into memo / stored / pending.

        Pure probe: nothing is simulated and no executor counter moves,
        so it is safe to call before :meth:`execute` (resume reporting)
        or after a kill to see how much of a grid survived.
        """
        memo = stored = 0
        executor = self.executor
        for request in self._requests:
            if request in executor._memo:
                memo += 1
                continue
            try:
                if executor.store.load(executor.key_for(request)) is not None:
                    stored += 1
            except Exception:
                pass  # unloadable entries count as pending, like run_many
        return PlanProgress(total=len(self._requests), memo=memo,
                            stored=stored)

    def execute(self) -> Dict[ExperimentRequest, RunResult]:
        return self.executor.run_many(self._requests)
