"""Experiment runner: (workload x technique) -> statistics.

Mirrors the paper's methodology: every technique replays the same traces
on the same (scaled) hardware configuration; results are normalized to the
baseline run on that configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..analysis import ensure_module_linted
from ..analysis.interproc import ensure_module_analyzed
from ..callgraph import analyze_kernel, build_call_graph
from ..cars.policy import PolicyMemory
from ..config.gpu_config import GPUConfig
from ..config import volta
from ..core.backends import resolve_backend
from ..core.techniques import BASELINE, Technique, swl
from ..metrics.counters import SimStats
from ..obs import ObsSession
from ..power.model import DEFAULT_ENERGY_MODEL, EnergyModel
from ..workloads.spec import Workload

#: SWL warp counts the paper sweeps for Best-SWL.
SWL_SWEEP = (1, 2, 3, 4, 8, 16)


@dataclass
class RunResult:
    """Outcome of one (workload, technique) simulation."""

    workload: str
    technique: str
    config: GPUConfig
    stats: SimStats
    #: Static-feature block from the interprocedural analysis (cached by
    #: module digest alongside the lint gate); empty for results restored
    #: from a pre-v3 store.
    interproc: Dict[str, Any] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def speedup_over(self, baseline: "RunResult") -> float:
        """``baseline.cycles / self.cycles``; zero cycles fail loudly.

        A zero-cycle run means the simulation produced nothing — silently
        returning 0.0 here used to skew downstream geomeans instead of
        flagging the broken run.
        """
        if self.cycles == 0 or baseline.cycles == 0:
            raise ValueError(
                f"speedup undefined: zero-cycle run "
                f"({self.workload}/{self.technique}: {self.cycles} cycles, "
                f"{baseline.workload}/{baseline.technique}: "
                f"{baseline.cycles} cycles)"
            )
        return baseline.cycles / self.cycles

    def energy(self, model: EnergyModel = DEFAULT_ENERGY_MODEL) -> float:
        return model.energy(self.stats, self.config)

    def energy_efficiency(self, model: EnergyModel = DEFAULT_ENERGY_MODEL) -> float:
        return model.efficiency(self.stats, self.config)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the result store's serialization): no pickled
        class layouts, so stored results survive refactors of this class."""
        return {
            "workload": self.workload,
            "technique": self.technique,
            "config": self.config.to_dict(),
            "stats": self.stats.to_dict(),
            "interproc": self.interproc,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            workload=data["workload"],
            technique=data["technique"],
            config=GPUConfig.from_dict(data["config"]),
            stats=SimStats.from_dict(data["stats"]),
            interproc=data.get("interproc", {}),
        )


def run_workload(
    workload: Workload,
    technique: Technique,
    *,
    config: Optional[GPUConfig] = None,
    policy_memory: Optional[PolicyMemory] = None,
    obs: Optional["ObsSession"] = None,
    backend: Optional[str] = None,
) -> RunResult:
    """Simulate every kernel launch of *workload* under *technique*.

    *obs* (an :class:`repro.obs.ObsSession`) opts into the event tracer
    and per-warp stall attribution; the CPI stack itself is always on.
    *backend* picks the timing backend (a :mod:`repro.core.backends`
    name); ``None`` defers to ``config.backend``.  Backends are
    byte-identical by contract, so this never changes a result — only
    how it is computed.
    """
    results = run_workload_batch(
        workload,
        technique,
        configs=[config if config is not None else volta()],
        policy_memory=policy_memory,
        obs=obs,
        backend=backend,
    )
    return results[0]


def run_workload_batch(
    workload: Workload,
    technique: Technique,
    *,
    configs: Sequence[GPUConfig],
    policy_memory: Optional[PolicyMemory] = None,
    obs: Optional["ObsSession"] = None,
    backend: Optional[str] = None,
) -> "List[RunResult]":
    """Simulate *workload* under *technique* for N configurations in one
    pass, sharing every config-independent stage.

    The compile, the ABI/stack-safety lint gate, the interprocedural
    static analysis, the emulator traces, and the call graph are all
    functions of (workload, technique) alone; a config sweep repeats
    only the timing simulation.  Equivalence with N independent
    :func:`run_workload` calls is pinned by
    ``tests/test_backend_equivalence.py`` (each member gets its own
    fresh :class:`~repro.cars.policy.PolicyMemory` unless one is passed
    in, exactly as the single-run path defaults).
    """
    if not configs:
        return []
    module = workload.module(inlined=technique.use_inlined)
    # Refuse to simulate binaries that fail the ABI/stack-safety lint:
    # a PUSH/POP imbalance or SSY mismatch would corrupt the simulated
    # register stack and produce garbage figures rather than a crash.
    ensure_module_linted(module, workload.name)
    # The interprocedural static features ride along on every result;
    # like the lint gate, the analysis is cached by module digest.
    interproc = ensure_module_analyzed(module, workload.name).summary()
    traces = workload.traces(inlined=technique.use_inlined)
    graph = build_call_graph(module) if technique.requires_analysis else None

    results: List[RunResult] = []
    for base_config in configs:
        cfg = technique.adjust_config(base_config)
        gpu_cls = resolve_backend(
            backend if backend is not None else cfg.backend
        ).gpu_cls
        memory = policy_memory if policy_memory is not None else PolicyMemory()
        total = SimStats()
        for trace in traces:
            kernel_stats = SimStats()
            analysis = (
                analyze_kernel(graph, trace.kernel) if graph is not None else None
            )
            ctx = technique.make_context(trace, cfg, kernel_stats, analysis, memory)
            gpu_cls(cfg, ctx, kernel_stats, obs=obs).run(trace)
            total.merge_kernel(kernel_stats)
        results.append(
            RunResult(workload.name, technique.name, cfg, total, interproc)
        )
    return results


def run_best_swl(
    workload: Workload,
    *,
    config: Optional[GPUConfig] = None,
    sweep: Sequence[int] = SWL_SWEEP,
    backend: Optional[str] = None,
) -> RunResult:
    """The paper's Best-SWL: sweep warp limits, keep the fastest."""
    best: Optional[RunResult] = None
    cfg = config if config is not None else volta()
    for limit in sweep:
        if limit > cfg.max_warps_per_sm:
            continue
        result = run_workload(workload, swl(limit), config=cfg, backend=backend)
        if best is None or result.cycles < best.cycles:
            best = result
    assert best is not None
    return RunResult(
        best.workload, "best_swl", best.config, best.stats, best.interproc)


def run_baseline(
    workload: Workload, *, config: Optional[GPUConfig] = None
) -> RunResult:
    """Simulate *workload* under the baseline ABI."""
    return run_workload(workload, BASELINE, config=config)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic).

    Non-positive values and empty input raise :class:`ValueError`: they can
    only come from a broken run (see :meth:`RunResult.speedup_over`), and
    silently dropping them used to skew the paper-facing geomean rows.
    """
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    bad = [v for v in values if v <= 0]
    if bad:
        raise ValueError(f"geomean requires positive values, got {bad}")
    return math.exp(sum(math.log(v) for v in values) / len(values))
