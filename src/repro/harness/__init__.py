"""Experiment harness: the public run API, the parallel executor with its
content-addressed result store, per-figure experiments, table formatting.

The supported surface is ``__all__`` below: the runner entry points
(``run_workload``/``run_best_swl``/``run_baseline``, keyword-only options),
the declarative executor (``ExperimentRequest``/``ExperimentPlan``/
``Executor``/``ResultStore``), and the figure/table functions in
:mod:`repro.harness.experiments`.
"""

from .runner import (
    RunResult,
    SWL_SWEEP,
    geomean,
    run_baseline,
    run_best_swl,
    run_workload,
)
from .executor import (
    Executor,
    ExecutorError,
    ExecutorStats,
    ExperimentPlan,
    ExperimentRequest,
    ResultStore,
    STORE_SCHEMA_VERSION,
    default_store_root,
    simulator_digest,
    workload_digest,
)
from . import experiments
from .tables import format_table, format_series

__all__ = [
    # runner
    "RunResult",
    "SWL_SWEEP",
    "geomean",
    "run_baseline",
    "run_best_swl",
    "run_workload",
    # executor + result store
    "Executor",
    "ExecutorError",
    "ExecutorStats",
    "ExperimentPlan",
    "ExperimentRequest",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "default_store_root",
    "simulator_digest",
    "workload_digest",
    # figures/tables
    "experiments",
    "format_table",
    "format_series",
]
