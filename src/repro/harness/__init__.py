"""Experiment harness: runners, per-figure experiments, table formatting."""

from .runner import (
    RunResult,
    SWL_SWEEP,
    geomean,
    run_baseline,
    run_best_swl,
    run_workload,
)
from . import experiments
from .tables import format_table, format_series

__all__ = [
    "RunResult",
    "SWL_SWEEP",
    "geomean",
    "run_baseline",
    "run_best_swl",
    "run_workload",
    "experiments",
    "format_table",
    "format_series",
]
