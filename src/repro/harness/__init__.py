"""Experiment harness: the executor with its content-addressed result
store, per-figure experiments, table formatting.

Programmatic entry points live in the stable facade :mod:`repro.api`
(``Simulation`` / ``Sweep`` / ``Batch`` / ``Space`` / ``Tuner``); the
modules here are the plumbing those classes drive.  The PR-4 era
``run_workload``/``run_best_swl``/``run_baseline`` deprecation shims
(and the ``repro.harness.runner`` module) have been removed — the
implementations remain in :mod:`repro.harness._runner` for harness
internals and tests.
"""

from ._runner import (
    RunResult,
    SWL_SWEEP,
    geomean,
)
from .executor import (
    Executor,
    ExecutorError,
    ExecutorStats,
    ExperimentPlan,
    ExperimentRequest,
    PlanProgress,
    ResultStore,
    STORE_SCHEMA_VERSION,
    default_store_root,
    simulator_digest,
    workload_digest,
)
from . import experiments
from .tables import format_table, format_series

__all__ = [
    # runner
    "RunResult",
    "SWL_SWEEP",
    "geomean",
    # executor + result store
    "Executor",
    "ExecutorError",
    "ExecutorStats",
    "ExperimentPlan",
    "ExperimentRequest",
    "PlanProgress",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "default_store_root",
    "simulator_digest",
    "workload_digest",
    # figures/tables
    "experiments",
    "format_table",
    "format_series",
]
