"""Experiment harness: the executor with its content-addressed result
store, per-figure experiments, table formatting.

Programmatic entry points have moved to the stable facade in
:mod:`repro.api` (``Simulation`` / ``Sweep``); the legacy names
(``run_workload``/``run_best_swl``/``run_baseline``) are still importable
from here but emit a :class:`DeprecationWarning` on first access.
"""

import warnings as _warnings

from ._runner import (
    RunResult,
    SWL_SWEEP,
    geomean,
)
from .executor import (
    Executor,
    ExecutorError,
    ExecutorStats,
    ExperimentPlan,
    ExperimentRequest,
    ResultStore,
    STORE_SCHEMA_VERSION,
    default_store_root,
    simulator_digest,
    workload_digest,
)
from . import experiments
from .tables import format_table, format_series

__all__ = [
    # runner
    "RunResult",
    "SWL_SWEEP",
    "geomean",
    "run_baseline",
    "run_best_swl",
    "run_workload",
    # executor + result store
    "Executor",
    "ExecutorError",
    "ExecutorStats",
    "ExperimentPlan",
    "ExperimentRequest",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "default_store_root",
    "simulator_digest",
    "workload_digest",
    # figures/tables
    "experiments",
    "format_table",
    "format_series",
]

#: Legacy entry points, now behind repro.api: resolved lazily so the
#: deprecation fires only on use, once per name.
_DEPRECATED_RUNNERS = ("run_workload", "run_best_swl", "run_baseline")


def __getattr__(name: str):
    if name in _DEPRECATED_RUNNERS:
        _warnings.warn(
            f"repro.harness.{name} is deprecated; use the stable facade in "
            "repro.api (Simulation / Sweep) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import _runner

        func = getattr(_runner, name)
        globals()[name] = func  # warn once; later lookups bypass this hook
        return func
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
