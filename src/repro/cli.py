"""Command-line interface.

    python -m repro list
    python -m repro techniques
    python -m repro analyze --workload MST [--json] [--validate]
    python -m repro analyze --all --json
    python -m repro lint --workload MST [--strict] [--json] [--stack-regs N]
    python -m repro lint --all --strict
    python -m repro run --workload MST --technique cars [--config ampere] [--jobs 2]
    python -m repro run --workload MST --backend vectorized
    python -m repro profile --workload MST [--technique baseline] [--trace out.jsonl]
    python -m repro bench [--check] [--json bench.json] [--backend vectorized]
    python -m repro tune --workloads SSSP,MST --budget 50 [--json]
    python -m repro regen [output.md] [--jobs 4]
    python -m repro selfcheck [--seed 0] [--backend vectorized]
    python -m repro serve [--host 127.0.0.1] [--port 8642] [--root DIR]
    python -m repro cache info
    python -m repro cache verify [--strict]
    python -m repro cache clear

``--backend`` (run/bench/selfcheck) picks the timing backend (``event``
or ``vectorized``); backends are byte-identical by contract, so it
changes how a result is computed, never what it is.

Typed simulation failures exit with distinct codes (see README, "When a
run fails"): 2 generic, 3 deadlock/livelock, 4 max-cycles, 5 invariant
violation, 6 worker crash, 7 unknown technique name, 8 unsupported
feature (e.g. checkpoint/resume under the vectorized backend), 9
service-layer failure, 10 deadline exceeded, 11 store corruption
(``repro cache verify`` found and quarantined bad entries).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import lint_module, render_json, render_text
from .callgraph import analyze_kernel, build_call_graph
from .config import PRESETS
from .core.backends import DEFAULT_BACKEND, list_backends
from .core.techniques import (
    TECHNIQUE_FAMILIES,
    TECHNIQUE_REGISTRY,
    list_technique_families,
    list_techniques,
    resolve_technique,
)
from .harness.executor import Executor, ExperimentRequest, ResultStore
from .resilience.errors import SimulationError, exit_code_for
from .workloads import WORKLOAD_NAMES, make_workload


def _cmd_list(_args) -> int:
    print("workloads (Table I):")
    for name in WORKLOAD_NAMES:
        workload = make_workload(name)
        print(f"  {name:14s} {workload.suite:10s} depth={workload.paper_call_depth:2d} "
              f"cpki={workload.paper_cpki:6.2f}  [{workload.bottleneck}]")
    print("\ntechniques:", ", ".join(list_techniques()), "+ best_swl")
    print("families  :", ", ".join(list_technique_families()))
    print("configs   :", ", ".join(sorted(PRESETS)))
    return 0


def _cmd_techniques(_args) -> int:
    """List every registered technique (live registry, plugins included)."""
    print("registered techniques:")
    for name in list_techniques():
        technique = TECHNIQUE_REGISTRY[name]
        notes = [f"abi={technique.abi}"]
        if technique.abi == "cars":
            notes.append(f"mode={technique.cars_mode}")
        if technique.use_inlined:
            notes.append("lto-inlined")
        if technique.config_fn is not None:
            notes.append("config-transform")
        if technique.requires_analysis:
            notes.append("needs call-graph analysis")
        print(f"  {name:12s} {', '.join(notes)}")
    print("\nparametric families (resolvable by name, e.g. in sweeps):")
    for prefix in sorted(TECHNIQUE_FAMILIES):
        print(f"  {TECHNIQUE_FAMILIES[prefix].pattern}")
    print("\npseudo-techniques: best_swl (sweeps swl_<n>, keeps the fastest)")
    return 0


def _print_analysis(name, workload, module, report) -> None:
    graph = build_call_graph(module)
    print(f"{name}: {len(module.functions)} functions, "
          f"{module.code_bytes} code bytes")
    for kernel in module.kernels():
        analysis = analyze_kernel(graph, kernel.name)
        info = report.kernels[kernel.name]
        depth = ("unbounded" if info.frame_depth_bound is None
                 else info.frame_depth_bound)
        demand = ("unbounded" if info.worst_demand is None
                  else info.worst_demand)
        print(f"  kernel {kernel.name}: fru={analysis.kernel_fru} "
              f"low={analysis.low_watermark} high={analysis.high_watermark} "
              f"cyclic={analysis.cyclic} ladder={analysis.allocation_levels()}")
        print(f"    frame depth <= {depth}, stacked registers <= {demand}, "
              f"{len(info.call_sites)} call site(s)")
        if info.unbounded_functions:
            print("    unbounded recursion: "
                  + ", ".join(info.unbounded_functions))
        for site in info.call_sites:
            worst = ("unbounded" if site.max_entry_regs is None
                     else site.max_entry_regs)
            print(f"    site {site.caller} -> {site.callee}: "
                  f"occupancy [{site.min_entry_regs}, {worst}] "
                  f"(frame {site.frame_regs})")
        for func in sorted(info.live_fru):
            declared = info.declared_fru[func]
            live = info.live_fru[func]
            note = f" (tightenable to {live})" if live < declared else ""
            print(f"    {func}: declared fru={declared}, "
                  f"live pressure {live}{note}")
        for scheme in sorted(info.predictions):
            pred = info.predictions[scheme]
            tfd = ("any" if pred.trap_free_depth is None
                   else pred.trap_free_depth)
            print(f"    scheme {scheme}: {pred.regs_per_warp} regs/warp, "
                  f"stack {pred.stack_capacity}, trap-free depth {tfd}, "
                  f"guaranteed trap-free {pred.guaranteed_trap_free}, "
                  f">= {pred.min_traps_per_call} trap(s)/call, "
                  f"{pred.spill_bytes_avoided} spill bytes avoided")


def _validate_analysis(workload, config) -> list:
    """Simulate each CARS scheme and diff predictions against observation.

    Returns violation strings (empty = the soundness contract held)."""
    from .analysis.interproc import (
        SCHEME_TECHNIQUES, ensure_module_analyzed, validate_against_stats,
    )
    from .core.techniques import resolve_technique
    from .harness._runner import run_workload

    launched = [launch.kernel for launch in workload.launches]
    failures = []
    for scheme in sorted(SCHEME_TECHNIQUES):
        technique = resolve_technique(SCHEME_TECHNIQUES[scheme])
        module = workload.module(technique.use_inlined)
        report = ensure_module_analyzed(module, workload.name)
        stats = run_workload(workload, technique, config=config).stats
        violations = validate_against_stats(report, scheme, launched, stats)
        status = "VIOLATED" if violations else "ok"
        print(f"  validate {scheme} ({technique.name}): "
              f"peak depth {stats.peak_stack_depth}, {stats.traps} trap(s), "
              f"{stats.calls} call(s) -- {status}")
        failures.extend(f"{workload.name}: {v}" for v in violations)
    return failures


def _cmd_analyze(args) -> int:
    """Interprocedural register-pressure analysis of workload binaries.

    ``--validate`` additionally simulates every CARS scheme and exits 1
    if any static prediction is violated by the observed counters.
    """
    import json as _json

    from .analysis.interproc import (
        INTERPROC_SCHEMA_VERSION, analyze_module_interproc,
    )

    names = WORKLOAD_NAMES if args.all else [args.workload]
    config = PRESETS[args.config]
    payloads = []
    failures = []
    for name in names:
        workload = make_workload(name)
        module = workload.module()
        report = analyze_module_interproc(module, name)
        if args.json:
            payloads.append(report.to_dict())
        else:
            _print_analysis(name, workload, module, report)
        if args.validate:
            failures.extend(_validate_analysis(workload, config))
    if args.json:
        print(_json.dumps(
            {"schema": INTERPROC_SCHEMA_VERSION, "reports": payloads},
            indent=2, sort_keys=True))
    if failures:
        print(f"\nPREDICTION VIOLATIONS ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    """Lint compiled workloads; exit 0 clean, 1 on gate failures.

    Errors always fail the gate; warnings fail only under ``--strict``.
    Both the baseline and the LTO-inlined binary of each workload are
    checked, since the harness simulates both.
    """
    names = WORKLOAD_NAMES if args.all else [args.workload]
    reports = []
    for name in names:
        workload = make_workload(name)
        reports.append(
            lint_module(workload.module(), name, stack_regs=args.stack_regs))
        reports.append(
            lint_module(workload.module(inlined=True), f"{name}/lto",
                        stack_regs=args.stack_regs))
    print(render_json(reports) if args.json else render_text(reports))
    failed = [r.name for r in reports if not r.ok(strict=args.strict)]
    if failed:
        print(f"\nFAILED ({len(failed)}): {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_run(args) -> int:
    config = PRESETS[args.config].with_backend(args.backend)
    if args.technique != "best_swl":
        # Fail fast (exit code 7 with did-you-mean suggestions) instead of
        # burning executor retries on a name that can never resolve.
        resolve_technique(args.technique)
    executor = Executor(jobs=args.jobs)
    base_req = ExperimentRequest(args.workload, "baseline", config)
    run_req = ExperimentRequest(args.workload, args.technique, config)
    results = executor.run_many([base_req, run_req])
    baseline, result = results[base_req], results[run_req]
    stats = result.stats
    print(f"workload={args.workload} technique={args.technique} "
          f"config={args.config} backend={args.backend}")
    print(f"  cycles            : {stats.cycles}")
    print(f"  speedup vs base   : {baseline.cycles / stats.cycles:.3f}x")
    print(f"  warp instructions : {stats.warp_instructions}")
    print(f"  IPC               : {stats.ipc():.3f}")
    print(f"  L1D accesses      : {stats.total_l1_accesses} "
          f"(spill share {stats.spill_fraction():.0%})")
    print(f"  MPKI              : {stats.mpki():.1f}")
    print(f"  traps             : {stats.traps} "
          f"(ctx switches {stats.context_switches})")
    print(f"  energy efficiency : "
          f"{result.energy_efficiency() / baseline.energy_efficiency():.3f}x baseline")
    return 0


def _cmd_profile(args) -> int:
    """CPI-stack profile of one (workload, technique) run.

    Always simulates fresh (the tracer and per-warp attribution are not
    part of the result store's payload), prints the stall-attribution
    table, and optionally dumps the bounded event trace as JSONL.
    """
    from .harness._runner import run_workload
    from .metrics.counters import STREAM_SPILL
    from .metrics.report import cpi_stack_report
    from .obs import MEM_BUCKETS, ObsSession

    config = PRESETS[args.config]
    obs = ObsSession(
        trace=bool(args.trace),
        trace_limit=args.trace_limit,
        per_warp=args.per_warp,
    )
    result = run_workload(
        make_workload(args.workload), resolve_technique(args.technique),
        config=config, obs=obs,
    )
    stats = result.stats
    print(f"workload={args.workload} technique={args.technique} "
          f"config={args.config}")
    print(cpi_stack_report(
        stats, title=f"CPI stack ({args.workload}/{args.technique})"), end="")
    mem_share = sum(stats.cpi_stack[b] for b in MEM_BUCKETS) / stats.cycles
    spill_loads = stats.l1_load_sectors[STREAM_SPILL]
    spill_stores = stats.l1_store_sectors[STREAM_SPILL]
    print(f"memory-stall share : {mem_share:.1%} of cycles")
    print(f"spill/fill L1D share: {stats.spill_fraction():.1%} of accesses "
          f"({spill_loads} load + {spill_stores} store sectors)")
    if stats.traps:
        print(f"CARS traps         : {stats.traps} "
              f"({stats.trap_fraction():.3%} of calls)")
    if args.per_warp:
        worst = sorted(
            stats.warp_stalls.items(),
            key=lambda item: -sum(item[1].values()),
        )[:args.top_warps]
        print(f"\nworst {len(worst)} warps by stall cycles:")
        for key, stalls in worst:
            top = ", ".join(
                f"{bucket}={cycles}"
                for bucket, cycles in stalls.most_common(3)
            )
            print(f"  {key:<16} {sum(stalls.values()):>10}  ({top})")
    if args.trace:
        obs.tracer.write_jsonl(args.trace)
        dropped = (f", {obs.tracer.dropped} dropped"
                   if obs.tracer.dropped else "")
        print(f"\nwrote {len(obs.tracer.records())} trace events to "
              f"{args.trace}{dropped}")
    return 0


#: (workload, technique) pairs timed by ``repro bench`` — one
#: compute-bound and one memory-bound workload, under both ABIs, so both
#: the SM fast path and the L1/DRAM event machinery are on the clock.
BENCH_PAIRS = (
    ("FIB", "baseline"),
    ("FIB", "cars"),
    ("Bert_LT", "baseline"),
    ("Bert_LT", "cars"),
)


def _bench_calibration(rounds: int = 3) -> float:
    """Best-of-N CPU seconds for a fixed integer spin loop.

    A machine-speed proxy: normalizing stored cycles/sec by the ratio of
    calibration times makes the committed baseline comparable across
    hosts (CI runners included).  All bench timings use
    ``time.process_time`` — CPU time, not wall-clock — so background load
    on the host cannot fail the gate.
    """
    import time

    best = float("inf")
    for _ in range(rounds):
        t0 = time.process_time()
        x = 0
        for i in range(2_000_000):
            x = (x * 1103515245 + 12345 + i) & 0xFFFFFFFF
        best = min(best, time.process_time() - t0)
    return best


def _cmd_bench(args) -> int:
    """Simulator-throughput benchmark with a regression gate.

    Measures cycles/sec (best of ``--rounds`` after one warm-up run) for
    the :data:`BENCH_PAIRS` grid, prints a table against the committed
    ``BENCH_core.json`` baseline, and with ``--check`` exits 1 when the
    calibration-normalized throughput of any pair regresses more than
    ``--tolerance`` below the baseline's ``after_cps``.

    ``--backend`` times the same grid under another timing backend.
    Baseline entries record the backend they were measured under (a
    missing ``backend`` field means ``event``); the throughput gate only
    compares same-backend entries, so an event-core baseline can never
    flag a vectorized run (or vice versa) as a regression.  Simulated
    *cycle* counts, by contrast, are compared across backends on
    purpose: byte-identity is the backend contract.
    """
    import json
    import time
    from pathlib import Path

    from .harness._runner import run_workload

    backend = args.backend
    config = PRESETS[args.config].with_backend(backend)
    baseline_path = Path(args.baseline)
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else None
    )
    calib = _bench_calibration()
    scale = 1.0
    if baseline is not None and baseline.get("calibration_sec"):
        scale = calib / baseline["calibration_sec"]
    print(f"calibration: {calib:.3f}s spin "
          f"(baseline machine x{scale:.2f})" if baseline else
          f"calibration: {calib:.3f}s spin")
    print(f"backend: {backend}")

    measured = {}
    failures = []
    for workload_name, technique_name in BENCH_PAIRS:
        workload = make_workload(workload_name)
        technique = resolve_technique(technique_name)
        workload.traces(inlined=technique.use_inlined)  # compile+trace once
        run_workload(workload, technique, config=config)  # warm caches/JIT-ish
        best = float("inf")
        cycles = 0
        for _ in range(args.rounds):
            t0 = time.process_time()
            result = run_workload(workload, technique, config=config)
            best = min(best, time.process_time() - t0)
            cycles = result.cycles
        cps = cycles / best
        pair = f"{workload_name}/{technique_name}"
        # Non-default backends get distinct baseline keys so their entries
        # can coexist with the event core's in one BENCH_core.json.
        key = pair if backend == DEFAULT_BACKEND else f"{pair}@{backend}"
        measured[key] = {
            "cycles": cycles, "cycles_per_sec": round(cps), "backend": backend,
        }
        line = f"  {key:<18} {cycles:>9} cycles  {cps:>12,.0f} cyc/s"
        stored = baseline.get("workloads", {}) if baseline is not None else {}
        # Cycle drift is checked against *any* backend's entry for this
        # pair (backends are byte-identical by contract) ...
        for ref_key in (pair, f"{pair}@{backend}"):
            ref = stored.get(ref_key)
            if ref is not None and ref.get("cycles") is not None:
                if cycles != ref["cycles"]:
                    failures.append(
                        f"{key}: simulated {cycles} cycles, baseline recorded "
                        f"{ref['cycles']} under {ref_key!r} "
                        f"(timing model drifted)"
                    )
                break
        # ... but the throughput gate only ever compares same-backend
        # entries: cross-backend cycles/sec differences are implementation
        # facts, not regressions.
        ref = stored.get(key)
        if ref is not None and ref.get("backend", DEFAULT_BACKEND) == backend:
            ratio = (cps * scale) / ref["after_cps"]
            line += f"  vs baseline x{ratio:.2f}"
            if ratio < 1.0 - args.tolerance:
                failures.append(
                    f"{key}: normalized throughput x{ratio:.2f} is below "
                    f"the {1.0 - args.tolerance:.2f} gate"
                )
        print(line)

    if args.json:
        import numpy

        payload = {
            "schema": 1,
            "config": args.config,
            "backend": backend,
            "numpy_version": numpy.__version__,
            "calibration_sec": round(calib, 4),
            "results": measured,
        }
        Path(args.json).write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.json}")
    if args.check:
        if baseline is None:
            print(f"no baseline at {baseline_path}; nothing to check",
                  file=sys.stderr)
            return 1
        if failures:
            print("\nREGRESSIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("throughput gate: OK")
    return 0


def _cmd_tune(args) -> int:
    """Search CARS policy per workload class (``repro tune``).

    Runs :class:`repro.dse.Tuner` over the requested workloads, prints
    the best-policy-per-workload table (or the schema-versioned JSON
    payload with ``--json``).  Every cell goes through the result store,
    so a repeated invocation simulates nothing.
    """
    import json as _json

    from .dse import Tuner, default_policy_grid

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    unknown = sorted(set(workloads) - set(WORKLOAD_NAMES))
    if unknown:
        print(f"error: unknown workload(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    grid_kwargs = {}
    if args.schemes:
        grid_kwargs["schemes"] = tuple(
            s.strip() for s in args.schemes.split(",") if s.strip())
    if args.schedulers:
        grid_kwargs["schedulers"] = tuple(
            s.strip() for s in args.schedulers.split(",") if s.strip())
    policies = default_policy_grid(**grid_kwargs) if grid_kwargs else None
    tuner = Tuner(
        workloads=workloads,
        policies=policies,
        budget=args.budget,
        seed=args.seed,
        base_config=PRESETS[args.config],
        executor=Executor(jobs=args.jobs),
    )
    report = tuner.search()
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0


def _cmd_regen(args) -> int:
    from .harness._regenerate import main as regen_main

    argv = [args.output] if args.output else []
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.quiet:
        argv.append("--quiet")
    return regen_main(argv)


def _cmd_selfcheck(args) -> int:
    """Fault-injection battery: one fault per class, assert the alarm.

    Exit 0 when every fault class was converted into its expected typed
    exception, 1 otherwise (see ``repro.resilience.selfcheck``).
    """
    from .resilience.selfcheck import render_report, run_selfcheck

    reports = run_selfcheck(seed=args.seed, backend=args.backend)
    print(f"backend: {args.backend}")
    print(render_report(reports))
    return 0 if all(r.ok for r in reports) else 1


def _cmd_serve(args) -> int:
    """Run the resilient simulation service (``repro serve``).

    Blocks until SIGTERM/SIGINT, then drains gracefully: in-flight
    launches checkpoint at their next idle boundary and every job's
    state is journaled, so a restarted service resumes where this one
    stopped (docs/architecture.md §16).
    """
    from .service import ServiceConfig, TenantQuota
    from .service.http import serve

    config = ServiceConfig(
        root=args.root,
        store_root=args.store_dir or None,
        max_attempts=args.max_attempts,
        workers=args.workers,
        executor_jobs=args.jobs,
        executor_timeout=args.timeout,
        high_watermark=args.high_watermark,
        default_quota=TenantQuota(
            max_queued=args.tenant_queued,
            max_concurrent=args.tenant_concurrent,
            rate=args.tenant_rate,
        ),
        checkpoint_every_cycles=args.checkpoint_every,
    )
    serve(config, host=args.host, port=args.port)
    return 0


def _cmd_cache(args) -> int:
    """Inspect, fsck, or clear the content-addressed result store."""
    store = ResultStore(args.dir or None)
    if args.action == "info":
        info = store.info()
        print(f"root    : {info['root']}")
        print(f"schema  : v{info['schema']}")
        print(f"entries : {info['entries']}")
        print(f"bytes   : {info['bytes']}")
        return 0
    if args.action == "verify":
        from .resilience.errors import StoreCorruptionError

        report = store.verify(strict=False)
        print(f"root        : {report['root']}")
        print(f"checked     : {report['checked']}")
        print(f"ok          : {report['ok']}")
        print(f"stale       : {report['stale']} "
              f"(older schema; ignored, not corrupt)")
        print(f"tmp removed : {report['removed_tmp']}")
        print(f"quarantined : {len(report['quarantined'])}")
        for name in report["quarantined"]:
            print(f"  -> {store.quarantine_dir / name}")
        if report["quarantined"]:
            # Raised *after* the report so the log shows what moved;
            # main() maps this to the distinct exit code 11.
            raise StoreCorruptionError(
                f"{len(report['quarantined'])} corrupt store entr"
                f"{'y' if len(report['quarantined']) == 1 else 'ies'} "
                f"moved to {store.quarantine_dir}",
                quarantined=report["quarantined"],
            )
        if args.strict and report["stale"]:
            print(f"strict: {report['stale']} stale entries present",
                  file=sys.stderr)
            return 1
        print("store: clean")
        return 0
    removed = store.clear()
    print(f"removed {removed} entries from {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CARS (MICRO 2024) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, techniques, configs")

    sub.add_parser(
        "techniques",
        help="list registered techniques and parametric families")

    analyze = sub.add_parser(
        "analyze",
        help="interprocedural register-pressure analysis of a workload")
    analyze_scope = analyze.add_mutually_exclusive_group(required=True)
    analyze_scope.add_argument("--workload", choices=WORKLOAD_NAMES)
    analyze_scope.add_argument("--all", action="store_true",
                               help="analyze every Table I workload")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable analysis report")
    analyze.add_argument("--validate", action="store_true",
                         help="simulate each CARS scheme and exit 1 if any "
                              "static prediction is violated")
    analyze.add_argument("--config", default="volta", choices=sorted(PRESETS),
                         help="hardware preset for --validate runs")

    lint = sub.add_parser(
        "lint", help="ABI/stack-safety lint of compiled workload binaries")
    scope = lint.add_mutually_exclusive_group(required=True)
    scope.add_argument("--workload", choices=WORKLOAD_NAMES)
    scope.add_argument("--all", action="store_true",
                       help="lint every Table I workload")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as gate failures")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable diagnostics")
    lint.add_argument("--stack-regs", type=int, default=None, metavar="N",
                      help="per-warp register allocation; arms the CARS405 "
                           "guaranteed-trap check against it")

    run = sub.add_parser("run", help="simulate one (workload, technique)")
    run.add_argument("--workload", required=True, choices=WORKLOAD_NAMES)
    run.add_argument("--technique", default="cars", metavar="NAME",
                     help="a registered technique, a parametric family "
                          "name (swl_4, regdem_16, ...), or best_swl; "
                          "see `repro techniques`")
    run.add_argument("--config", default="volta", choices=sorted(PRESETS))
    run.add_argument("--backend", default=DEFAULT_BACKEND,
                     choices=list_backends(),
                     help="timing backend (byte-identical results; see "
                          "docs/architecture.md §14)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (results come from the store "
                          "when warm)")

    profile = sub.add_parser(
        "profile", help="CPI-stack stall attribution for one run")
    profile.add_argument("--workload", required=True, choices=WORKLOAD_NAMES)
    profile.add_argument("--technique", default="baseline", metavar="NAME",
                         help="a registered technique or parametric family "
                              "name; see `repro techniques`")
    profile.add_argument("--config", default="volta", choices=sorted(PRESETS))
    profile.add_argument("--trace", default="", metavar="OUT.JSONL",
                         help="dump the bounded event trace as JSONL")
    profile.add_argument("--trace-limit", type=int, default=None, metavar="N",
                         help="ring-buffer capacity (newest N events kept)")
    profile.add_argument("--per-warp", action="store_true",
                         help="accumulate per-warp stall attribution")
    profile.add_argument("--top-warps", type=int, default=5, metavar="N",
                         help="warps to show with --per-warp")

    bench = sub.add_parser(
        "bench", help="simulator-throughput benchmark + regression gate")
    bench.add_argument("--config", default="volta", choices=sorted(PRESETS))
    bench.add_argument("--rounds", type=int, default=3, metavar="N",
                       help="timed repetitions per pair (best is kept)")
    bench.add_argument("--baseline", default="BENCH_core.json",
                       metavar="PATH",
                       help="committed throughput baseline to compare against")
    bench.add_argument("--check", action="store_true",
                       help="exit 1 on >tolerance regression vs the baseline")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       metavar="FRAC",
                       help="allowed fractional throughput drop (default 0.20)")
    bench.add_argument("--json", default="", metavar="OUT.JSON",
                       help="write measured numbers as JSON (CI artifact)")
    bench.add_argument("--backend", default=DEFAULT_BACKEND,
                       choices=list_backends(),
                       help="time the grid under this backend (the gate "
                            "only compares same-backend baseline entries)")

    tune = sub.add_parser(
        "tune", help="search CARS policy per workload class")
    tune.add_argument("--workloads", required=True, metavar="CSV",
                      help="comma-separated workload names (see `repro list`)")
    tune.add_argument("--budget", type=int, default=None, metavar="N",
                      help="cap on evaluated cells (store-warm cells count "
                           "toward it; rungs that no longer fit are skipped)")
    tune.add_argument("--seed", type=int, default=0,
                      help="rung-order shuffle seed (equal seeds give "
                           "byte-equal searches)")
    tune.add_argument("--config", default="volta", choices=sorted(PRESETS),
                      help="hardware preset the policies are applied to")
    tune.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for each rung's grid")
    tune.add_argument("--schemes", default="", metavar="CSV",
                      help="watermark schemes to grid over (default: "
                           "dynamic,low,nxlow2,nxlow4,high)")
    tune.add_argument("--schedulers", default="", metavar="CSV",
                      help="warp schedulers to grid over (default: gto,lrr)")
    tune.add_argument("--json", action="store_true",
                      help="machine-readable report (schema-versioned)")

    regen = sub.add_parser("regen", help="regenerate EXPERIMENTS.md")
    regen.add_argument("output", nargs="?", default="")
    regen.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                       help="worker processes for the sweep")
    regen.add_argument("--quiet", "-q", action="store_true",
                       help="suppress per-run progress lines on stderr")

    selfcheck = sub.add_parser(
        "selfcheck",
        help="fault-injection battery: prove each guardrail fires")
    selfcheck.add_argument("--seed", type=int, default=0,
                           help="seed for fault-ordinal selection")
    selfcheck.add_argument("--backend", default=DEFAULT_BACKEND,
                           choices=list_backends(),
                           help="run every probe under this timing backend")

    serve = sub.add_parser(
        "serve",
        help="run the crash-safe simulation service (HTTP JSON API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--root", default="service-state", metavar="DIR",
                       help="journal + resume-state directory")
    serve.add_argument("--store-dir", default="", metavar="DIR",
                       help="result store root (default: the shared "
                            "on-disk store, REPRO_CACHE_DIR)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="concurrent scheduler workers")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="executor worker processes per run")
    serve.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-attempt executor timeout")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="attempts per job before it fails "
                            "(transient crashes only; deterministic "
                            "failures never retry)")
    serve.add_argument("--high-watermark", type=int, default=256,
                       metavar="N",
                       help="global queue depth beyond which submissions "
                            "are shed with 503")
    serve.add_argument("--tenant-queued", type=int, default=64, metavar="N",
                       help="per-tenant max queued jobs")
    serve.add_argument("--tenant-concurrent", type=int, default=4,
                       metavar="N", help="per-tenant max running jobs")
    serve.add_argument("--tenant-rate", type=float, default=0.0,
                       metavar="PER_SEC",
                       help="per-tenant token-bucket submit rate "
                            "(0 = unlimited)")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="CYCLES",
                       help="rolling checkpoint period for long launches "
                            "(default: checkpoint only on drain)")

    cache = sub.add_parser(
        "cache",
        help="inspect/fsck/clear the content-addressed result store")
    cache.add_argument("action", choices=["info", "verify", "clear"])
    cache.add_argument("--strict", action="store_true",
                       help="verify: also fail (exit 1) on stale-schema "
                            "entries, not just corrupt ones")
    cache.add_argument("--dir", default="",
                       help="store root (default: REPRO_CACHE_DIR or "
                            "~/.cache/repro-cars)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "techniques": _cmd_techniques,
        "analyze": _cmd_analyze,
        "lint": _cmd_lint,
        "run": _cmd_run,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "tune": _cmd_tune,
        "regen": _cmd_regen,
        "selfcheck": _cmd_selfcheck,
        "serve": _cmd_serve,
        "cache": _cmd_cache,
    }[args.command]
    try:
        return handler(args)
    except SimulationError as exc:
        # Typed simulator failures map to distinct exit codes (README's
        # "When a run fails") and print their diagnostic dump, so a wedged
        # run in CI leaves enough state behind to debug from the log.
        print(f"error: {exc}", file=sys.stderr)
        if exc.diagnostics is not None:
            print(exc.diagnostics.render(), file=sys.stderr)
        tb = getattr(exc, "worker_traceback", None)
        if tb:
            print(tb, file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
