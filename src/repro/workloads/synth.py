"""Synthetic workload generator.

Each of the paper's 22 workloads is reproduced by a parameterized kernel
whose call structure, register pressure, memory behaviour, and occupancy
are controlled directly (see DESIGN.md's substitution table).

Call-structure knobs (Table I):
    * ``depth`` / ``fru_chain`` — static call-chain depth and per-level
      callee-saved pressure;
    * ``call_period`` / ``alu_per_level`` — dynamic call density (CPKI);
    * ``use_indirect`` — virtual-function dispatch (ParaPoly);
    * ``recursion_depth`` — FIB-style recursion;
    * ``loads_in_function`` — global loads inside device functions (library
      code does real memory work between calls).

Memory-pattern knobs (Table II bottleneck classes):
    * ``pattern="small_hot"`` — a small shared region that fits the L1;
      only spill traffic pressures the cache (**bandwidth** class).
    * ``pattern="warp_window"`` — per-warp drifting windows whose combined
      footprint thrashes the L1 but shrinks with fewer warps
      (**capacity+contention**: Best-SWL and a huge L1 both help).
    * ``pattern="big_random"`` — lane-hashed access over a region several
      times the L1; only more capacity helps (**capacity**: the Bert class,
      where Best-SWL "fails to accommodate" the footprint).

Occupancy knobs: ``grid_blocks``, ``threads_per_block``,
``shared_mem_bytes``, ``kernel_reg_pressure``; plus ``barrier_iters`` for
block-wide barriers (the context-switch pressure of Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..frontend import builder as b
from ..frontend.ast import Expr, ProgramDef, Stmt
from ..isa.validator import validate_module
from .spec import KernelLaunch, Workload

#: Word address where the output array starts (away from the data array).
OUT_BASE = 1 << 22

PATTERNS = ("small_hot", "warp_window", "big_random")


@dataclass(frozen=True)
class SynthKernel:
    """Parameters for one generated kernel."""

    name: str = "main"
    depth: int = 3
    fru_chain: Tuple[int, ...] = ()  # reg_pressure per level; default 4s
    iters: int = 6
    call_period: int = 1  # call the chain every N iterations
    calls_per_iter: int = 1
    alu_per_level: int = 2
    kernel_alu_per_iter: int = 2
    loads_in_function: int = 0  # hot loads per chain level
    # Kernel-level global stream.
    pattern: str = "small_hot"
    region_words: int = 2048  # power of two
    window_words: int = 1024  # per-warp window (warp_window pattern)
    loads_per_iter: int = 3
    stores_per_iter: int = 1
    # Occupancy.
    kernel_reg_pressure: int = 0
    grid_blocks: int = 16
    threads_per_block: int = 64
    shared_mem_bytes: int = 0
    barrier_iters: int = 0  # barrier every iteration when nonzero
    use_indirect: bool = False
    divergent: bool = False
    local_array: bool = False  # genuine (non-spill) local memory
    recursion_depth: int = 0  # FIB-style; replaces the call chain

    def level_pressure(self, level: int) -> int:
        if self.fru_chain:
            return self.fru_chain[min(level, len(self.fru_chain) - 1)]
        return 4


def _function_load(spec: SynthKernel, k: int) -> Expr:
    """A lane-hashed load within the shared hot region (device code)."""
    mask = min(spec.region_words, 2048) - 1
    index = (b.v("t") * 2654435761 + k * 97) & mask
    return b.load(b.v("data") + index)


def _chain_function(
    prog: ProgramDef, spec: SynthKernel, level: int, suffix: str = ""
) -> str:
    """Generate chain level *level*; returns the function name."""
    name = f"{spec.name}_f{level}{suffix}"
    # Two parallel dependency chains (t, w) keep per-warp ILP realistic.
    body: List[Stmt] = [
        b.let("t", b.v("x") * 3 + b.v("a")),
        b.let("w", b.v("a") * 7 + 13),
    ]
    for k in range(spec.alu_per_level):
        target = "t" if k % 2 == 0 else "w"
        body.append(b.let(target, b.mad(b.v(target), 5, b.v("x") + k)))
    for k in range(spec.loads_in_function):
        body.append(b.let("w", b.v("w") ^ _function_load(spec, level * 7 + k)))
    body.append(b.let("t", b.v("t") ^ (b.v("w") >> 1)))
    if level + 1 < spec.depth:
        callee = _chain_function(prog, spec, level + 1, suffix)
        body.append(b.let("r", b.call(callee, b.v("t"), b.v("x"), b.v("data"))))
    else:
        body.append(b.let("u", b.mufu(b.v("t"))))
        body.append(b.let("r", b.v("t") ^ b.v("u")))
    # `t` stays live across the call, forcing callee-saved usage.
    body.append(b.ret(b.v("r") + b.v("t")))
    b.device(
        prog, name, ["x", "a", "data"], body,
        reg_pressure=spec.level_pressure(level),
    )
    return name


def _recursive_function(prog: ProgramDef, spec: SynthKernel) -> str:
    """FIB-style binary recursion."""
    name = f"{spec.name}_fib"
    body: List[Stmt] = [b.let("w", b.v("n") * 3 + 1)]
    for k in range(4 * spec.alu_per_level):
        body.append(b.let("w", b.mad(b.v("w"), 5, b.v("n") + k)))
    body.extend(
        [
            b.if_(
                b.v("n") < 2,
                [b.ret(b.v("n") + (b.v("w") & 0))],
            ),
            b.let("p", b.call(name, b.v("n") - 1)),
            b.let("q", b.call(name, b.v("n") - 2)),
            b.ret(b.v("p") + b.v("q") + (b.v("w") & 0)),
        ]
    )
    # The argument strictly decreases and recursion stops below 2, so a
    # top-level call with n = recursion_depth stacks at most
    # recursion_depth simultaneous activations — declare that bound for
    # the interprocedural analysis.
    b.device(prog, name, ["n"], body, reg_pressure=spec.level_pressure(0),
             recursion_bound=spec.recursion_depth)
    return name


def _indirect_variants(prog: ProgramDef, spec: SynthKernel) -> List[str]:
    """Virtual-function-style targets with differing register demand."""
    names = []
    base_chain = spec.fru_chain or (4,) * max(1, spec.depth)
    for variant, pressure_delta in (("a", 0), ("b", 1), ("c", 2)):
        sub = SynthKernel(
            name=f"{spec.name}_v{variant}",
            depth=max(1, spec.depth),
            fru_chain=tuple(p + pressure_delta for p in base_chain),
            alu_per_level=spec.alu_per_level,
            loads_in_function=spec.loads_in_function,
            region_words=spec.region_words,
        )
        names.append(_chain_function(prog, sub, 0))
    return names


def _kernel_load_index(spec: SynthKernel, k: int) -> Expr:
    """Kernel-level global index per the workload's Table II class."""
    mask = spec.region_words - 1
    if spec.pattern == "small_hot":
        if k % 2 == 0:
            # Warp-uniform window + lane offset: coalesced, always hot.
            return ((b.v("it") * 197 + k * 1031) & (mask - 31)) + (b.v("i") & 31)
        # Lane-hashed but inside the small hot region: fans across sectors.
        return (b.v("acc") * 2654435761 + b.v("i") * 97 + k * 31) & mask
    if spec.pattern == "warp_window":
        wmask = spec.window_words - 1
        # Per-warp drifting window: combined footprint thrashes, fewer
        # warps (SWL) or a larger L1 both restore locality.
        warp = b.v("i") >> 5
        base = (warp * spec.window_words) & mask
        if k % 2 == 0:
            return base + (((b.v("it") * 67 + k * 257) & (wmask - 31)) + (b.v("i") & 31))
        return base + ((b.v("acc") * 2654435761 + b.v("i") * 13 + k) & wmask)
    if spec.pattern == "big_random":
        # Lane-hashed over the full region: only capacity helps.
        return (b.v("acc") * 2654435761 + b.v("i") * 97 + k * 131) & mask
    raise ValueError(f"unknown pattern {spec.pattern!r}")


def build_kernel(prog: ProgramDef, spec: SynthKernel) -> None:
    """Generate one kernel (and its callees) into *prog*."""
    mask = spec.region_words - 1
    if spec.region_words & mask:
        raise ValueError("region_words must be a power of two")
    if spec.pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {spec.pattern!r}")

    if spec.calls_per_iter == 0:
        call_expr = None  # a function-free kernel (CARS leaves it alone)
    elif spec.recursion_depth > 0:
        entry = _recursive_function(prog, spec)
        call_expr = b.call(entry, b.c(spec.recursion_depth))
    elif spec.use_indirect:
        targets = _indirect_variants(prog, spec)
        call_expr = b.icall(targets, b.v("x"), b.v("x"), b.v("acc"), b.v("data"))
    else:
        entry = _chain_function(prog, spec, 0)
        call_expr = b.call(entry, b.v("x"), b.v("acc"), b.v("data"))

    body: List[Stmt] = [
        b.let("i", b.gid()),
        b.let("acc", b.load(b.v("data") + (b.v("i") & mask))),
        b.let("acc2", b.v("i") * 31 + 5),  # independent second chain (ILP)
    ]
    if spec.divergent:
        body.append(
            b.if_(
                (b.v("i") & 1) < 1,
                [b.let("acc", b.v("acc") * 3 + 1)],
                [b.let("acc", b.v("acc") + 7)],
            )
        )
    if spec.local_array:
        body.append(b.store_local(0, b.v("acc")))

    loop_body: List[Stmt] = []
    for k in range(spec.loads_per_iter):
        loop_body.append(
            b.let("x", b.load(b.v("data") + _kernel_load_index(spec, k)))
        )
        target = "acc" if k % 2 == 0 else "acc2"
        loop_body.append(b.let(target, b.v(target) ^ b.v("x")))
    for k in range(spec.kernel_alu_per_iter):
        target = "acc" if k % 2 == 0 else "acc2"
        loop_body.append(b.let(target, b.mad(b.v(target), 3, b.v("i") + k)))

    call_stmts: List[Stmt] = []
    if call_expr is not None:
        for _ in range(spec.calls_per_iter):
            call_stmts.append(b.let("x", b.v("acc") & mask))
            call_stmts.append(b.let("acc", b.v("acc") + call_expr))
    if call_stmts:
        if spec.call_period > 1:
            loop_body.append(
                b.if_((b.v("it") & (spec.call_period - 1)) == 0, call_stmts)
            )
        else:
            loop_body.extend(call_stmts)

    if spec.local_array:
        loop_body.append(b.let("acc", b.v("acc") + b.load_local(0)))
        loop_body.append(b.store_local(0, b.v("acc")))
    if spec.shared_mem_bytes:
        loop_body.append(b.store_shared(b.tid(), b.v("acc")))
        loop_body.append(b.let("acc", b.v("acc") + b.load_shared(b.tid() ^ 1)))
    for store_idx in range(spec.stores_per_iter):
        loop_body.append(
            b.store(
                b.v("out") + ((b.v("i") * 17 + b.v("it") + store_idx) & mask),
                b.v("acc"),
            )
        )
    if spec.barrier_iters:
        loop_body.append(b.barrier())

    body.append(b.for_("it", 0, spec.iters, loop_body))
    body.append(b.store(b.v("out") + b.v("i"), b.v("acc") + b.v("acc2")))
    b.kernel(
        prog,
        spec.name,
        ["data", "out"],
        body,
        shared_mem_bytes=spec.shared_mem_bytes,
        reg_pressure=spec.kernel_reg_pressure,
    )


def build_workload(
    name: str,
    suite: str,
    kernels: List[SynthKernel],
    bottleneck: str = "",
    paper_call_depth: int = 0,
    paper_cpki: float = 0.0,
    repeats: int = 1,
) -> Workload:
    """Assemble a multi-kernel workload from synthesis specs.

    ``repeats`` re-runs the launch schedule, as iterative applications do;
    CARS's cross-launch policy memory (Fig 5) converges on the repeat.
    """
    prog = b.program()
    launches = []
    for spec in kernels:
        build_kernel(prog, spec)
        launches.append(
            KernelLaunch(
                kernel=spec.name,
                grid_blocks=spec.grid_blocks,
                threads_per_block=spec.threads_per_block,
                params=(0, OUT_BASE),
            )
        )
    launches = launches * max(1, repeats)
    workload = Workload(
        name=name,
        suite=suite,
        program=prog,
        launches=launches,
        paper_call_depth=paper_call_depth,
        paper_cpki=paper_cpki,
        bottleneck=bottleneck,
    )
    # Fail at build time rather than first simulation: compile the
    # baseline binary (cached on the workload) and validate it against
    # the structural ISA rules.
    module = workload.module()
    validate_module(module)
    for launch in workload.launches:
        if launch.kernel not in module.functions:
            raise ValueError(f"{name}: launch of unknown kernel {launch.kernel!r}")
    return workload
