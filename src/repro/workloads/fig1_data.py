"""Survey data behind Fig 1: GPU codebase growth over 15 years.

Fig 1 is motivational: it plots source lines of code and device-function
counts for GPU benchmark suites/libraries by release year.  The paper's
figure is built from a source-tree survey; the numbers below encode the
trend the paper reports (log-scale growth), including the two data points
quoted in the text verbatim (Cutlass: 3129 files / 3760 device functions;
Rapids: 6348 files / 27469 device functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SuiteStats:
    name: str
    year: int
    sloc: int
    device_functions: int
    code_files: int = 0


FIG1_SURVEY: List[SuiteStats] = [
    SuiteStats("CUDA SDK samples", 2008, 35_000, 120),
    SuiteStats("Rodinia", 2009, 55_000, 180),
    SuiteStats("Parboil", 2012, 70_000, 260),
    SuiteStats("LoneStar", 2012, 40_000, 310),
    SuiteStats("SHOC", 2013, 95_000, 420),
    SuiteStats("Chai", 2017, 60_000, 530),
    SuiteStats("ParaPoly", 2021, 85_000, 900),
    SuiteStats("Cutlass", 2024, 600_000, 3_760, code_files=3_129),
    SuiteStats("Rapids", 2024, 1_400_000, 27_469, code_files=6_348),
]


def growth_factor() -> float:
    """Device-function growth from the earliest to the latest entry."""
    first = FIG1_SURVEY[0]
    last = max(FIG1_SURVEY, key=lambda s: s.device_functions)
    return last.device_functions / first.device_functions


def series():
    """(year, sloc, device_functions) tuples, sorted by year (Fig 1 axes)."""
    return sorted(
        ((s.year, s.sloc, s.device_functions) for s in FIG1_SURVEY),
        key=lambda t: t[0],
    )
