"""The 22 Table I workloads, the synthesizer, and the Fig 1 survey data."""

from .spec import KernelLaunch, Workload
from .synth import SynthKernel, build_kernel, build_workload, OUT_BASE
from .suite import SMOKE_NAMES, WORKLOAD_NAMES, full_suite, make_workload
from .fig1_data import FIG1_SURVEY, SuiteStats, growth_factor

__all__ = [
    "KernelLaunch",
    "Workload",
    "SynthKernel",
    "build_kernel",
    "build_workload",
    "OUT_BASE",
    "SMOKE_NAMES",
    "WORKLOAD_NAMES",
    "full_suite",
    "make_workload",
    "FIG1_SURVEY",
    "SuiteStats",
    "growth_factor",
]
