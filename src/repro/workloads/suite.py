"""The 22 function-calling workloads of Table I.

Each entry is a synthetic analogue of the paper's workload, parameterized
to land in the same regime: its Table I call depth, approximately its
Table I CPKI, and its Table II bottleneck class (see DESIGN.md).  The
paper's values are attached for the Table I reproduction benchmark.

The Table II class maps onto the generator's global-access pattern:

    * ``bandwidth``             -> ``small_hot``   (footprint fits the L1)
    * ``capacity+contention``   -> ``warp_window`` (per-warp windows)
    * ``capacity``              -> ``big_random``  (region >> L1)
    * ``low-occupancy``         -> ``small_hot`` with a tiny grid
    * ``low-spill``             -> sparse calls (``call_period`` >> 1)

Callee-saved pressure (``fru_chain``) is kept small (2-8 registers), as
profiled SASS shows for real device functions; deep library chains
(Rapids) do global work inside their functions (``loads_in_function``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from .spec import Workload
from .synth import SynthKernel, build_workload

#: Region sizes (words; 4B each).  The scaled L1 is 32KB = 8192 words.
REGION_SMALL = 2 * 1024  # 8KB hot region: fits the L1 easily
REGION_MEDIUM = 16 * 1024  # 64KB: 2x L1 (warp windows thrash)
REGION_LARGE = 32 * 1024  # 128KB: 4x L1 (SWL cannot help)
REGION_HUGE = 64 * 1024  # 256KB: matches the whole L2


def _pta() -> Workload:
    """Points-to Analysis: many kernels, deep chains, heavy spill traffic.

    The multi-kernel structure feeds Fig 14 (per-kernel allocation study);
    K1 carries barriers + the deepest chain — the paper's one context-
    switching kernel.
    """
    deep = (5, 5, 4, 4, 4, 3, 3, 3, 3)
    kernels = [
        SynthKernel(name="K1", depth=9, fru_chain=deep, iters=6, barrier_iters=1,
                    grid_blocks=24, threads_per_block=128, alu_per_level=0,
                    kernel_alu_per_iter=1),
        SynthKernel(name="K2", depth=1, fru_chain=(3,), iters=2,
                    grid_blocks=16, alu_per_level=1),
        SynthKernel(name="K3", depth=2, fru_chain=(4, 3), iters=4,
                    barrier_iters=1, threads_per_block=128, grid_blocks=12),
        SynthKernel(name="K4", depth=9, fru_chain=deep, iters=8,
                    grid_blocks=24, alu_per_level=0, kernel_alu_per_iter=1),
        SynthKernel(name="K5", depth=8, fru_chain=deep, iters=8,
                    grid_blocks=24, alu_per_level=0, kernel_alu_per_iter=1),
        SynthKernel(name="K6", depth=7, fru_chain=deep, iters=6,
                    grid_blocks=24, alu_per_level=0, kernel_alu_per_iter=1),
        SynthKernel(name="K7", depth=1, calls_per_iter=0, iters=2,
                    grid_blocks=12, kernel_alu_per_iter=2),
        SynthKernel(name="K8", depth=3, fru_chain=(4, 4, 3), iters=5,
                    grid_blocks=12),
    ]
    return build_workload(
        "PTA", "LoneStar", kernels,
        bottleneck="bandwidth", paper_call_depth=9, paper_cpki=46.11,
    )


def _simple(name, suite, spec, bottleneck, depth, cpki) -> Workload:
    return build_workload(name, suite, [spec], bottleneck, depth, cpki)


@lru_cache(maxsize=None)
def make_workload(name: str) -> Workload:
    """Construct one Table I workload by name (cached)."""
    builders = {
        "PTA": _pta,
        "DMR": lambda: _simple(
            "DMR", "LoneStar",
            SynthKernel(depth=1, fru_chain=(6,), iters=8, calls_per_iter=2,
                        pattern="warp_window", region_words=REGION_HUGE,
                        window_words=2048, alu_per_level=8,
                        kernel_alu_per_iter=4),
            "capacity+contention", 1, 11.61),
        "MST": lambda: _simple(
            "MST", "LoneStar",
            SynthKernel(depth=5, fru_chain=(6, 5, 4, 4, 3), iters=8,
                        pattern="warp_window", region_words=REGION_HUGE,
                        window_words=2048, alu_per_level=2,
                        loads_in_function=1),
            "capacity+contention", 5, 20.75),
        "SSSP": lambda: _simple(
            "SSSP", "LoneStar",
            SynthKernel(depth=3, fru_chain=(5, 4, 4), iters=8, call_period=2,
                        pattern="small_hot", alu_per_level=12,
                        kernel_alu_per_iter=8),
            "bandwidth", 3, 6.30),
        "CFD": lambda: _simple(
            "CFD", "Rodinia",
            SynthKernel(depth=3, fru_chain=(6, 5, 4), iters=8,
                        pattern="warp_window", region_words=REGION_HUGE,
                        window_words=2048, alu_per_level=4,
                        local_array=True),
            "capacity+contention", 3, 17.48),
        "TRAF": lambda: _simple(
            "TRAF", "ParaPoly",
            SynthKernel(depth=3, fru_chain=(4, 3, 3), iters=8, call_period=4,
                        use_indirect=True, pattern="small_hot",
                        alu_per_level=16, kernel_alu_per_iter=16,
                        divergent=True),
            "bandwidth", 3, 3.13),
        "GOL": lambda: _simple(
            "GOL", "ParaPoly",
            SynthKernel(depth=1, fru_chain=(8,), iters=8, calls_per_iter=2,
                        pattern="warp_window", region_words=REGION_LARGE,
                        window_words=1024, kernel_reg_pressure=100,
                        threads_per_block=128, grid_blocks=12,
                        alu_per_level=8),
            "capacity+contention", 1, 7.05),
        "NBD": lambda: _simple(
            "NBD", "ParaPoly",
            SynthKernel(depth=2, fru_chain=(5, 4), iters=8,
                        pattern="small_hot", alu_per_level=3,
                        kernel_alu_per_iter=6),
            "bandwidth", 2, 21.40),
        "COLI": lambda: _simple(
            "COLI", "ParaPoly",
            SynthKernel(depth=3, fru_chain=(4, 4, 3), iters=7,
                        use_indirect=True, pattern="small_hot",
                        alu_per_level=3, divergent=True),
            "bandwidth", 3, 19.54),
        "STUT": lambda: _simple(
            "STUT", "ParaPoly",
            SynthKernel(depth=3, fru_chain=(6, 5, 4), iters=7,
                        pattern="warp_window", region_words=REGION_HUGE,
                        window_words=2048, alu_per_level=6),
            "capacity+contention", 3, 10.94),
        "RAY": lambda: _simple(
            "RAY", "ParaPoly",
            SynthKernel(depth=4, fru_chain=(5, 4, 4, 3), iters=7,
                        use_indirect=True, pattern="small_hot",
                        alu_per_level=3, divergent=True),
            "bandwidth", 4, 19.71),
        "LULESH": lambda: _simple(
            "LULESH", "DOE",
            SynthKernel(depth=3, fru_chain=(3, 3, 2), iters=8, call_period=8,
                        pattern="small_hot", region_words=REGION_SMALL,
                        alu_per_level=20, kernel_alu_per_iter=24,
                        local_array=True),
            "low-spill", 3, 2.84),
        "FIB": lambda: _simple(
            "FIB", "Recursive",
            SynthKernel(recursion_depth=8, depth=8, fru_chain=(4,), iters=2,
                        pattern="small_hot", kernel_alu_per_iter=4,
                        alu_per_level=2),
            "bandwidth", 8, 22.41),
        "Bert_LT": lambda: _simple(
            "Bert_LT", "MLPerf",
            SynthKernel(depth=5, fru_chain=(5, 4, 4, 3, 3), iters=8,
                        pattern="big_random", region_words=REGION_LARGE,
                        shared_mem_bytes=8 * 1024, alu_per_level=4,
                        threads_per_block=128, grid_blocks=12),
            "capacity", 5, 17.01),
        "Bert_AtScore": lambda: _simple(
            "Bert_AtScore", "MLPerf",
            SynthKernel(depth=5, fru_chain=(5, 4, 4, 3, 3), iters=6,
                        grid_blocks=3, pattern="small_hot",
                        alu_per_level=4, loads_in_function=1),
            "low-occupancy", 5, 17.62),
        "Bert_AtOp": lambda: _simple(
            "Bert_AtOp", "MLPerf",
            SynthKernel(depth=5, fru_chain=(5, 4, 4, 3, 3), iters=6,
                        grid_blocks=4, pattern="small_hot",
                        alu_per_level=4, loads_in_function=1),
            "low-occupancy", 5, 17.48),
        "Bert_FC": lambda: _simple(
            "Bert_FC", "MLPerf",
            SynthKernel(depth=5, fru_chain=(5, 4, 4, 3, 3), iters=8,
                        pattern="big_random", region_words=REGION_LARGE,
                        shared_mem_bytes=8 * 1024, threads_per_block=128,
                        grid_blocks=12, alu_per_level=4),
            "capacity", 5, 17.01),
        "Resnet_FP": lambda: _simple(
            "Resnet_FP", "MLPerf",
            SynthKernel(depth=5, fru_chain=(6, 5, 4, 4, 3), iters=6,
                        pattern="warp_window", region_words=REGION_MEDIUM,
                        shared_mem_bytes=4 * 1024, alu_per_level=4),
            "capacity+contention", 5, 17.04),
        "Resnet_WG": lambda: _simple(
            "Resnet_WG", "MLPerf",
            SynthKernel(depth=5, fru_chain=(6, 5, 4, 4, 3), iters=8,
                        pattern="big_random", region_words=REGION_LARGE,
                        shared_mem_bytes=8 * 1024, threads_per_block=128,
                        grid_blocks=12, alu_per_level=4),
            "capacity", 5, 16.91),
        "SVR": lambda: _simple(
            "SVR", "Rapids",
            SynthKernel(depth=17, fru_chain=(4, 4, 3, 3, 3, 3, 3, 3, 3, 3,
                                             3, 3, 3, 3, 3, 3, 3),
                        iters=5, pattern="small_hot", alu_per_level=1,
                        loads_in_function=1, grid_blocks=28),
            "bandwidth", 17, 47.03),
        "KMEAN": lambda: _simple(
            "KMEAN", "Rapids",
            SynthKernel(depth=14, fru_chain=(4, 4, 3, 3, 3, 3, 3, 3, 3, 3,
                                             3, 3, 3, 3),
                        iters=5, pattern="small_hot", alu_per_level=1,
                        loads_in_function=1, grid_blocks=28),
            "bandwidth", 14, 41.23),
        "RF": lambda: _simple(
            "RF", "Rapids",
            SynthKernel(depth=17, fru_chain=(4, 4, 3, 3, 3, 3, 3, 3, 3, 3,
                                             3, 3, 3, 3, 3, 3, 3),
                        iters=5, pattern="small_hot", alu_per_level=1,
                        loads_in_function=1, divergent=True, grid_blocks=28),
            "bandwidth", 17, 47.11),
    }
    try:
        return builders[name]()
    except KeyError:
        raise KeyError(f"unknown workload {name!r}") from None


#: Table I order.
WORKLOAD_NAMES = [
    "PTA", "DMR", "MST", "SSSP", "CFD", "TRAF", "GOL", "NBD", "COLI",
    "STUT", "RAY", "LULESH", "FIB", "Bert_LT", "Bert_AtScore", "Bert_AtOp",
    "Bert_FC", "Resnet_FP", "Resnet_WG", "SVR", "KMEAN", "RF",
]


def full_suite() -> List[Workload]:
    """All 22 Table I workloads."""
    return [make_workload(name) for name in WORKLOAD_NAMES]


#: A small representative subset used by fast tests.
SMOKE_NAMES = ["SSSP", "MST", "FIB"]
