"""Workload abstraction: a DSL program plus its launch schedule.

A :class:`Workload` owns compilation (baseline and LTO-inlined binaries)
and trace generation (the NVBit stage), caching both so the many techniques
of an experiment replay identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..emu.machine import Emulator
from ..emu.memory import GlobalMemory
from ..emu.trace import KernelTrace
from ..frontend.ast import ProgramDef
from ..frontend.inliner import inline_program
from ..frontend.linker import compile_program
from ..isa.program import Module


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel launch in a workload's schedule."""

    kernel: str
    grid_blocks: int
    threads_per_block: int
    params: Tuple[int, ...] = ()


@dataclass
class Workload:
    """A benchmark: program + launches + paper metadata (Table I / II).

    Attributes:
        name: short name matching the paper's Table I.
        suite: originating benchmark suite.
        program: the DSL source.
        launches: the kernel launch schedule.
        setup: optional global-memory initializer run before tracing.
        paper_call_depth / paper_cpki: Table I reference values.
        bottleneck: Table II main-speedup-factor class.
    """

    name: str
    suite: str
    program: ProgramDef
    launches: List[KernelLaunch]
    setup: Optional[Callable[[GlobalMemory], None]] = None
    paper_call_depth: int = 0
    paper_cpki: float = 0.0
    bottleneck: str = ""
    max_warp_instructions: int = 2_000_000
    _modules: Dict[bool, Module] = field(default_factory=dict, repr=False)
    _traces: Dict[bool, List[KernelTrace]] = field(default_factory=dict, repr=False)
    _final_gmem: Dict[bool, GlobalMemory] = field(default_factory=dict, repr=False)

    def module(self, inlined: bool = False) -> Module:
        """Compile (and cache) the baseline or fully-inlined binary."""
        if inlined not in self._modules:
            program = inline_program(self.program) if inlined else self.program
            self._modules[inlined] = compile_program(program)
        return self._modules[inlined]

    def traces(self, inlined: bool = False) -> List[KernelTrace]:
        """Generate (and cache) dynamic traces for every launch."""
        if inlined not in self._traces:
            module = self.module(inlined)
            gmem = GlobalMemory()
            if self.setup is not None:
                self.setup(gmem)
            emulator = Emulator(
                module, gmem=gmem, max_warp_instructions=self.max_warp_instructions
            )
            self._traces[inlined] = [
                emulator.launch(
                    launch.kernel,
                    launch.grid_blocks,
                    launch.threads_per_block,
                    launch.params,
                )
                for launch in self.launches
            ]
            self._final_gmem[inlined] = gmem
        return self._traces[inlined]

    def final_memory(self, inlined: bool = False) -> GlobalMemory:
        """Global memory after the whole schedule has been emulated.

        This is the workload's final architectural state — the
        differential tests compare it across binaries (baseline vs LTO)
        since both must compute the same answer.
        """
        self.traces(inlined)
        return self._final_gmem[inlined]

    def measured_cpki(self) -> float:
        """Dynamic CPKI over the whole schedule (Table I)."""
        traces = self.traces()
        instructions = sum(t.dynamic_instructions for t in traces)
        if instructions == 0:
            return 0.0
        from ..emu.trace import TraceKind

        calls = sum(t.count(TraceKind.CALL) for t in traces)
        return 1000.0 * calls / instructions

    def measured_call_depth(self) -> int:
        """Deepest dynamic call nesting over the schedule (Table I)."""
        return max((t.max_dynamic_call_depth() for t in self.traces()), default=0)
