"""Simulation statistics.

One :class:`SimStats` instance accumulates everything a run produces; the
experiment harness and the power model read from it.  Counter names match
the paper's reporting: memory accesses are broken down into register
spills/fills, other locals, and globals (Figs 2/9), misses feed MPKI
(Fig 12), the instruction mix feeds Fig 13, and the bandwidth timeline
feeds Fig 11.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

#: Access-stream tags (what generated an L1D access).
STREAM_SPILL = "spill"  # ABI register spill/fill traffic
STREAM_LOCAL = "local"  # genuine local-memory traffic
STREAM_GLOBAL = "global"  # global loads/stores

#: Timeline bucket width in cycles (Fig 11 resolution).
TIMELINE_BUCKET = 512

#: Plain-integer SimStats attributes (serialized verbatim).
_SCALAR_FIELDS = (
    "cycles", "warp_instructions", "micro_ops",
    "l2_accesses", "l2_hits", "l2_misses", "dram_accesses",
    "calls", "returns", "pushes", "pops", "push_regs", "pop_regs",
    "traps", "trap_spilled_regs", "trap_filled_regs", "peak_stack_depth",
    "smem_spill_regs", "smem_fill_regs", "spill_overflow_regs",
    "rfcache_hits", "rfcache_misses", "rfcache_evictions",
    "context_switches", "context_switch_regs", "stalled_warp_cycles",
    "issue_cycles", "idle_cycles", "barrier_wait_cycles",
    "fetch_stall_cycles",
)

#: Counter-valued SimStats attributes (serialized as plain dicts).
_COUNTER_FIELDS = (
    "issued_by_kind", "l1_accesses", "l1_hits", "l1_misses",
    "l1_store_sectors", "l1_load_sectors", "cpi_stack",
)

#: Dict-of-Counter SimStats attributes (serialized as nested sorted dicts).
_NESTED_COUNTER_FIELDS = ("cpi_by_kernel", "warp_stalls")


@dataclass
class BlockRecord:
    """Completion record for one thread block (feeds the CARS policy)."""

    sm_id: int
    block_id: int
    kernel: str
    start_cycle: int
    end_cycle: int
    alloc_regs_per_warp: int
    alloc_level: int

    @property
    def runtime(self) -> int:
        return self.end_cycle - self.start_cycle

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlockRecord":
        return cls(**data)


class SimStats:
    """Mutable accumulator for one simulation run."""

    def __init__(self) -> None:
        self.cycles: int = 0
        self.warp_instructions: int = 0  # trace records issued
        self.micro_ops: int = 0  # after ABI expansion
        self.issued_by_kind: Counter = Counter()  # TraceKind name -> count
        # L1D, keyed by stream tag.
        self.l1_accesses: Counter = Counter()
        self.l1_hits: Counter = Counter()
        self.l1_misses: Counter = Counter()
        self.l1_store_sectors: Counter = Counter()
        self.l1_load_sectors: Counter = Counter()
        # Lower levels.
        self.l2_accesses: int = 0
        self.l2_hits: int = 0
        self.l2_misses: int = 0
        self.dram_accesses: int = 0
        # Call machinery.
        self.calls: int = 0
        self.returns: int = 0
        self.pushes: int = 0
        self.pops: int = 0
        self.push_regs: int = 0
        self.pop_regs: int = 0
        # CARS events.  ``traps`` is the generic ABI-overflow event count:
        # CARS register-stack traps, RegDem arena overflows, and rfcache
        # evict-causing pushes all land here, so the interprocedural
        # trap-rate bounds apply uniformly across arms.
        self.traps: int = 0
        self.trap_spilled_regs: int = 0
        self.trap_filled_regs: int = 0
        # RegDem: registers demoted to the shared-memory arena (and filled
        # back), plus registers that overflowed the arena into local memory.
        self.smem_spill_regs: int = 0
        self.smem_fill_regs: int = 0
        self.spill_overflow_regs: int = 0
        # Register-file cache: cross-call reuse hits, fills that had to go
        # to local memory, and LRU evictions out of the cache.
        self.rfcache_hits: int = 0
        self.rfcache_misses: int = 0
        self.rfcache_evictions: int = 0
        # Deepest concurrent register-stack frame count observed by any
        # warp (0 under the baseline ABI).  The interprocedural analyzer's
        # static frame-depth bound must dominate this.
        self.peak_stack_depth: int = 0
        self.context_switches: int = 0
        self.context_switch_regs: int = 0
        self.stalled_warp_cycles: int = 0
        # Scheduling.
        self.issue_cycles: int = 0  # cycles with at least one issue
        self.idle_cycles: int = 0
        self.barrier_wait_cycles: int = 0
        self.fetch_stall_cycles: int = 0
        self.blocks: List[BlockRecord] = []
        # CPI-stack cycle accounting (repro.obs): every simulated cycle
        # lands in exactly one bucket, so sum(values) == cycles.
        self.cpi_stack: Counter = Counter()
        # Per-kernel CPI stacks (each sums to that kernel's cycles).
        self.cpi_by_kernel: Dict[str, Counter] = {}
        # Opt-in per-warp stall attribution ("kernel/wN" -> bucket -> cycles);
        # populated only when an ObsSession with per_warp=True is attached.
        self.warp_stalls: Dict[str, Counter] = {}
        # Fig 11 timeline: bucket -> [global_sectors, local_sectors].
        self.timeline: Dict[int, List[int]] = {}
        # Per-kernel allocation decisions (CARS).
        self.allocation_log: List[Tuple[str, int, int]] = []  # kernel, level, regs

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------

    def record_l1_access(
        self, stream: str, is_store: bool, hit: bool, cycle: int
    ) -> None:
        self.l1_accesses[stream] += 1
        if hit:
            self.l1_hits[stream] += 1
        else:
            self.l1_misses[stream] += 1
        if is_store:
            self.l1_store_sectors[stream] += 1
        else:
            self.l1_load_sectors[stream] += 1
        bucket = cycle // TIMELINE_BUCKET
        entry = self.timeline.get(bucket)
        if entry is None:
            entry = [0, 0]
            self.timeline[bucket] = entry
        if stream == STREAM_GLOBAL:
            entry[0] += 1
        else:
            entry[1] += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def total_l1_accesses(self) -> int:
        return sum(self.l1_accesses.values())

    @property
    def total_l1_misses(self) -> int:
        return sum(self.l1_misses.values())

    def l1_miss_rate(self) -> float:
        total = self.total_l1_accesses
        return self.total_l1_misses / total if total else 0.0

    def mpki(self) -> float:
        """L1D misses per thousand warp instructions (Fig 12)."""
        if self.warp_instructions == 0:
            return 0.0
        return 1000.0 * self.total_l1_misses / self.warp_instructions

    def access_breakdown(self) -> Dict[str, float]:
        """Fraction of L1D accesses by stream (Figs 2 and 9)."""
        total = self.total_l1_accesses
        if total == 0:
            return {STREAM_SPILL: 0.0, STREAM_LOCAL: 0.0, STREAM_GLOBAL: 0.0}
        return {
            stream: self.l1_accesses[stream] / total
            for stream in (STREAM_SPILL, STREAM_LOCAL, STREAM_GLOBAL)
        }

    def spill_fraction(self) -> float:
        return self.access_breakdown()[STREAM_SPILL]

    def ipc(self) -> float:
        return self.warp_instructions / self.cycles if self.cycles else 0.0

    def global_bandwidth_timeline(self) -> List[Tuple[int, int, int]]:
        """(bucket_start_cycle, global_sectors, local_sectors) series."""
        return [
            (bucket * TIMELINE_BUCKET, counts[0], counts[1])
            for bucket, counts in sorted(self.timeline.items())
        ]

    def average_global_bandwidth(self) -> float:
        """Mean global sectors per cycle over the whole run (Fig 11)."""
        total = sum(counts[0] for counts in self.timeline.values())
        return total / self.cycles if self.cycles else 0.0

    def instruction_mix(self) -> Dict[str, int]:
        """Issued micro-op counts by kind (Fig 13)."""
        return dict(self.issued_by_kind)

    def cpi_total(self) -> int:
        """Sum of the CPI-stack buckets (must equal :attr:`cycles`)."""
        return sum(self.cpi_stack.values())

    def cpi_breakdown(self) -> Dict[str, float]:
        """CPI-stack bucket fractions of total cycles."""
        total = self.cpi_total()
        if total == 0:
            return {}
        return {bucket: count / total for bucket, count in self.cpi_stack.items()}

    def trap_fraction(self) -> float:
        """Fraction of calls that invoked the trap handler (Table III)."""
        return self.traps / self.calls if self.calls else 0.0

    def rfcache_hit_rate(self) -> float:
        """Fraction of register-file-cache fills served without memory."""
        lookups = self.rfcache_hits + self.rfcache_misses
        return self.rfcache_hits / lookups if lookups else 0.0

    def bytes_spilled_per_call(self) -> float:
        """Per-thread bytes spilled+filled per function call (Table III).

        Includes trap spills/fills and context switches, per the paper.
        """
        if self.calls == 0:
            return 0.0
        regs = (
            self.trap_spilled_regs
            + self.trap_filled_regs
            + self.context_switch_regs
        )
        return 4.0 * regs / self.calls

    def merge_kernel(self, other: "SimStats") -> None:
        """Accumulate a subsequent kernel launch into this run's totals."""
        offset = self.cycles
        self.cycles += other.cycles
        self.warp_instructions += other.warp_instructions
        self.micro_ops += other.micro_ops
        self.issued_by_kind.update(other.issued_by_kind)
        self.l1_accesses.update(other.l1_accesses)
        self.l1_hits.update(other.l1_hits)
        self.l1_misses.update(other.l1_misses)
        self.l1_store_sectors.update(other.l1_store_sectors)
        self.l1_load_sectors.update(other.l1_load_sectors)
        self.l2_accesses += other.l2_accesses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.dram_accesses += other.dram_accesses
        self.calls += other.calls
        self.returns += other.returns
        self.pushes += other.pushes
        self.pops += other.pops
        self.push_regs += other.push_regs
        self.pop_regs += other.pop_regs
        self.traps += other.traps
        self.trap_spilled_regs += other.trap_spilled_regs
        self.trap_filled_regs += other.trap_filled_regs
        # A depth, not a count: the run-level peak is the max over launches.
        self.peak_stack_depth = max(self.peak_stack_depth, other.peak_stack_depth)
        self.smem_spill_regs += other.smem_spill_regs
        self.smem_fill_regs += other.smem_fill_regs
        self.spill_overflow_regs += other.spill_overflow_regs
        self.rfcache_hits += other.rfcache_hits
        self.rfcache_misses += other.rfcache_misses
        self.rfcache_evictions += other.rfcache_evictions
        self.context_switches += other.context_switches
        self.context_switch_regs += other.context_switch_regs
        self.stalled_warp_cycles += other.stalled_warp_cycles
        self.issue_cycles += other.issue_cycles
        self.idle_cycles += other.idle_cycles
        self.barrier_wait_cycles += other.barrier_wait_cycles
        self.fetch_stall_cycles += other.fetch_stall_cycles
        self.blocks.extend(other.blocks)
        self.cpi_stack.update(other.cpi_stack)
        for kernel, stack in other.cpi_by_kernel.items():
            self.cpi_by_kernel.setdefault(kernel, Counter()).update(stack)
        for warp_key, stack in other.warp_stalls.items():
            self.warp_stalls.setdefault(warp_key, Counter()).update(stack)
        self.allocation_log.extend(other.allocation_log)
        offset_buckets = offset // TIMELINE_BUCKET
        for bucket, counts in other.timeline.items():
            entry = self.timeline.setdefault(bucket + offset_buckets, [0, 0])
            entry[0] += counts[0]
            entry[1] += counts[1]

    # ------------------------------------------------------------------
    # Serialization (the result store's JSON format)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form: scalars, counters as dicts, records as dicts.

        Keys inside counters and the timeline are emitted sorted so two
        equal runs always produce byte-identical canonical JSON (the
        result store's parallel-vs-serial determinism guarantee).
        """
        data: Dict[str, Any] = {name: getattr(self, name) for name in _SCALAR_FIELDS}
        for name in _COUNTER_FIELDS:
            counter = getattr(self, name)
            data[name] = {key: counter[key] for key in sorted(counter)}
        for name in _NESTED_COUNTER_FIELDS:
            nested = getattr(self, name)
            data[name] = {
                outer: {key: counter[key] for key in sorted(counter)}
                for outer, counter in sorted(nested.items())
            }
        data["blocks"] = [block.to_dict() for block in self.blocks]
        data["timeline"] = {
            str(bucket): list(counts)
            for bucket, counts in sorted(self.timeline.items())
        }
        data["allocation_log"] = [list(entry) for entry in self.allocation_log]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimStats":
        stats = cls()
        for name in _SCALAR_FIELDS:
            setattr(stats, name, data[name])
        for name in _COUNTER_FIELDS:
            setattr(stats, name, Counter(data[name]))
        for name in _NESTED_COUNTER_FIELDS:
            setattr(
                stats,
                name,
                {outer: Counter(inner) for outer, inner in data[name].items()},
            )
        stats.blocks = [BlockRecord.from_dict(b) for b in data["blocks"]]
        stats.timeline = {
            int(bucket): list(counts) for bucket, counts in data["timeline"].items()
        }
        stats.allocation_log = [
            (entry[0], entry[1], entry[2]) for entry in data["allocation_log"]
        ]
        return stats
