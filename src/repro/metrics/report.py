"""Human-readable single-run reports."""

from __future__ import annotations

from typing import List, Optional

from ..config.gpu_config import GPUConfig
from ..obs.cpi import ordered_buckets
from .counters import SimStats, STREAM_GLOBAL, STREAM_LOCAL, STREAM_SPILL


def run_report(
    stats: SimStats,
    config: GPUConfig,
    title: str = "simulation",
    baseline: Optional[SimStats] = None,
) -> str:
    """Render one run's statistics (optionally relative to a baseline)."""
    lines: List[str] = [f"== {title} ({config.name}) =="]
    lines.append(f"cycles             : {stats.cycles}")
    if baseline is not None and stats.cycles:
        lines.append(
            f"speedup vs baseline: {baseline.cycles / stats.cycles:.3f}x"
        )
    lines.append(f"warp instructions  : {stats.warp_instructions}")
    lines.append(f"micro-ops issued   : {stats.micro_ops}")
    lines.append(f"IPC                : {stats.ipc():.3f}")
    breakdown = stats.access_breakdown()
    lines.append(
        "L1D accesses       : "
        f"{stats.total_l1_accesses} "
        f"(spill {breakdown[STREAM_SPILL]:.0%}, "
        f"local {breakdown[STREAM_LOCAL]:.0%}, "
        f"global {breakdown[STREAM_GLOBAL]:.0%})"
    )
    lines.append(f"L1D miss rate      : {stats.l1_miss_rate():.1%}")
    lines.append(f"MPKI               : {stats.mpki():.1f}")
    lines.append(
        f"L2 / DRAM accesses : {stats.l2_accesses} / {stats.dram_accesses}"
    )
    lines.append(f"calls / returns    : {stats.calls} / {stats.returns}")
    if stats.traps or stats.context_switches:
        lines.append(
            f"CARS traps         : {stats.traps} "
            f"({stats.trap_fraction():.3%} of calls, "
            f"{stats.bytes_spilled_per_call():.2f} B/call); "
            f"context switches {stats.context_switches}"
        )
    lines.append(
        f"blocks retired     : {len(stats.blocks)} "
        f"(idle cycles {stats.idle_cycles}, "
        f"fetch stalls {stats.fetch_stall_cycles})"
    )
    return "\n".join(lines) + "\n"


def cpi_stack_report(
    stats: SimStats,
    title: str = "CPI stack",
    width: int = 40,
) -> str:
    """Render the CPI stack as a cycles / share / bar table.

    Zero buckets are omitted (a baseline run has no CARS buckets and vice
    versa); the footer restates the conservation invariant so a reader can
    eyeball that the rows sum to the run's cycle count.
    """
    stack = stats.cpi_stack
    total = sum(stack.values())
    lines: List[str] = [f"== {title} =="]
    if total == 0:
        lines.append("(no cycles simulated)")
        return "\n".join(lines) + "\n"
    for bucket in ordered_buckets(stack):
        cycles = stack.get(bucket, 0)
        if cycles == 0:
            continue
        share = cycles / total
        bar = "#" * max(1, round(share * width))
        lines.append(f"{bucket:<16} {cycles:>12} {share:>7.1%}  {bar}")
    lines.append(f"{'total':<16} {total:>12} {1:>7.0%}")
    if stats.cycles != total:
        # Never expected (the GPU loop raises on a leak), but a merged
        # stats object from an old store entry could disagree; say so
        # rather than print a silently wrong table.
        lines.append(f"WARNING: bucket sum != simulated cycles ({stats.cycles})")
    return "\n".join(lines) + "\n"
