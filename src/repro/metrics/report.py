"""Human-readable single-run reports."""

from __future__ import annotations

from typing import List, Optional

from ..config.gpu_config import GPUConfig
from .counters import SimStats, STREAM_GLOBAL, STREAM_LOCAL, STREAM_SPILL


def run_report(
    stats: SimStats,
    config: GPUConfig,
    title: str = "simulation",
    baseline: Optional[SimStats] = None,
) -> str:
    """Render one run's statistics (optionally relative to a baseline)."""
    lines: List[str] = [f"== {title} ({config.name}) =="]
    lines.append(f"cycles             : {stats.cycles}")
    if baseline is not None and stats.cycles:
        lines.append(
            f"speedup vs baseline: {baseline.cycles / stats.cycles:.3f}x"
        )
    lines.append(f"warp instructions  : {stats.warp_instructions}")
    lines.append(f"micro-ops issued   : {stats.micro_ops}")
    lines.append(f"IPC                : {stats.ipc():.3f}")
    breakdown = stats.access_breakdown()
    lines.append(
        "L1D accesses       : "
        f"{stats.total_l1_accesses} "
        f"(spill {breakdown[STREAM_SPILL]:.0%}, "
        f"local {breakdown[STREAM_LOCAL]:.0%}, "
        f"global {breakdown[STREAM_GLOBAL]:.0%})"
    )
    lines.append(f"L1D miss rate      : {stats.l1_miss_rate():.1%}")
    lines.append(f"MPKI               : {stats.mpki():.1f}")
    lines.append(
        f"L2 / DRAM accesses : {stats.l2_accesses} / {stats.dram_accesses}"
    )
    lines.append(f"calls / returns    : {stats.calls} / {stats.returns}")
    if stats.traps or stats.context_switches:
        lines.append(
            f"CARS traps         : {stats.traps} "
            f"({stats.trap_fraction():.3%} of calls, "
            f"{stats.bytes_spilled_per_call():.2f} B/call); "
            f"context switches {stats.context_switches}"
        )
    lines.append(
        f"blocks retired     : {len(stats.blocks)} "
        f"(idle cycles {stats.idle_cycles}, "
        f"fetch stalls {stats.fetch_stall_cycles})"
    )
    return "\n".join(lines) + "\n"
