"""Statistics, derived metrics, and report formatting."""

from .counters import (
    BlockRecord,
    SimStats,
    STREAM_GLOBAL,
    STREAM_LOCAL,
    STREAM_SPILL,
    TIMELINE_BUCKET,
)
from .report import run_report

__all__ = [
    "BlockRecord",
    "SimStats",
    "STREAM_GLOBAL",
    "STREAM_LOCAL",
    "STREAM_SPILL",
    "TIMELINE_BUCKET",
    "run_report",
]
