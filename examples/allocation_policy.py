"""Watching the concurrency/stack-depth tradeoff and the Fig 5 policy.

Builds one kernel whose High-watermark cannot fit every warp, then runs it
under Low-watermark, 2xLow, High-watermark, and the dynamic policy — over
two launches, so the cross-launch memory (the paper's "best-performing
allocation ... starting point for the next invocation") is visible.

    python examples/allocation_policy.py
"""

from repro.callgraph import analyze_kernel, build_call_graph
from repro.cars.allocation import plan_allocation
from repro.cars.policy import PolicyMemory
from repro.config import volta
from repro.frontend import builder as b
from repro.api import Simulation
from repro.core.techniques import CARS_HIGH, CARS_LOW, cars_nxlow
from repro.workloads import KernelLaunch, SynthKernel, build_workload


def main():
    spec = SynthKernel(
        name="deep",
        depth=9,
        fru_chain=(6, 6, 5, 5, 5, 4, 4, 4, 4),
        iters=6,
        grid_blocks=24,
        threads_per_block=128,  # 4 warps/block: High-watermark can't fit all
        alu_per_level=1,
    )
    workload = build_workload("policy-demo", "examples", [spec])
    module = workload.module()
    analysis = analyze_kernel(build_call_graph(module), "deep")
    cfg = volta()
    plan = plan_allocation(analysis, cfg, warps_per_block=4, shared_mem_bytes=0)

    print("== static analysis ==")
    print(f"  kernel FRU      : {analysis.kernel_fru}")
    print(f"  Low-watermark   : {analysis.low_watermark}")
    print(f"  High-watermark  : {analysis.high_watermark}")
    print(f"  guaranteed/warp : {plan.guaranteed_regs_per_warp}")
    print(f"  decision        : {'dynamic' if plan.dynamic else 'static'} "
          f"over ladder {plan.levels}")

    def simulate(technique, **kw):
        sim = Simulation(workload=workload, technique=technique, **kw)
        sim.run()
        return sim.result

    base = simulate("baseline")
    print("\n== allocation mechanisms (speedup over baseline) ==")
    for label, tech in (
        ("Low-watermark", CARS_LOW),
        ("2xLow", cars_nxlow(2)),
        ("High-watermark", CARS_HIGH),
    ):
        r = simulate(tech)
        print(f"  {label:16s}: {base.cycles / r.cycles:.3f}x "
              f"(traps={r.stats.traps}, ctx-switches={r.stats.context_switches})")

    memory = PolicyMemory()
    first = simulate("cars", policy_memory=memory)
    second = simulate("cars", policy_memory=memory)
    print("\n== dynamic policy across launches ==")
    print(f"  launch 1 (half-Low/half-High seed): "
          f"{base.cycles / first.cycles:.3f}x, traps={first.stats.traps}")
    print(f"  launch 2 (seeded at remembered best {memory.best_level('deep')}): "
          f"{base.cycles / second.cycles:.3f}x, traps={second.stats.traps}")
    levels = [lvl for _, lvl, _ in second.stats.allocation_log]
    print(f"  launch 2 block levels: {sorted(set(levels))} "
          f"({len(levels)} blocks)")


if __name__ == "__main__":
    main()
