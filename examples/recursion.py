"""Recursion under CARS: Fibonacci with growing call depth.

The paper (Sections III-C, VI-C): recursive call graphs have no static
MaxStackDepth, so High-watermark assumes one iteration of the cycle.  With
a shallow input FIB never traps; increasing the input depth exhausts the
register stack and triggers the wrap-around spills of Fig 6.

    python examples/recursion.py
"""

import dataclasses

from repro.callgraph import analyze_kernel, build_call_graph
from repro.config import volta
from repro.frontend import builder as b
from repro.api import Simulation
from repro.workloads import KernelLaunch, Workload

OUT = 1 << 20

#: A register-lean GPU so deep recursion actually exhausts the per-warp
#: stack (the default scaled config has space to spare for this kernel).
CONFIG = dataclasses.replace(volta(), registers_per_sm=384)


def build_program(depth: int):
    prog = b.program()
    b.device(prog, "fib", ["n"], [
        b.if_(b.v("n") < 2, [b.ret(b.v("n"))]),
        b.let("p", b.call("fib", b.v("n") - 1)),
        b.let("q", b.call("fib", b.v("n") - 2)),
        b.ret(b.v("p") + b.v("q")),
    ], reg_pressure=5)
    b.kernel(prog, "main", ["data", "out"], [
        b.let("i", b.gid()),
        b.store(b.v("out") + b.v("i"), b.call("fib", b.c(depth))),
    ])
    return prog


def run_depth(depth: int):
    workload = Workload(
        name=f"fib{depth}",
        suite="examples",
        program=build_program(depth),
        launches=[KernelLaunch("main", grid_blocks=8, threads_per_block=64,
                               params=(0, OUT))],
    )
    module = workload.module()
    analysis = analyze_kernel(build_call_graph(module), "main")
    def simulate(technique):
        sim = Simulation(workload=workload, technique=technique, config=CONFIG)
        sim.run()
        return sim.result

    base = simulate("baseline")
    cars = simulate("cars")
    return analysis, base, cars, workload


def main():
    print("The static analysis sees one cycle iteration, so the watermark")
    print("is independent of the true dynamic depth:\n")
    header = f"{'depth':>5} {'dyn depth':>9} {'high-wm':>8} {'traps':>7} " \
             f"{'bytes/call':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for depth in (4, 8, 14):
        analysis, base, cars, workload = run_depth(depth)
        dyn_depth = workload.measured_call_depth()
        print(f"{depth:>5} {dyn_depth:>9} {analysis.high_watermark:>8} "
              f"{cars.stats.traps:>7} "
              f"{cars.stats.bytes_spilled_per_call():>10.2f} "
              f"{base.cycles / cars.cycles:>7.2f}x")
    print("\nShallow recursion stays entirely in the register file; deeper")
    print("inputs overflow the per-warp stack and fall back to the Fig 6")
    print("wrap-around spills — correctness is preserved either way, as the")
    print("paper demonstrates with its FIB workload.")


if __name__ == "__main__":
    main()
