"""Quickstart: write a GPU kernel with device functions, run it through the
baseline ABI and CARS, and compare.

    python examples/quickstart.py

Walks the whole pipeline: DSL -> compiler (ABI spills at R16) -> functional
emulation (traces) -> timing simulation under both techniques.
"""

from repro.api import Simulation
from repro.callgraph import analyze_kernel, build_call_graph
from repro.frontend import builder as b
from repro.workloads import KernelLaunch, Workload

OUT = 1 << 20


def build_program():
    """A kernel that calls a small math library (not inlined)."""
    prog = b.program()

    # __device__ int poly(int x, int a) - keeps `t` live across the call.
    b.device(prog, "horner", ["x", "a"], [
        b.let("t", b.mad(b.v("x"), 5, b.v("a"))),
        b.let("u", b.call("magnitude", b.v("t"))),
        b.ret(b.v("t") + b.v("u")),
    ], reg_pressure=6)

    # __device__ int magnitude(int v)
    b.device(prog, "magnitude", ["vv"], [
        b.let("s", b.mufu(b.v("vv"))),
        b.ret(b.v("s") ^ b.v("vv")),
    ], reg_pressure=4)

    # __global__ void main(int* data, int* out)
    b.kernel(prog, "main", ["data", "out"], [
        b.let("i", b.gid()),
        b.let("acc", b.load(b.v("data") + (b.v("i") & 1023))),
        b.for_("it", 0, 6, [
            b.let("acc", b.v("acc") + b.call("horner", b.v("it"), b.v("acc"))),
        ]),
        b.store(b.v("out") + b.v("i"), b.v("acc")),
    ])
    return prog


def main():
    workload = Workload(
        name="quickstart",
        suite="examples",
        program=build_program(),
        launches=[KernelLaunch("main", grid_blocks=8, threads_per_block=64,
                               params=(0, OUT))],
    )

    module = workload.module()
    print("== compiled binary ==")
    for func in module.functions.values():
        print(f"  {func.name:10s} regs={func.num_regs:3d} "
              f"callee_saved={func.callee_saved} fru={func.fru}")
    print(f"  linker worst-case regs/warp: {module.worst_case_regs['main']}")

    analysis = analyze_kernel(build_call_graph(module), "main")
    print("\n== call-graph analysis (Fig 4 machinery) ==")
    print(f"  kernel FRU          : {analysis.kernel_fru}")
    print(f"  Low-watermark       : {analysis.low_watermark}")
    print(f"  High-watermark      : {analysis.high_watermark}")
    print(f"  allocation ladder   : {analysis.allocation_levels()}")

    base_sim = Simulation(workload=workload, technique="baseline")
    cars_sim = Simulation(workload=workload, technique="cars")
    base_sim.run()
    cars_sim.run()
    base, cars = base_sim.result, cars_sim.result
    print("\n== timing ==")
    print(f"  baseline cycles     : {base.cycles}")
    print(f"  CARS cycles         : {cars.cycles}")
    print(f"  speedup             : {base.cycles / cars.cycles:.2f}x")
    print(f"  baseline spill share: {base.stats.spill_fraction():.0%} of L1D accesses")
    print(f"  CARS spill share    : {cars.stats.spill_fraction():.0%}")
    print(f"  MPKI                : {base.stats.mpki():.0f} -> {cars.stats.mpki():.0f}")
    print(f"  energy efficiency   : "
          f"{cars.energy_efficiency() / base.energy_efficiency():.2f}x baseline")


if __name__ == "__main__":
    main()
