"""Ray-tracing-style workload with virtual material functions.

The paper's intro motivates CARS with polymorphic GPU code (ParaPoly's
raytracer, Cutlass's deep template libraries).  This example builds a
mini path-tracer shape: every bounce dispatches through a *function
pointer* (CALLI) to one of three material shaders with different register
demand, so threads of a warp may call different functions — the paper's
Section III-C case (3).

    python examples/raytracer.py
"""

from repro.emu.trace import TraceKind
from repro.frontend import builder as b
from repro.api import Simulation
from repro.workloads import KernelLaunch, Workload

OUT = 1 << 20
BOUNCES = 4


def build_program():
    prog = b.program()

    # Three material shaders: lambert, metal, glass — increasing register
    # appetite (the indirect-call analysis must cover the worst one).
    b.device(prog, "lambert", ["ray", "seed"], [
        b.let("n", b.mufu(b.v("ray"))),
        b.ret(b.mad(b.v("n"), 3, b.v("seed"))),
    ], reg_pressure=3)

    b.device(prog, "metal", ["ray", "seed"], [
        b.let("n", b.mufu(b.v("ray"))),
        b.let("refl", b.v("ray") ^ (b.v("n") << 1)),
        b.let("fuzz", b.call("lambert", b.v("refl"), b.v("seed"))),
        b.ret(b.v("refl") + b.v("fuzz")),
    ], reg_pressure=5)

    b.device(prog, "glass", ["ray", "seed"], [
        b.let("eta", b.v("ray") * 2654435761 + 97),
        b.let("inner", b.call("metal", b.v("eta"), b.v("seed"))),
        b.ret(b.v("inner") ^ b.v("eta")),
    ], reg_pressure=7)

    # __global__: trace rays, dispatching on the hit object's material.
    b.kernel(prog, "trace", ["scene", "image"], [
        b.let("i", b.gid()),
        b.let("ray", b.load(b.v("scene") + (b.v("i") & 2047))),
        b.let("color", b.c(0)),
        b.for_("bounce", 0, BOUNCES, [
            # Scene intersection: a hot, lane-divergent lookup.
            b.let("hit", b.load(
                b.v("scene") + ((b.v("ray") * 2654435761 + b.v("i")) & 2047))),
            # Virtual dispatch on the material id.
            b.let("shade", b.icall(["lambert", "metal", "glass"],
                                   b.v("hit"), b.v("ray"), b.v("i"))),
            b.let("color", b.v("color") + b.v("shade")),
            b.let("ray", b.v("ray") ^ (b.v("shade") >> 2)),
        ]),
        b.store(b.v("image") + b.v("i"), b.v("color")),
    ])
    return prog


def main():
    workload = Workload(
        name="raytracer",
        suite="examples",
        program=build_program(),
        launches=[KernelLaunch("trace", grid_blocks=12, threads_per_block=64,
                               params=(0, OUT))],
    )
    trace = workload.traces()[0]
    print("== dynamic behaviour ==")
    print(f"  dynamic instructions : {trace.dynamic_instructions}")
    print(f"  calls (incl. virtual): {trace.count(TraceKind.CALL)}")
    print(f"  CPKI                 : {trace.calls_per_kilo_instruction():.1f}")
    print(f"  max dynamic depth    : {trace.max_dynamic_call_depth()}")

    def simulate(technique):
        sim = Simulation(workload=workload, technique=technique)
        sim.run()
        return sim.result

    base = simulate("baseline")
    cars = simulate("cars")
    lto = simulate("lto")
    print("\n== techniques ==")
    print(f"  baseline cycles : {base.cycles}")
    print(f"  CARS            : {base.cycles / cars.cycles:.2f}x")
    print(f"  LTO (inlined)   : {base.cycles / lto.cycles:.2f}x "
          f"(virtual targets cannot inline; their calls remain)")
    lto_trace = workload.traces(inlined=True)[0]
    print(f"  LTO residual calls: {lto_trace.count(TraceKind.CALL)} "
          f"(vs {trace.count(TraceKind.CALL)} baseline)")


if __name__ == "__main__":
    main()
