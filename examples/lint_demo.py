"""Lint demo: run the ABI/stack-safety linter over a hand-written binary.

    python examples/lint_demo.py

The DSL compiler only emits well-formed code, so this example assembles a
deliberately broken device function directly from ISA builders — the kind
of binary a buggy backend (or a hand-patched SASS file) could produce —
and shows how `repro.analysis` reports each violation, how the harness
gate refuses to simulate it, and that a real workload binary lints clean.
"""

from repro.analysis import LintError, ensure_module_linted, lint_module, render_text
from repro.isa import (
    Function,
    Module,
    Opcode,
    alu,
    call,
    cbra,
    exit_,
    movi,
    pop,
    push,
    ret,
    setp,
    ssy,
    sync,
)
from repro.workloads import make_workload


def build_broken_module():
    """A kernel calling a device function with four distinct ABI bugs."""
    # __device__: clobbers callee-saved state and loses a PUSH on one path.
    buggy = Function(
        name="buggy",
        instructions=[
            alu(Opcode.IADD, 5, 12, 4),   # R12 is scratch: never written!
            movi(17, 7),                  # callee-saved R17, no PUSH at all
            setp(0, 0, 4, 5),
            ssy("join"),
            cbra(0, "deep"),
            sync(),                       # shallow path: nothing pushed
            push(16, 2),                  # deep path: pushes and never pops
            sync(),
            ret(),                        # paths disagree on stack depth
        ],
        labels={"deep": 6, "join": 8},
        num_regs=18,
        callee_saved=(16, 2),
        fru=3,
    )
    main = Function(
        name="main",
        instructions=[call("buggy"), exit_()],
        num_regs=16,
        is_kernel=True,
        fru=16,
    )
    return Module(functions={"main": main, "buggy": buggy},
                  worst_case_regs={"main": 21})


def main():
    module = build_broken_module()
    report = lint_module(module, "broken-demo")
    print("== lint report for the broken binary ==")
    print(render_text([report]))

    print("\n== the harness gate on the same binary ==")
    try:
        ensure_module_linted(module, "broken-demo")
    except LintError as exc:
        first = str(exc).splitlines()[0]
        print(f"  refused to simulate: {first}")

    workload = make_workload("MST")
    clean = lint_module(workload.module(), "MST")
    print("\n== a real workload binary ==")
    print(render_text([clean]))
    print(f"  gate passes: {clean.ok(strict=True)}")


if __name__ == "__main__":
    main()
