"""Setup shim: enables legacy editable installs where the environment lacks
the `wheel` package required by PEP 517 editable builds."""
from setuptools import setup

setup()
