"""Fig 8 (headline): CARS vs idealized configurations, normalized speedups."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig08_performance(benchmark, names):
    rows = run_once(benchmark, ex.fig8_performance, names)
    print(format_table(rows, title="Fig 8 - speedup over baseline"))
    geo = rows["geomean"]
    # Paper headline: CARS improves performance by ~26% geomean and
    # outperforms every idealized configuration.
    assert geo["cars"] > 1.08
    assert geo["cars"] >= geo["ideal_vw"]
    assert geo["cars"] >= geo["best_swl"]
    assert geo["cars"] >= geo["l1_10mb"] * 0.97  # ties allowed on subsets
    # No catastrophic slowdown on any single workload.
    assert all(row["cars"] > 0.9 for n, row in rows.items() if n != "geomean")
