"""Fig 14: PTA per-kernel comparison of the allocation mechanisms."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig14_pta_allocation(benchmark):
    rows = run_once(benchmark, ex.fig14_pta_allocation)
    print(format_table(rows, title="Fig 14 - PTA allocation mechanisms"))
    # Paper: over half the kernels show (almost) no improvement because
    # they have few/no spills - Low and High then perform alike.
    flat = [k for k, r in rows.items() if abs(r["low"] - r["high"]) < 0.08]
    assert len(flat) >= len(rows) // 3
    # The call-free kernel (K7) is untouched by any mechanism.
    assert abs(rows["K7"]["low"] - 1.0) < 0.05
    assert abs(rows["K7"]["high"] - 1.0) < 0.05
    # Only barrier kernels can context-switch under High-watermark
    # (the paper's K1); kernels without barriers never do.
    for name in ("K2", "K4", "K5", "K6", "K7", "K8"):
        assert rows[name]["high_context_switches"] == 0, name
    # Deep-chain kernels beat the baseline with High-watermark.
    assert rows["K4"]["high"] > 1.02
    # The dynamic mechanism lands between the static extremes: it pays a
    # half-Low/half-High exploration cost on the first launch (Fig 5), so
    # it need not match the best static choice, but it must clearly avoid
    # the worst one.
    for name, row in rows.items():
        best_static = max(row["low"], row["high"], row["nxlow2"])
        worst_static = min(row["low"], row["high"], row["nxlow2"])
        assert row["dynamic"] >= best_static * 0.6, name
        assert row["dynamic"] >= worst_static * 0.9, name
