"""Fig 11: PTA global/local bandwidth over time, baseline vs CARS."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_series


def test_fig11_bandwidth_timeline(benchmark):
    result = run_once(benchmark, ex.fig11_bandwidth_timeline)
    print(format_series(result["baseline_series"][:16],
                        ("cycle", "global_sectors", "local_sectors"),
                        title="Fig 11 - baseline timeline (first buckets)"))
    print(format_series(result["cars_series"][:16],
                        ("cycle", "global_sectors", "local_sectors"),
                        title="Fig 11 - CARS timeline (first buckets)"))
    print("avg global BW: baseline=%.4f cars=%.4f (x%.2f)" % (
        result["baseline_avg_global_bw"], result["cars_avg_global_bw"],
        result["cars_avg_global_bw"] / result["baseline_avg_global_bw"]))
    # Paper: with spill interference gone, PTA's average global bandwidth
    # rises (98% on the V100; directionally reproduced here).
    assert result["cars_avg_global_bw"] > result["baseline_avg_global_bw"]
    # Baseline timeline must carry substantial local (spill) traffic.
    base_local = sum(l for _, _, l in result["baseline_series"])
    cars_local = sum(l for _, _, l in result["cars_series"])
    assert cars_local < base_local
