"""Fig 10: the ALL-HIT cache study."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig10_allhit(benchmark, names):
    rows = run_once(benchmark, ex.fig10_allhit, names)
    print(format_table(rows, title="Fig 10 - ALL-HIT vs CARS"))
    geo = rows["geomean"]
    # Paper: ALL-HIT explains most of CARS's win (it removes spill misses
    # but still pays spill bandwidth); CARS matches or beats it overall.
    assert geo["all_hit"] > 1.0
    assert geo["cars"] >= geo["all_hit"] * 0.95
