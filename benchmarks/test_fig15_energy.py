"""Fig 15: energy efficiency, normalized to the baseline."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig15_energy(benchmark, names):
    rows = run_once(benchmark, ex.fig15_energy, names)
    print(format_table(rows, title="Fig 15 - energy efficiency (norm.)"))
    geo = rows["geomean"]
    # Paper: CARS is ~28% more energy efficient and the energy gain is at
    # least on par with the performance gain (less data movement + less
    # static leakage).
    assert geo["cars"] > 1.08
    assert geo["cars"] >= geo["ideal_vw"]
    assert geo["cars"] >= geo["best_swl"]
