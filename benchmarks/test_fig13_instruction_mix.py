"""Fig 13: instruction-frequency breakdown, normalized to the baseline."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig13_instruction_mix(benchmark, names):
    rows = run_once(benchmark, ex.fig13_instruction_mix, names)
    print(format_table(rows, title="Fig 13 - instruction mix (norm. to baseline)"))
    for name, row in rows.items():
        # CARS eliminates spill/fill instructions...
        assert row["cars_spill"] <= row["baseline_spill"] + 1e-9, name
        # ...replacing them with (cheaper, fewer) stack renames.
        if row["baseline_spill"] > 0.02:
            assert row["cars_stack"] > 0, name
            assert row["cars_stack"] < row["baseline_spill"], name
        # The useful work (ALU + globals) is unchanged.
        assert abs(row["cars_alu"] - row["baseline_alu"]) < 0.05, name
