"""Timing-core performance benchmarks (simulator throughput, not figures).

Pins the cost of the simulator itself and of the observability layer on
top of it: one compute-bound workload (FIB) and one memory-bound workload
(Bert_LT, which lives on the event-driven fast-forward path) simulated
with observability fully off (``obs=None``, the production default), with
the bounded tracer, and with per-warp stall attribution.  CI runs these
in smoke mode (``--benchmark-disable``) so regressions in *correctness*
of the profiled paths surface on every push; locally,
``pytest benchmarks/test_perf_core.py`` reports real timings, and the
off-vs-tracing delta bounds the layer's overhead (the disabled
configuration is one attribute test per issue).

The absolute cycles/sec numbers — and the >20% regression gate CI applies
to them — live in ``BENCH_core.json`` at the repo root, maintained with
``python -m repro bench`` (see ``--check`` / ``--json``).
"""

import pytest

from repro.core.techniques import BASELINE, CARS
from repro.harness._runner import run_workload
from repro.obs import ObsSession
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def workload():
    wl = make_workload("FIB")
    wl.traces()  # pre-trace so benchmarks time the timing core only
    return wl


@pytest.fixture(scope="module")
def mem_workload():
    # Memory-bound counterpart: long DRAM round trips exercise the
    # event-driven fast-forward path that FIB (compute-bound) barely hits.
    wl = make_workload("Bert_LT")
    wl.traces()
    return wl


def _record_throughput(benchmark, result):
    """Attach simulated-cycles-per-second to the benchmark record."""
    stats = getattr(benchmark, "stats", None)
    if stats is not None and stats.stats.mean:
        benchmark.extra_info["cycles_simulated"] = result.stats.cycles
        benchmark.extra_info["cycles_per_sec"] = round(
            result.stats.cycles / stats.stats.mean
        )


def test_perf_baseline_obs_off(benchmark, workload):
    result = benchmark.pedantic(
        run_workload, args=(workload, BASELINE), rounds=3, iterations=1
    )
    assert result.stats.cpi_total() == result.stats.cycles
    _record_throughput(benchmark, result)


def test_perf_cars_obs_off(benchmark, workload):
    result = benchmark.pedantic(
        run_workload, args=(workload, CARS), rounds=3, iterations=1
    )
    assert result.stats.cpi_total() == result.stats.cycles
    _record_throughput(benchmark, result)


def test_perf_membound_baseline_obs_off(benchmark, mem_workload):
    result = benchmark.pedantic(
        run_workload, args=(mem_workload, BASELINE), rounds=3, iterations=1
    )
    assert result.stats.cpi_total() == result.stats.cycles
    assert result.stats.idle_cycles > 0  # fast-forward path is exercised
    _record_throughput(benchmark, result)


def test_perf_membound_cars_obs_off(benchmark, mem_workload):
    result = benchmark.pedantic(
        run_workload, args=(mem_workload, CARS), rounds=3, iterations=1
    )
    assert result.stats.cpi_total() == result.stats.cycles
    _record_throughput(benchmark, result)


def test_perf_baseline_with_tracer(benchmark, workload):
    def run():
        return run_workload(
            workload, BASELINE, obs=ObsSession(trace=True)
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.cpi_total() == result.stats.cycles


def test_perf_baseline_per_warp(benchmark, workload):
    def run():
        return run_workload(
            workload, BASELINE, obs=ObsSession(per_warp=True)
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.warp_stalls
