"""Table I: workload call depth and CPKI, paper vs measured."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_table1_workloads(benchmark, names):
    rows = run_once(benchmark, ex.table1_workloads, names)
    print(format_table(rows, title="Table I - workload characteristics",
                       float_fmt="{:.2f}"))
    for name, row in rows.items():
        # Call depth is reproduced exactly by construction.
        assert row["measured_depth"] == row["paper_depth"], name
        # CPKI is approximate: within 2x above, 2.5x below. The low-side
        # slack covers the deep Rapids chains, whose in-function memory
        # work (realistic for library code) dilutes calls-per-instruction.
        assert row["paper_cpki"] / 2.5 <= row["measured_cpki"], name
        assert row["measured_cpki"] <= row["paper_cpki"] * 2, name
