"""Fig 17: sensitivity to L1D cache bandwidth (port scaling)."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig17_port_scaling(benchmark, names):
    rows = run_once(benchmark, ex.fig17_port_scaling, names)
    print(format_table(rows, title="Fig 17 - L1 bandwidth scaling (norm. to 1x baseline)"))
    geo = rows["geomean"]
    # Paper: extra ports barely help the baseline (1.02-1.03x) because
    # miss bandwidth is unchanged; CARS's advantage persists at every
    # bandwidth level.
    assert geo["baseline_8x"] < geo["cars_1x"]
    for factor in (2, 4, 8):
        assert geo[f"baseline_{factor}x"] >= 0.97
        assert geo[f"cars_{factor}x"] >= geo[f"baseline_{factor}x"]
    # Baseline port scaling saturates quickly (small marginal gains).
    assert geo["baseline_8x"] / geo["baseline_2x"] < 1.25
