"""Fig 6: wrap-around spilling when stack demand exceeds the allocation."""

from conftest import run_once

from repro.harness import experiments as ex


def test_fig06_wraparound(benchmark):
    result = run_once(benchmark, ex.fig6_wraparound_demo)
    print("Fig 6 - wrap-around demo:", result)
    # Four 8-register frames into a 20-register stack: the two oldest
    # frames spill on the way down and fill back on the way up.
    assert result["spilled_regs"] == 16
    assert result["filled_regs"] == 16


def test_fig06_no_spills_when_capacity_suffices(benchmark):
    result = run_once(benchmark, ex.fig6_wraparound_demo, capacity=64)
    assert result == {"spilled_regs": 0, "filled_regs": 0}
