"""Table II: diagnosed main speedup factor per workload."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_table2_speedup_factors(benchmark, names):
    rows = run_once(benchmark, ex.table2_speedup_factors, names)
    print(format_table(rows, title="Table II - main speedup factors"))
    # The diagnosis must agree with the paper's class for a solid majority
    # of workloads (exact boundary cases may differ on a scaled machine).
    matches = sum(
        1 for row in rows.values()
        if row["paper"] and (
            row["diagnosed"] == row["paper"]
            # capacity vs capacity+contention is a soft boundary.
            or ("capacity" in row["diagnosed"] and "capacity" in row["paper"])
        )
    )
    assert matches >= int(0.6 * len(rows)), f"{matches}/{len(rows)} matched"
