"""Fig 1: growth of GPU codebases and device-function counts."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_series
from repro.workloads.fig1_data import growth_factor


def test_fig01_trend(benchmark):
    series = run_once(benchmark, ex.fig1_trend)
    print(format_series(series, ("year", "sloc", "device_functions"),
                        title="Fig 1 - codebase growth survey"))
    years = [y for y, _, _ in series]
    assert years == sorted(years)
    # Paper shape: log-scale growth over 15 years of CUDA development.
    assert growth_factor() > 100
    assert series[-1][2] / series[0][2] > 100
