"""Fig 18: CARS on the Ampere (RTX 3070-like) configuration."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig18_ampere(benchmark, names):
    rows = run_once(benchmark, ex.fig18_ampere, names)
    print(format_table(rows, title="Fig 18 - CARS speedup on Ampere"))
    geo = rows["geomean"]["cars"]
    # Paper: "CARS' overall speedup is resilient on a more recent
    # architecture."
    assert geo > 1.05
    assert all(row["cars"] > 0.85 for n, row in rows.items() if n != "geomean")
