"""Ablations of CARS design choices (beyond the paper's figures).

These probe the design decisions DESIGN.md calls out: the extra pipeline
stage's cost, the value of the dynamic policy vs static watermarks, and
the circular-stack trap under register starvation.  They run on fixed
small workloads so their cost is bounded regardless of REPRO_WORKLOADS.
"""

import dataclasses

from conftest import run_once

from repro.config import volta
from repro.core.techniques import CARS, CARS_HIGH, CARS_LOW, Technique
from repro.harness._runner import run_baseline, run_workload
from repro.workloads import make_workload


def _speedups_vs_pipeline_penalty(name="SSSP"):
    wl = make_workload(name)
    rows = {}
    for extra in (0, 1, 3):
        cfg = dataclasses.replace(
            volta(), name=f"volta-extra{extra}", cars_extra_pipeline_cycles=extra
        )
        base = run_baseline(wl, config=cfg)
        cars = run_workload(wl, CARS, config=cfg)
        rows[extra] = base.cycles / cars.cycles
    return rows


def test_ablation_pipeline_penalty(benchmark):
    rows = run_once(benchmark, _speedups_vs_pipeline_penalty)
    print("CARS speedup vs extra pipeline cycles:", rows)
    # More pipeline overhead monotonically erodes (but does not erase)
    # the win — supporting the paper's 1-cycle worst-case assumption.
    assert rows[0] >= rows[1] >= rows[3] - 0.02
    assert rows[1] > 1.0


def _policy_vs_static(name="SVR"):
    wl = make_workload(name)
    base = run_baseline(wl)
    return {
        "low": base.cycles / run_workload(wl, CARS_LOW).cycles,
        "high": base.cycles / run_workload(wl, CARS_HIGH).cycles,
        "dynamic": base.cycles / run_workload(wl, CARS).cycles,
    }


def test_ablation_dynamic_policy(benchmark):
    rows = run_once(benchmark, _policy_vs_static)
    print("SVR allocation mechanisms:", rows)
    # The deep Rapids chain punishes Low-watermark (traps on every call);
    # the dynamic policy must avoid that cliff.
    assert rows["high"] > rows["low"]
    assert rows["dynamic"] >= rows["low"]
    assert rows["dynamic"] >= min(rows["high"], rows["low"]) * 0.95


def _trap_pressure():
    wl = make_workload("FIB")
    rows = {}
    for regs in (1024, 384, 256):
        cfg = dataclasses.replace(
            volta(), name=f"volta-r{regs}", registers_per_sm=regs
        )
        cars = run_workload(wl, CARS, config=cfg)
        rows[regs] = {
            "traps": cars.stats.traps,
            "bytes_per_call": cars.stats.bytes_spilled_per_call(),
        }
    return rows


def test_ablation_trap_pressure(benchmark):
    rows = run_once(benchmark, _trap_pressure)
    print("FIB trap behaviour vs register-file size:", rows)
    # Shrinking the register file forces the wrap-around trap path; the
    # severity (bytes/call) grows as the stack starves.
    assert rows[256]["traps"] >= rows[1024]["traps"]
    assert rows[256]["bytes_per_call"] >= rows[1024]["bytes_per_call"]


def _renaming_vs_memory_stack():
    """What if CARS kept per-warp stacks but still used memory for them?
    (i.e. the pure capacity-reservation ablation: no renaming)."""
    wl = make_workload("SSSP")
    base = run_baseline(wl)
    cars = run_workload(wl, CARS)
    # Baseline IS the memory-stack design; the delta isolates renaming.
    return {"memory_stack": 1.0, "renamed_stack": base.cycles / cars.cycles}


def test_ablation_renaming_is_the_win(benchmark):
    rows = run_once(benchmark, _renaming_vs_memory_stack)
    print("Renaming ablation:", rows)
    assert rows["renamed_stack"] > rows["memory_stack"]
