"""Fig 2: baseline memory-access mix — spills/fills vs locals vs globals."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig02_baseline_access_mix(benchmark, names):
    rows = run_once(benchmark, ex.fig2_baseline_access_mix, names)
    print(format_table(rows, title="Fig 2 - baseline L1D access mix"))
    average = rows["average"]
    # Paper: 40.4% of in-core L1D accesses are register spills/fills.
    assert 0.25 <= average["spill"] <= 0.70
    assert average["global"] > 0.15
    # Every stream fraction is a valid proportion.
    for name, row in rows.items():
        assert abs(sum(row.values()) - 1.0) < 1e-6, name
