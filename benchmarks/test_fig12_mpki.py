"""Fig 12: L1D MPKI, baseline vs CARS."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig12_mpki(benchmark, names):
    rows = run_once(benchmark, ex.fig12_mpki, names)
    print(format_table(rows, title="Fig 12 - L1D MPKI"))
    # Paper: 35% average MPKI reduction.
    reduction = rows["average_reduction"]["cars"]
    assert reduction > 0.2
    for name in names:
        assert rows[name]["cars"] <= rows[name]["baseline"] * 1.25, name
