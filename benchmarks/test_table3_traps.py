"""Table III: software-trap frequency and severity under CARS."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_table3_trap_stats(benchmark, names):
    rows = run_once(benchmark, ex.table3_trap_stats, names)
    print(format_table(rows, title="Table III - trap handler stats",
                       float_fmt="{:.4f}"))
    # Paper: trapping is rare - only PTA traps, with 0.014% of calls and
    # 0.78 bytes spilled/filled per call. On the scaled machine a few
    # workloads may trap, but always a small minority of the suite...
    assert len(rows) <= max(3, len(names) // 4)
    # ...and the per-call severity stays in the "few bytes" regime.
    for name, row in rows.items():
        assert row["trap_fraction"] < 0.5, name
        assert row["bytes_per_call"] < 256, name
