"""Fig 9: memory-access breakdown, CARS vs baseline."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig09_access_reduction(benchmark, names):
    rows = run_once(benchmark, ex.fig9_access_reduction, names)
    print(format_table(rows, title="Fig 9 - L1D accesses (norm. to baseline total)"))
    spills_before = [r["baseline_spill"] for r in rows.values()]
    spills_after = [r["cars_spill"] for r in rows.values()]
    # Paper: the spill/fill share drops by ~40 points on average.
    avg_drop = sum(b - a for b, a in zip(spills_before, spills_after)) / len(rows)
    assert avg_drop > 0.25
    for name, row in rows.items():
        # CARS never increases spill traffic...
        assert row["cars_spill"] <= row["baseline_spill"] + 1e-9, name
        # ...and global accesses are unaffected (CARS only touches locals).
        assert abs(row["cars_global"] - row["baseline_global"]) < 0.35, name
