"""Fig 5: the dynamic register-reservation state machine."""

from conftest import run_once

from repro.harness import experiments as ex


def test_fig05_policy_state_machine(benchmark):
    result = run_once(benchmark, ex.fig5_policy_demo)
    print("Fig 5 - policy demo:", result)
    # Half the SMs seed Low (level 0), half seed High (top level).
    assert sorted(result["seeds"]) == [0, 0, 2, 2]
    # After High measures faster, Low SMs step toward 2xLow.
    assert all(level >= 1 for level in result["after_measurement"])
    # The winner is remembered and seeds the next launch of this kernel.
    assert result["remembered_best"] == 2
    assert result["next_launch_seeds"] == [2, 2, 2, 2]
