"""Fig 4: the lightweight call-graph analysis on the paper's example."""

from conftest import run_once

from repro.harness import experiments as ex


def test_fig04_callgraph_example(benchmark):
    result = run_once(benchmark, ex.fig4_callgraph_example)
    print("Fig 4 - watermarks:", result)
    # The paper's quoted numbers: Low-watermark 30, High-watermark 56.
    assert result["low_watermark"] == 30
    assert result["high_watermark"] == 56
    assert 30 < result["2xlow_watermark"] <= 56
