"""Shared fixtures for the figure/table benchmarks.

Each benchmark regenerates one paper figure or table through
``repro.harness.experiments``; results are cached module-wide so the whole
suite costs roughly one full technique sweep.  Scope defaults to all 22
workloads; set ``REPRO_WORKLOADS=smoke`` (or a comma list) for a quick pass.
"""

import pytest

from repro.harness import experiments


@pytest.fixture(scope="session")
def names():
    return experiments.workload_names()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
