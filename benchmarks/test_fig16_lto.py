"""Fig 16: fully-inlined (LTO) binaries vs CARS."""

from conftest import run_once

from repro.harness import experiments as ex
from repro.harness.tables import format_table


def test_fig16_lto(benchmark, names):
    rows = run_once(benchmark, ex.fig16_lto, names)
    print(format_table(rows, title="Fig 16 - LTO vs CARS"))
    geo = rows["geomean"]
    # Paper: LTO averages slightly ahead of CARS (28% vs 26%) since
    # inlining also unlocks inter-procedural optimization.
    assert geo["lto"] >= geo["cars"] * 0.95
    assert geo["lto"] <= geo["cars"] * 1.5  # but not wildly ahead
    # Recursion cannot be inlined: FIB keeps its calls, CARS still helps.
    if "FIB" in rows:
        assert rows["FIB"]["lto"] < rows["FIB"]["cars"]
