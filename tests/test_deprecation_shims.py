"""The harness deprecation shims: warn exactly once, forward byte-identically.

Three shims are under contract:

* ``repro.harness.runner`` — legacy module kept as a thin re-export of
  ``repro.harness._runner``; warns at import time.
* ``repro.harness.<name>`` for the deprecated runner entry points —
  lazy ``__getattr__`` that warns on first access, then caches.
* ``repro.harness.regenerate`` — warns when imported as a module (but
  stays silent when run as a script via ``python -m``).
"""

import importlib
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro.harness as harness
from repro.harness import _runner


def _reimport(module_name):
    sys.modules.pop(module_name, None)
    return importlib.import_module(module_name)


class TestRunnerModule:
    def test_import_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.harness.runner"):
            _reimport("repro.harness.runner")

    def test_forwards_identical_objects(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runner = _reimport("repro.harness.runner")
        for name in ("RunResult", "SWL_SWEEP", "geomean", "run_baseline",
                     "run_best_swl", "run_workload"):
            assert getattr(runner, name) is getattr(_runner, name), name


class TestLazyAttributes:
    @pytest.mark.parametrize(
        "name", ["run_workload", "run_best_swl", "run_baseline"])
    def test_warns_then_caches(self, name):
        # Reset the cache so the lazy path is exercised regardless of
        # test ordering.
        harness.__dict__.pop(name, None)
        with pytest.warns(DeprecationWarning, match=name):
            func = getattr(harness, name)
        assert func is getattr(_runner, name)
        # Second access hits the module globals: no warning.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again = getattr(harness, name)
        assert again is func
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            harness.definitely_not_a_runner

    def test_points_at_the_facade(self):
        harness.__dict__.pop("run_workload", None)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            harness.run_workload


class TestRegenerateModule:
    def test_import_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="repro.harness.regenerate"):
            _reimport("repro.harness.regenerate")

    def test_running_as_script_does_not_warn(self):
        # ``python -m`` sets __name__ to __main__: the shim must stay
        # quiet for the supported invocation.  --help exits before any
        # sweep work happens.
        repo_root = Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-m", "repro.harness.regenerate", "--help"],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "DeprecationWarning" not in proc.stderr
