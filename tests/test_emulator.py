"""Functional emulator tests: semantics, divergence, ABI, traces."""

import numpy as np
import pytest

from repro.emu import Emulator, EmulationError, GlobalMemory, TraceKind
from repro.frontend import builder as b


def run_kernel(prog, kernel="main", blocks=1, threads=32, params=(0,), gmem=None):
    module = b.compile(prog)
    gmem = gmem if gmem is not None else GlobalMemory()
    emulator = Emulator(module, gmem=gmem)
    trace = emulator.launch(kernel, blocks, threads, params)
    return trace, gmem


class TestArithmetic:
    def test_store_computed_values(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store(b.v("out") + b.v("i"), b.v("i") * 7 + 3),
        ])
        _, gmem = run_kernel(prog, params=(5000,))
        assert np.array_equal(gmem.read_array(5000, 32), np.arange(32) * 7 + 3)

    def test_special_registers(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out") + b.gid(),
                    b.tid() + b.bid() * 1000 + b.ntid() * 100000),
        ])
        _, gmem = run_kernel(prog, blocks=2, threads=64, params=(0,))
        got = gmem.read_array(0, 128)
        for block in range(2):
            for t in range(64):
                assert got[block * 64 + t] == t + block * 1000 + 64 * 100000

    def test_compare_materializes_as_zero_one(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.let("v", b.v("i") < 16),  # bare Cmp -> SEL of 1/0
            b.store(b.v("out") + b.v("i"), b.v("v")),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        got = gmem.read_array(0, 32)
        assert (got[:16] == 1).all()
        assert (got[16:] == 0).all()

    def test_shift_ops(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store(b.v("out") + b.v("i"), (b.v("i") << 2) | (b.v("i") >> 1)),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        i = np.arange(32)
        assert np.array_equal(gmem.read_array(0, 32), (i << 2) | (i >> 1))


class TestDivergence:
    def test_if_else_divergence(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.if_((b.v("i") & 1) == 0,
                  [b.let("r", b.v("i") * 10)],
                  [b.let("r", b.v("i") * 100)]),
            b.store(b.v("out") + b.v("i"), b.v("r")),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        got = gmem.read_array(0, 32)
        i = np.arange(32)
        expected = np.where(i % 2 == 0, i * 10, i * 100)
        assert np.array_equal(got, expected)

    def test_lane_dependent_loop_trip_counts(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.let("n", b.v("i") & 3),
            b.let("s", b.c(0)),
            b.while_(b.v("n") > 0, [
                b.let("s", b.v("s") + b.v("n")),
                b.let("n", b.v("n") - 1),
            ]),
            b.store(b.v("out") + b.v("i"), b.v("s")),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        i = np.arange(32)
        n = i & 3
        expected = n * (n + 1) // 2
        assert np.array_equal(gmem.read_array(0, 32), expected)

    def test_nested_divergence(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.let("r", b.c(0)),
            b.if_(b.v("i") < 16, [
                b.if_((b.v("i") & 1) == 0,
                      [b.let("r", b.c(1))],
                      [b.let("r", b.c(2))]),
            ], [
                b.let("r", b.c(3)),
            ]),
            b.store(b.v("out") + b.v("i"), b.v("r")),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        got = gmem.read_array(0, 32)
        i = np.arange(32)
        expected = np.where(i < 16, np.where(i % 2 == 0, 1, 2), 3)
        assert np.array_equal(got, expected)


class TestFunctionCalls:
    def test_callee_saved_registers_preserved(self):
        """The core ABI property CARS relies on: a callee's push/pop leaves
        the caller's live values intact."""
        prog = b.program()
        b.device(prog, "clobber", ["x"], [
            # Uses lots of callee-saved registers itself.
            b.let("a", b.v("x") * 3),
            b.let("c", b.call("leaf", b.v("a"))),
            b.ret(b.v("a") + b.v("c")),
        ], reg_pressure=12)
        b.device(prog, "leaf", ["x"], [b.ret(b.v("x") ^ 0x55)], reg_pressure=6)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.let("keep1", b.v("i") * 11),
            b.let("keep2", b.v("i") * 13),
            b.let("r", b.call("clobber", b.v("i"))),
            b.store(b.v("out") + b.v("i"),
                    b.v("keep1") + b.v("keep2") + b.v("r")),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        i = np.arange(32)
        a = i * 3
        r = a + (a ^ 0x55)
        assert np.array_equal(gmem.read_array(0, 32), i * 11 + i * 13 + r)

    def test_recursion(self):
        prog = b.program()
        b.device(prog, "fib", ["n"], [
            b.if_(b.v("n") < 2, [b.ret(b.v("n"))]),
            b.let("p", b.call("fib", b.v("n") - 1)),
            b.let("q", b.call("fib", b.v("n") - 2)),
            b.ret(b.v("p") + b.v("q")),
        ], reg_pressure=4)
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out") + b.gid(), b.call("fib", b.c(10))),
        ])
        trace, gmem = run_kernel(prog, params=(0,))
        assert (gmem.read_array(0, 32) == 55).all()
        assert trace.max_dynamic_call_depth() >= 9

    def test_divergent_recursion_depth(self):
        """Each lane recurses to its own depth (divergent early returns)."""
        prog = b.program()
        b.device(prog, "count", ["n"], [
            b.if_(b.v("n") < 1, [b.ret(b.c(0))]),
            b.let("r", b.call("count", b.v("n") - 1)),
            b.ret(b.v("r") + 1),
        ], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store(b.v("out") + b.v("i"), b.call("count", b.v("i") & 7)),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        assert np.array_equal(gmem.read_array(0, 32), np.arange(32) & 7)

    def test_call_under_divergence(self):
        """Paper case (1): a partially-active warp calls a function."""
        prog = b.program()
        b.device(prog, "double", ["x"], [b.ret(b.v("x") * 2)], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.let("r", b.v("i")),
            b.if_(b.v("i") < 8, [b.let("r", b.call("double", b.v("i")))]),
            b.store(b.v("out") + b.v("i"), b.v("r")),
        ])
        _, gmem = run_kernel(prog, params=(0,))
        i = np.arange(32)
        assert np.array_equal(gmem.read_array(0, 32), np.where(i < 8, i * 2, i))

    def test_indirect_call_dispatches_per_lane(self):
        """Paper case (3): one CALLI sends lanes to different functions."""
        prog = b.program()
        b.device(prog, "fa", ["x"], [b.ret(b.v("x") + 1000)], reg_pressure=2)
        b.device(prog, "fb", ["x"], [b.ret(b.v("x") + 2000)], reg_pressure=3)
        b.device(prog, "fc", ["x"], [b.ret(b.v("x") + 3000)], reg_pressure=4)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store(b.v("out") + b.v("i"),
                    b.icall(["fa", "fb", "fc"], b.v("i"), b.v("i"))),
        ])
        trace, gmem = run_kernel(prog, params=(0,))
        i = np.arange(32)
        expected = i + 1000 * (i % 3 + 1)
        assert np.array_equal(gmem.read_array(0, 32), expected)
        # Serialized dispatch: one CALL record per lane group.
        assert trace.count(TraceKind.CALL) == 3

    def test_uniform_indirect_call_is_single_dispatch(self):
        prog = b.program()
        b.device(prog, "fa", ["x"], [b.ret(b.v("x") + 1)], reg_pressure=2)
        b.device(prog, "fb", ["x"], [b.ret(b.v("x") + 2)], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out") + b.gid(),
                    b.icall(["fa", "fb"], b.c(1), b.gid())),
        ])
        trace, gmem = run_kernel(prog, params=(0,))
        assert np.array_equal(gmem.read_array(0, 32), np.arange(32) + 2)
        assert trace.count(TraceKind.CALL) == 1


class TestBarriersAndSharedMemory:
    def test_barrier_orders_shared_memory(self):
        """Warp 0 writes, all warps barrier, then everyone reads."""
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.tid()),
            b.if_(b.v("i") < 32, [b.store_shared(b.v("i"), b.v("i") * 5)]),
            b.barrier(),
            b.store(b.v("out") + b.gid(), b.load_shared(b.v("i") & 31)),
        ], shared_mem_bytes=256)
        _, gmem = run_kernel(prog, threads=64, params=(0,))
        got = gmem.read_array(0, 64)
        expected = (np.arange(64) & 31) * 5
        assert np.array_equal(got, expected)

    def test_barrier_ignores_exited_warps(self):
        """Volta+ semantics: exited threads do not participate in barriers,
        so a barrier skipped by a warp that ran to completion releases."""
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.tid()),
            b.if_(b.v("i") < 32, [b.barrier()]),
            b.store(b.v("out") + b.gid(), b.v("i")),
        ])
        module = b.compile(prog)
        emulator = Emulator(module)
        trace = emulator.launch("main", 1, 64, (0,))
        assert trace.count(TraceKind.BAR) == 1


class TestLocalMemory:
    def test_genuine_local_roundtrip(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store_local(3, b.v("i") * 9),
            b.store(b.v("out") + b.v("i"), b.load_local(3)),
        ])
        trace, gmem = run_kernel(prog, params=(0,))
        assert np.array_equal(gmem.read_array(0, 32), np.arange(32) * 9)
        assert trace.count(TraceKind.LOCAL_ST) == 1
        assert trace.count(TraceKind.LOCAL_LD) == 1


class TestGuards:
    def test_runaway_loop_detected(self):
        prog = b.program()
        b.kernel(prog, "main", ["out"], [
            b.let("x", b.c(1)),
            b.while_(b.v("x") > 0, [b.let("x", b.v("x") + 1)]),
            b.store(b.v("out"), b.v("x")),
        ])
        module = b.compile(prog)
        emulator = Emulator(module, max_warp_instructions=10_000)
        with pytest.raises(EmulationError):
            emulator.launch("main", 1, 32, (0,))

    def test_unbounded_recursion_detected(self):
        prog = b.program()
        b.device(prog, "forever", ["x"], [
            b.ret(b.call("forever", b.v("x") + 1)),
        ], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out"), b.call("forever", b.c(0))),
        ])
        module = b.compile(prog)
        emulator = Emulator(module, max_call_depth=64)
        with pytest.raises(EmulationError):
            emulator.launch("main", 1, 32, (0,))

    def test_bad_threads_per_block(self):
        prog = b.program()
        b.kernel(prog, "main", [], [b.ret()])
        emulator = Emulator(b.compile(prog))
        with pytest.raises(EmulationError):
            emulator.launch("main", 1, 33)
