"""Harness tests: runner, geomean, experiments plumbing, table formatting."""

import math

import pytest

from repro.config import volta
from repro.core.techniques import BASELINE, CARS, CARS_HIGH
from repro.frontend import builder as b
from repro.harness import experiments as ex
from repro.harness._runner import (
    RunResult,
    SWL_SWEEP,
    geomean,
    run_baseline,
    run_best_swl,
    run_workload,
)
from repro.harness.tables import format_series, format_table
from repro.workloads import KernelLaunch, Workload


def _tiny_workload(name="tiny"):
    prog = b.program()
    b.device(prog, "leaf", ["x"], [b.ret(b.v("x") * 2 + 1)], reg_pressure=4)
    b.kernel(prog, "main", ["out"], [
        b.let("i", b.gid()),
        b.store(b.v("out") + b.v("i"), b.call("leaf", b.v("i"))),
    ])
    return Workload(name=name, suite="t", program=prog,
                    launches=[KernelLaunch("main", 4, 64, (1 << 20,))])


class TestGeomean:
    def test_matches_math(self):
        values = [1.2, 0.9, 2.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert abs(geomean(values) - expected) < 1e-12

    def test_single_value(self):
        assert geomean([1.5]) == pytest.approx(1.5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([2.0, 0.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])


class TestRunner:
    def test_run_result_speedup(self):
        wl = _tiny_workload()
        base = run_baseline(wl)
        cars = run_workload(wl, CARS_HIGH)
        assert cars.speedup_over(base) == base.cycles / cars.cycles
        assert base.speedup_over(base) == 1.0

    def test_speedup_rejects_zero_cycles(self):
        wl = _tiny_workload()
        base = run_baseline(wl)
        import dataclasses

        hollow = dataclasses.replace(base, stats=type(base.stats)())
        assert hollow.cycles == 0
        with pytest.raises(ValueError):
            hollow.speedup_over(base)
        with pytest.raises(ValueError):
            base.speedup_over(hollow)

    def test_swl_sweep_is_papers(self):
        assert tuple(SWL_SWEEP) == (1, 2, 3, 4, 8, 16)

    def test_best_swl_is_min_cycles(self):
        wl = _tiny_workload("tiny-swl")
        best = run_best_swl(wl, sweep=(1, 16))
        one = run_workload(wl, __import__("repro.core.techniques",
                                          fromlist=["swl"]).swl(1))
        sixteen = run_workload(wl, __import__("repro.core.techniques",
                                              fromlist=["swl"]).swl(16))
        assert best.cycles == min(one.cycles, sixteen.cycles)
        assert best.technique == "best_swl"

    def test_multi_launch_stats_merge(self):
        wl = _tiny_workload("tiny-multi")
        wl.launches = wl.launches * 2
        double = run_baseline(wl)
        single = run_baseline(_tiny_workload("tiny-single"))
        assert double.stats.warp_instructions == 2 * single.stats.warp_instructions
        assert double.cycles > single.cycles

    def test_energy_accessors(self):
        wl = _tiny_workload("tiny-en")
        result = run_baseline(wl)
        assert result.energy() > 0
        assert result.energy_efficiency() > 0


class TestExperimentScope:
    def test_default_scope_is_full_suite(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        assert len(ex.workload_names()) == 22

    def test_smoke_scope(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "smoke")
        assert ex.workload_names() == ["SSSP", "MST", "FIB"]

    def test_csv_scope(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "PTA, FIB")
        assert ex.workload_names() == ["PTA", "FIB"]

    def test_unknown_scope_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "NOPE")
        with pytest.raises(KeyError):
            ex.workload_names()


class TestExperimentFunctions:
    """Cheap experiments run end-to-end on a single small workload."""

    def test_fig4_matches_paper(self):
        result = ex.fig4_callgraph_example()
        assert result == {
            "low_watermark": 30,
            "high_watermark": 56,
            "2xlow_watermark": 40,
        }

    def test_fig5_policy_demo(self):
        result = ex.fig5_policy_demo()
        assert result["remembered_best"] == 2
        assert result["next_launch_seeds"] == [2, 2, 2, 2]

    def test_fig6_wraparound(self):
        result = ex.fig6_wraparound_demo(capacity=20, frus=(8, 8, 8))
        assert result["spilled_regs"] == result["filled_regs"] == 8

    def test_fig1_trend(self):
        series = ex.fig1_trend()
        assert len(series) >= 5

    def test_fig8_on_one_workload(self):
        rows = ex.fig8_performance(["SSSP"])
        assert set(rows) == {"SSSP", "geomean"}
        assert rows["SSSP"]["cars"] > 0.9

    def test_cache_hits_across_figures(self):
        ex.fig8_performance(["SSSP"])
        executor = ex.get_executor()
        executed_before = executor.stats.executed
        ex.fig12_mpki(["SSSP"])  # reuses baseline + cars runs
        assert executor.stats.executed == executed_before
        assert executor.stats.memo_hits > 0

    def test_clear_cache(self):
        ex.fig8_performance(["SSSP"])
        assert ex.get_executor().memo_size > 0
        ex.clear_cache()
        assert ex.get_executor().memo_size == 0


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            {"a": {"x": 1.5, "y": "hi"}, "bb": {"x": 2.25, "y": "yo"}},
            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "workload" in lines[1]
        assert len(lines) == 5

    def test_format_table_missing_cells(self):
        text = format_table({"a": {"x": 1.0}, "b": {"y": 2.0}})
        assert "x" in text and "y" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table({})

    def test_format_series(self):
        text = format_series([(0, 1), (512, 3)], ("cycle", "value"))
        assert "cycle" in text and "512" in text
