"""Workload container semantics: compilation, tracing, setup hooks."""

import numpy as np

from repro.emu import GlobalMemory
from repro.frontend import builder as b
from repro.workloads import KernelLaunch, Workload


def _program():
    prog = b.program()
    b.kernel(prog, "main", ["data", "out"], [
        b.let("i", b.gid()),
        b.store(b.v("out") + b.v("i"), b.load(b.v("data") + b.v("i")) * 2),
    ])
    return prog


class TestWorkloadContainer:
    def test_setup_hook_initializes_memory(self):
        seen = []

        def setup(gmem: GlobalMemory) -> None:
            gmem.write_array(0, np.arange(64))
            seen.append(True)

        workload = Workload(
            name="w", suite="t", program=_program(),
            launches=[KernelLaunch("main", 1, 64, (0, 1000))],
            setup=setup,
        )
        workload.traces()
        assert seen == [True]

    def test_setup_runs_once_per_variant(self):
        calls = []
        workload = Workload(
            name="w2", suite="t", program=_program(),
            launches=[KernelLaunch("main", 1, 64, (0, 1000))],
            setup=lambda gmem: calls.append(1),
        )
        workload.traces()
        workload.traces()
        assert len(calls) == 1
        workload.traces(inlined=True)
        assert len(calls) == 2

    def test_module_variants_are_distinct(self):
        workload = Workload(
            name="w3", suite="t", program=_program(),
            launches=[KernelLaunch("main", 1, 64, (0, 1000))],
        )
        assert workload.module() is workload.module()
        assert workload.module() is not workload.module(inlined=True)

    def test_multi_launch_traces_in_order(self):
        prog = _program()
        b.kernel(prog, "second", ["data", "out"], [
            b.store(b.v("out") + b.gid(), b.c(1)),
        ])
        workload = Workload(
            name="w4", suite="t", program=prog,
            launches=[
                KernelLaunch("main", 1, 64, (0, 1000)),
                KernelLaunch("second", 2, 32, (0, 2000)),
            ],
        )
        traces = workload.traces()
        assert [t.kernel for t in traces] == ["main", "second"]
        assert traces[1].blocks[0].block_id == 0
        assert len(traces[1].blocks) == 2

    def test_measured_metrics_on_call_free(self):
        workload = Workload(
            name="w5", suite="t", program=_program(),
            launches=[KernelLaunch("main", 1, 64, (0, 1000))],
        )
        assert workload.measured_cpki() == 0.0
        assert workload.measured_call_depth() == 0
