"""Sweep-level crash recovery: kill -9 resume, pool degradation,
circuit breaker, and typed worker-failure handling.

The executor's recovery contract: every completed request persists in the
content-addressed store before the sweep moves on, so killing the process
mid-sweep loses at most the in-flight request; a re-run recomputes only
the remainder.  A broken process pool degrades to the serial path instead
of losing the sweep, and a request that keeps crashing is quarantined
instead of re-crashing every figure that wants it.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.frontend import builder as b
from repro.harness.executor import (
    Executor,
    ExecutorError,
    ExperimentRequest,
    ResultStore,
)
from repro.resilience import InvariantViolation, WorkerCrashError
from repro.workloads import KernelLaunch, Workload


def _tiny_workload(name, bias=1):
    prog = b.program()
    b.device(prog, "leaf", ["x"], [b.ret(b.v("x") * 2 + bias)],
             reg_pressure=4)
    b.kernel(prog, "main", ["out"], [
        b.let("i", b.gid()),
        b.store(b.v("out") + b.v("i"), b.call("leaf", b.v("i"))),
    ])
    return Workload(name=name, suite="t", program=prog,
                    launches=[KernelLaunch("main", 2, 32, (1 << 20,))])


#: Module-level so factories pickle by reference into pool workers.
_FACTORY: dict = {}

#: PID of the test (parent) process; pool workers fork and inherit this,
#: so a factory can tell whether it is running inside a worker.
_PARENT_PID = [0]


def registry_factory(name):
    return _FACTORY[name]


def crash_in_worker_factory(name):
    if os.getpid() != _PARENT_PID[0]:
        os._exit(3)  # die hard: simulates OOM-kill / segfault
    return _FACTORY[name]


def raise_in_worker_factory(name):
    if os.getpid() != _PARENT_PID[0]:
        # A typed simulator failure: deterministic, so the pool path
        # must surface it instead of replaying it serially.
        raise InvariantViolation("worker-side explosion")
    return _FACTORY[name]


def always_invariant_factory(name):
    raise InvariantViolation("model bookkeeping broke")


def always_value_error_factory(name):
    raise ValueError("no such workload today")


@pytest.fixture(autouse=True)
def _fresh_registry():
    _FACTORY.clear()
    for i, name in enumerate(("wl_a", "wl_b", "wl_c")):
        _FACTORY[name] = _tiny_workload(name, bias=i + 1)
    _PARENT_PID[0] = os.getpid()
    yield
    _FACTORY.clear()


def _requests():
    return [ExperimentRequest(name, "baseline") for name in _FACTORY]


def _executor(tmp_path, jobs=1, factory=registry_factory, **kwargs):
    kwargs.setdefault("backoff_base", 0.0)
    return Executor(jobs=jobs, store=ResultStore(str(tmp_path / "store")),
                    workload_factory=factory, **kwargs)


# Inlined workloads must match _tiny_workload above byte-for-byte: the
# store key hashes the compiled module, and the resume assertion depends
# on the child's entries hitting in the parent's follow-up sweep.
_KILL_SCRIPT = textwrap.dedent("""\
    import os, signal, sys
    store_dir = sys.argv[1]

    from repro.frontend import builder as b
    from repro.harness.executor import (
        Executor, ExperimentRequest, ResultStore)
    from repro.workloads import KernelLaunch, Workload

    def make(name, bias):
        prog = b.program()
        b.device(prog, "leaf", ["x"], [b.ret(b.v("x") * 2 + bias)],
                 reg_pressure=4)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store(b.v("out") + b.v("i"), b.call("leaf", b.v("i"))),
        ])
        return Workload(name=name, suite="t", program=prog,
                        launches=[KernelLaunch("main", 2, 32, (1 << 20,))])

    registry = {name: make(name, i + 1)
                for i, name in enumerate(("wl_a", "wl_b", "wl_c"))}

    def factory(name):
        return registry[name]

    def progress(done, total, request, source):
        if source == "run":
            # First simulated request just committed to the store:
            # die the hardest way possible, mid-sweep.
            os.kill(os.getpid(), signal.SIGKILL)

    executor = Executor(store=ResultStore(store_dir),
                        workload_factory=factory, progress=progress)
    executor.run_many(
        [ExperimentRequest(name, "baseline") for name in registry])
    raise SystemExit("unreachable: the sweep should have been killed")
""")


class TestKillAndResume:
    def test_sigkill_mid_sweep_resumes_from_store(self, tmp_path):
        """kill -9 after the first commit; the re-run recomputes the rest."""
        store_dir = tmp_path / "store"
        script = tmp_path / "killed_sweep.py"
        script.write_text(_KILL_SCRIPT)
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        proc = subprocess.run(
            [sys.executable, str(script), str(store_dir)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        store = ResultStore(str(store_dir))
        assert len(store.entries()) == 1  # exactly the committed run

        executor = _executor(tmp_path)
        results = executor.run_many(_requests())
        assert len(results) == 3
        # One request came from the dead process's store entry; only the
        # two lost ones were simulated again.
        assert executor.stats.store_hits == 1
        assert executor.stats.executed == 2

    def test_store_bytes_identical_after_resume(self, tmp_path):
        """A resumed sweep's store is indistinguishable from a clean one."""
        clean = _executor(tmp_path)
        clean.run_many(_requests())
        clean_bytes = {p.name: p.read_bytes()
                       for p in clean.store.entries()}
        other = Executor(store=ResultStore(str(tmp_path / "other")),
                         workload_factory=registry_factory)
        other.run_many(_requests())
        assert clean_bytes == {p.name: p.read_bytes()
                               for p in other.store.entries()}


class TestPoolDegradation:
    def test_broken_pool_falls_back_to_serial(self, tmp_path):
        executor = _executor(tmp_path, jobs=2,
                             factory=crash_in_worker_factory)
        results = executor.run_many(_requests())
        # Every result was still produced (serially, in-process).
        assert len(results) == 3
        assert executor.stats.pool_breaks >= 1
        assert executor.stats.executed == 3
        assert any(entry["stage"] == "pool"
                   for entry in executor.stats.crash_log)
        # The executor stays serial afterwards: a fresh batch completes
        # without touching the (gone) pool.
        _FACTORY["wl_d"] = _tiny_workload("wl_d", bias=9)
        more = executor.run_many(
            [ExperimentRequest("wl_d", "baseline")])
        assert len(more) == 1

    def test_worker_exception_preserves_remote_traceback(self, tmp_path):
        executor = _executor(tmp_path, jobs=2, retries=1,
                             factory=raise_in_worker_factory)
        with pytest.raises(ExecutorError) as info:
            executor.run_many(_requests())
        assert isinstance(info.value, WorkerCrashError)
        assert info.value.worker_traceback
        pool_crashes = [entry for entry in executor.stats.crash_log
                        if entry["stage"] == "pool"]
        assert pool_crashes
        assert "worker-side explosion" in pool_crashes[0]["traceback"]


class TestTypedLocalFailures:
    def test_simulation_error_skips_pointless_retries(self, tmp_path):
        executor = _executor(tmp_path, retries=3,
                             factory=always_invariant_factory)
        with pytest.raises(ExecutorError) as info:
            executor.run_one(ExperimentRequest("wl_a", "baseline"))
        # Deterministic model failure: exactly one attempt, no retries.
        assert executor.stats.retries == 0
        assert len(executor.stats.crash_log) == 1
        assert "InvariantViolation" in info.value.worker_traceback

    def test_environmental_error_retries_then_reports(self, tmp_path):
        executor = _executor(tmp_path, retries=3,
                             factory=always_value_error_factory)
        with pytest.raises(ExecutorError) as info:
            executor.run_one(ExperimentRequest("wl_a", "baseline"))
        assert executor.stats.retries == 2  # 3 attempts = 2 retries
        assert len(executor.stats.crash_log) == 3
        assert "no such workload today" in info.value.worker_traceback
        assert info.value.__cause__ is not None


class TestCircuitBreaker:
    def test_quarantine_after_threshold(self, tmp_path):
        executor = _executor(tmp_path, retries=1, breaker_threshold=2,
                             factory=always_value_error_factory)
        request = ExperimentRequest("wl_a", "baseline")
        for _ in range(2):
            with pytest.raises(ExecutorError):
                executor.run_one(request)
        assert executor.stats.quarantined == 1
        crashes_before = len(executor.stats.crash_log)
        with pytest.raises(ExecutorError, match="quarantined"):
            executor.run_one(request)
        # The breaker rejected without re-running (no new crash entries).
        assert len(executor.stats.crash_log) == crashes_before

    def test_success_resets_the_streak(self, tmp_path):
        flaky_state = {"fail": True}

        def flaky_factory(name):
            if flaky_state["fail"]:
                raise ValueError("transient")
            return _FACTORY[name]

        executor = _executor(tmp_path, retries=1, breaker_threshold=2,
                             factory=flaky_factory)
        request = ExperimentRequest("wl_a", "baseline")
        with pytest.raises(ExecutorError):
            executor.run_one(request)
        flaky_state["fail"] = False
        executor.run_one(request)  # succeeds, resets the streak
        flaky_state["fail"] = True
        executor.clear_memo()
        for entry in executor.store.entries():
            entry.unlink()  # force a real re-run, not a store hit
        with pytest.raises(ExecutorError):
            executor.run_one(request)
        # One failure after a success: streak restarted, not quarantined.
        assert executor.stats.quarantined == 0

    def test_stats_round_trip(self, tmp_path):
        executor = _executor(tmp_path, retries=1,
                             factory=always_value_error_factory)
        with pytest.raises(ExecutorError):
            executor.run_one(ExperimentRequest("wl_a", "baseline"))
        data = executor.stats.as_dict()
        assert data["failures"] == 1
        assert isinstance(data["crash_log"], list)
        executor.stats.reset()
        assert executor.stats.failures == 0
        assert executor.stats.crash_log == []
