"""Fast-forward (event-driven) main-loop edge cases.

The event loop must be *timing-invisible*: skipping an idle stretch can
never change a simulated number.  These tests pin the tricky cases — wake
ties between a memory completion and a barrier release, ``max_cycles``
budgets landing inside a skipped stretch, and CARS trap fills waking a
warp mid-stretch — by running each scenario twice, once with fast-forward
active and once forced to single-step every idle cycle (the legacy
per-cycle loop), and requiring byte-identical :meth:`SimStats.to_dict`
payloads.

The battery is three-way: every scenario also runs under the vectorized
(struct-of-arrays) backend, so its array-op ready scan and full-buffer
next-event reduction are held to the same per-cycle ground truth as the
event core's bounds.
"""

import dataclasses

import pytest

from repro.callgraph import analyze_kernel, build_call_graph
from repro.config import volta
from repro.core import GPU, SimulationError, VectorizedGPU
from repro.core.techniques import BASELINE, CARS, CARS_LOW, Technique
from repro.frontend import builder as b
from repro.metrics.counters import SimStats
from repro.workloads import KernelLaunch, Workload


class _SingleStepGPU(GPU):
    """A GPU whose idle stretches advance one cycle at a time.

    Collapsing every skip to ``cycle + 1`` reproduces the legacy
    per-cycle loop exactly (deadlock detection included), so any
    divergence from the fast-forwarding :class:`GPU` is a bug in the
    next-event bounds, not in this harness.
    """

    __slots__ = ()

    def _next_event_after(self, cycle):
        bound = GPU._next_event_after(self, cycle)
        if bound is None:
            return None
        return cycle + 1


def _make_workload(body_fn=None, threads=64, blocks=4, shared=0,
                   pressure=4, depth=1, name="w"):
    prog = b.program()
    for level in range(1, depth):
        b.device(prog, f"f{level}", ["x"],
                 [b.ret(b.call(f"f{level + 1}", b.v("x") + level))],
                 reg_pressure=pressure)
    b.device(prog, f"f{depth}", ["x"], [b.ret(b.v("x") * 2 + 1)],
             reg_pressure=pressure)
    body = body_fn() if body_fn else [
        b.let("i", b.gid()),
        b.let("r", b.call("f1", b.v("i"))),
        b.store(b.v("out") + b.v("i"), b.v("r")),
    ]
    b.kernel(prog, "main", ["out"], body, shared_mem_bytes=shared)
    return Workload(name=name, suite="t", program=prog,
                    launches=[KernelLaunch("main", blocks, threads, (1 << 20,))])


def _run(workload, technique, config=None, gpu_cls=GPU, max_cycles=None):
    cfg = technique.adjust_config(config or volta())
    trace = workload.traces(inlined=technique.use_inlined)[0]
    stats = SimStats()
    analysis = None
    if technique.abi == "cars":
        analysis = analyze_kernel(build_call_graph(workload.module()), "main")
    ctx = technique.make_context(trace, cfg, stats, analysis)
    gpu = gpu_cls(cfg, ctx, stats)
    if max_cycles is None:
        gpu.run(trace)
    else:
        gpu.run(trace, max_cycles=max_cycles)
    return stats


def _assert_identical(workload, technique, config=None):
    fast = _run(workload, technique, config)
    stepped = _run(workload, technique, config, gpu_cls=_SingleStepGPU)
    vectorized = _run(workload, technique, config, gpu_cls=VectorizedGPU)
    assert fast.to_dict() == stepped.to_dict()
    assert vectorized.to_dict() == stepped.to_dict()
    return fast


class TestFastForwardDifferential:
    def test_plain_calls(self):
        _assert_identical(_make_workload(), BASELINE)

    def test_memory_bound_single_warp(self):
        # One warp per SM maximizes idle stretches: every DRAM round trip
        # is a couple hundred skippable cycles.
        wl = _make_workload(
            body_fn=lambda: [
                b.let("i", b.gid()),
                b.let("a", b.load(b.v("out") + (b.v("i") * 131 & 8191))),
                b.let("c", b.load(b.v("out") + (b.v("a") * 17 & 8191))),
                b.store(b.v("out") + b.v("i"), b.v("c")),
            ],
            threads=32, blocks=2,
        )
        stats = _assert_identical(wl, BASELINE)
        assert stats.idle_cycles > stats.issue_cycles  # genuinely idle-heavy

    def test_wake_tie_memory_vs_barrier(self):
        # Half the warps sit at a barrier while the others wait on loads;
        # barrier releases and load completions land on the same cycles,
        # and the tie must resolve identically with and without skipping.
        wl = _make_workload(
            body_fn=lambda: [
                b.let("i", b.tid()),
                b.let("a", b.load(b.v("out") + (b.gid() * 257 & 8191))),
                b.store_shared(b.v("i"), b.v("a")),
                b.barrier(),
                b.let("c", b.load_shared(b.v("i") ^ 1)),
                b.barrier(),
                b.store(b.v("out") + b.gid(), b.v("c") + b.v("a")),
            ],
            threads=128, blocks=4, shared=2048,
        )
        stats = _assert_identical(wl, BASELINE)
        assert stats.issued_by_kind["BAR"] > 0

    def test_cars_trap_fill_wake(self):
        # Low-watermark CARS on deep calls raises software traps whose
        # spill/fill memory traffic wakes warps mid-stretch; the blocking
        # trap fill is the nastiest wake source the loop has.
        wl = _make_workload(depth=4, pressure=8, blocks=2)
        stats = _assert_identical(wl, CARS_LOW)
        assert stats.traps > 0

    def test_cars_dynamic_policy(self):
        cfg = dataclasses.replace(volta(), registers_per_sm=256)
        wl = _make_workload(pressure=30, blocks=8)
        _assert_identical(wl, CARS, cfg)


class TestMaxCyclesMidSkip:
    def _memory_bound(self):
        return _make_workload(
            body_fn=lambda: [
                b.let("i", b.gid()),
                b.let("a", b.load(b.v("out") + (b.v("i") * 131 & 8191))),
                b.store(b.v("out") + b.v("i"), b.v("a")),
            ],
            threads=32, blocks=1,
        )

    def test_budget_inside_skipped_stretch_raises(self):
        # The first DRAM round trip parks the only warp for ~hundreds of
        # cycles; a budget landing inside that stretch must still trip.
        wl = self._memory_bound()
        stats = _run(wl, BASELINE)
        assert stats.idle_cycles > 100 and stats.cycles > 40
        with pytest.raises(SimulationError, match="exceeded 40 cycles"):
            _run(wl, BASELINE, max_cycles=40)

    def test_budget_agrees_with_single_step(self):
        # For every sampled budget, fast-forward and single-step must
        # agree on completes-vs-raises (and on the stats when completing).
        wl = self._memory_bound()
        total = _run(wl, BASELINE).cycles
        for budget in (1, total // 4, total // 2, total - 2, total, total + 1):
            outcomes = []
            for gpu_cls in (GPU, _SingleStepGPU, VectorizedGPU):
                try:
                    stats = _run(wl, BASELINE, gpu_cls=gpu_cls,
                                 max_cycles=budget)
                    outcomes.append(("done", stats.to_dict()))
                except SimulationError:
                    outcomes.append(("raised", None))
            assert outcomes[0] == outcomes[1] == outcomes[2], \
                f"budget={budget}"
