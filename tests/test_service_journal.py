"""The crash-safe job journal (``repro.service.journal``).

The WAL contract (docs/architecture.md §16): appends are durable when
they return, rotation compacts via temp-file + rename, and recovery
replays highest-seq-wins while tolerating exactly the torn final line a
``kill -9`` mid-append can leave.
"""

import json

import pytest

from repro.harness.executor import ExperimentRequest
from repro.service.jobs import JobRecord, JobState
from repro.service.journal import JobJournal


def _record(job_id, state=JobState.SUBMITTED, attempts=0):
    record = JobRecord(
        job_id=job_id,
        tenant="t",
        request=ExperimentRequest("FIB", "baseline"),
        submitted_at=1.0,
        attempts=attempts,
    )
    if state is not JobState.SUBMITTED:
        object.__setattr__(record, "state", state)
    return record


class TestAppendRecover:
    def test_round_trips_records(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append(_record("a"))
        journal.append(_record("b"))
        journal.close()

        jobs, report = JobJournal(tmp_path / "j").recover()
        assert set(jobs) == {"a", "b"}
        assert report == {
            "segments": 1, "records": 2, "torn_tail": 0, "corrupt": 0,
        }
        restored = jobs["a"]
        assert restored.tenant == "t"
        assert restored.request.workload == "FIB"
        assert restored.state is JobState.SUBMITTED

    def test_highest_seq_wins(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append(_record("a"))
        journal.append(_record("a", JobState.RUNNING, attempts=1))
        journal.append(_record("a", JobState.DONE, attempts=1))
        journal.close()

        jobs, _ = JobJournal(tmp_path / "j").recover()
        assert jobs["a"].state is JobState.DONE

    def test_sequence_continues_after_recovery(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        first = journal.append(_record("a"))
        journal.close()

        reopened = JobJournal(tmp_path / "j")
        reopened.recover()
        assert reopened.append(_record("b")) == first + 1

    def test_empty_directory_recovers_empty(self, tmp_path):
        jobs, report = JobJournal(tmp_path / "missing").recover()
        assert jobs == {}
        assert report["segments"] == 0


class TestTornAndCorrupt:
    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append(_record("a"))
        journal.append(_record("b"))
        journal.close()
        segment = journal.segments()[-1]
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99, "job": {"truncated')  # kill -9 mid-append

        jobs, report = JobJournal(tmp_path / "j").recover()
        assert set(jobs) == {"a", "b"}
        assert report["torn_tail"] == 1
        assert report["corrupt"] == 0

    def test_mid_segment_corruption_is_counted_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append(_record("a"))
        journal.append(_record("b"))
        journal.close()
        segment = journal.segments()[-1]
        lines = segment.read_text().splitlines()
        lines[0] = "garbage not json"
        segment.write_text("\n".join(lines) + "\n")

        jobs, report = JobJournal(tmp_path / "j").recover()
        assert set(jobs) == {"b"}
        assert report["corrupt"] == 1
        assert report["torn_tail"] == 0

    def test_recovered_journal_keeps_accepting_appends(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append(_record("a"))
        journal.close()
        segment = journal.segments()[-1]
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write("{torn")

        reopened = JobJournal(tmp_path / "j")
        reopened.recover()
        reopened.append(_record("b"))
        reopened.close()
        jobs, report = JobJournal(tmp_path / "j").recover()
        assert set(jobs) == {"a", "b"}


class TestRotation:
    def test_rotation_compacts_to_latest_records(self, tmp_path):
        journal = JobJournal(tmp_path / "j", rotate_after=4)
        for _ in range(3):
            journal.append(_record("a"))
        journal.append(_record("a", JobState.DONE, attempts=1))  # triggers
        journal.close()

        segments = journal.segments()
        assert len(segments) == 1  # older segments pruned
        lines = segments[0].read_text().splitlines()
        assert len(lines) == 1  # one job -> one compacted line
        jobs, report = JobJournal(tmp_path / "j").recover()
        assert jobs["a"].state is JobState.DONE

    def test_rotation_uses_rename_not_in_place_write(self, tmp_path):
        journal = JobJournal(tmp_path / "j", rotate_after=1024)
        journal.append(_record("a"))
        path = journal.rotate()
        journal.close()
        assert path.name != "journal-000001.wal"  # fresh segment, not reuse
        assert not list((tmp_path / "j").glob("*.tmp"))

    def test_terminal_jobs_survive_compaction(self, tmp_path):
        # Clients may still poll a done job; rotation must not drop it.
        journal = JobJournal(tmp_path / "j")
        journal.append(_record("done-job", JobState.DONE, attempts=1))
        journal.append(_record("live-job"))
        journal.rotate()
        journal.close()
        jobs, _ = JobJournal(tmp_path / "j").recover()
        assert set(jobs) == {"done-job", "live-job"}

    def test_rotate_after_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(tmp_path / "j", rotate_after=0)


class TestRecordModel:
    def test_transitions_are_validated(self):
        record = _record("a")
        running = record.advance(JobState.RUNNING, attempts=1)
        with pytest.raises(ValueError):
            running.advance(JobState.SUBMITTED)
        done = running.advance(JobState.DONE)
        assert done.terminal

    def test_recovered_requeues_any_live_state(self):
        running = _record("a").advance(JobState.RUNNING, attempts=1)
        assert running.recovered().state is JobState.SUBMITTED
        # attempts survive: the retry budget spans restarts.
        assert running.recovered().attempts == 1

    def test_to_dict_round_trips_through_json(self):
        record = _record("a").advance(JobState.RUNNING, attempts=2)
        clone = JobRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record
