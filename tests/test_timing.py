"""Timing-model integration tests: GPU + SM + memory end to end."""

import dataclasses

import pytest

from repro.callgraph import analyze_kernel, build_call_graph
from repro.config import volta
from repro.core import GPU, SimulationError
from repro.core.techniques import BASELINE, CARS, CARS_HIGH, swl
from repro.frontend import builder as b
from repro.metrics.counters import SimStats
from repro.workloads import KernelLaunch, Workload


def _make_workload(body_fn=None, threads=64, blocks=4, shared=0,
                   pressure=4, name="w"):
    prog = b.program()
    b.device(prog, "leaf", ["x"], [b.ret(b.v("x") * 2 + 1)],
             reg_pressure=pressure)
    body = body_fn() if body_fn else [
        b.let("i", b.gid()),
        b.let("r", b.call("leaf", b.v("i"))),
        b.store(b.v("out") + b.v("i"), b.v("r")),
    ]
    b.kernel(prog, "main", ["out"], body, shared_mem_bytes=shared)
    return Workload(name=name, suite="t", program=prog,
                    launches=[KernelLaunch("main", blocks, threads, (1 << 20,))])


def _run(workload, technique, config=None):
    cfg = technique.adjust_config(config or volta())
    trace = workload.traces(inlined=technique.use_inlined)[0]
    stats = SimStats()
    analysis = None
    if technique.abi == "cars":
        analysis = analyze_kernel(build_call_graph(workload.module()), "main")
    ctx = technique.make_context(trace, cfg, stats, analysis)
    GPU(cfg, ctx, stats).run(trace)
    return stats


class TestBasicExecution:
    def test_all_instructions_issue(self):
        wl = _make_workload()
        stats = _run(wl, BASELINE)
        assert stats.warp_instructions == wl.traces()[0].dynamic_instructions
        assert stats.cycles > 0

    def test_blocks_complete_and_are_recorded(self):
        wl = _make_workload(blocks=6)
        stats = _run(wl, BASELINE)
        assert len(stats.blocks) == 6
        assert all(blk.runtime > 0 for blk in stats.blocks)

    def test_deterministic(self):
        wl = _make_workload()
        assert _run(wl, BASELINE).cycles == _run(wl, BASELINE).cycles

    def test_more_blocks_take_longer(self):
        small = _run(_make_workload(blocks=2, name="a"), BASELINE)
        big = _run(_make_workload(blocks=32, name="b"), BASELINE)
        assert big.cycles > small.cycles

    def test_max_cycle_guard(self):
        wl = _make_workload()
        cfg = volta()
        trace = wl.traces()[0]
        stats = SimStats()
        ctx = BASELINE.make_context(trace, cfg, stats)
        with pytest.raises(SimulationError):
            GPU(cfg, ctx, stats).run(trace, max_cycles=3)


class TestBarriers:
    def _barrier_body(self):
        return [
            b.let("i", b.tid()),
            b.store_shared(b.v("i"), b.v("i") * 2),
            b.barrier(),
            b.store(b.v("out") + b.gid(), b.load_shared(b.v("i") ^ 1)),
        ]

    def test_barrier_kernel_completes(self):
        wl = _make_workload(body_fn=self._barrier_body, threads=128, shared=1024)
        stats = _run(wl, BASELINE)
        assert stats.cycles > 0
        assert stats.issued_by_kind["BAR"] == 4 * 4  # 4 warps x 4 blocks


class TestSWL:
    def test_limit_reduces_or_equals_parallel_issue(self):
        wl = _make_workload(blocks=8)
        unlimited = _run(wl, BASELINE)
        limited = _run(wl, swl(1))
        assert limited.cycles >= unlimited.cycles * 0.9  # usually slower
        assert limited.warp_instructions == unlimited.warp_instructions

    def test_swl_with_barriers_makes_progress(self):
        wl = _make_workload(
            body_fn=lambda: [
                b.let("i", b.tid()),
                b.barrier(),
                b.store(b.v("out") + b.gid(), b.v("i")),
            ],
            threads=128,
        )
        stats = _run(wl, swl(1))
        assert stats.cycles > 0  # no deadlock


class TestCarsTiming:
    def test_cars_removes_spill_traffic(self):
        wl = _make_workload()
        base = _run(wl, BASELINE)
        cars = _run(wl, CARS_HIGH)
        assert base.l1_accesses["spill"] > 0
        assert cars.l1_accesses["spill"] == 0
        assert cars.issued_by_kind["STACK"] > 0

    def test_cars_stalls_warps_when_stack_space_tight(self):
        # Large per-warp stacks + a small register file force the
        # stalled-warp list into action.
        wl = _make_workload(pressure=40, blocks=8)
        cfg = dataclasses.replace(volta(), registers_per_sm=256)
        stats = _run(wl, CARS_HIGH, cfg)
        assert stats.cycles > 0  # completes despite stalls
        assert len(stats.blocks) == 8

    def test_context_switch_on_barrier_deadlock(self):
        def body():
            return [
                b.let("i", b.tid()),
                b.let("r", b.call("leaf", b.v("i"))),
                b.barrier(),
                b.store(b.v("out") + b.gid(), b.v("r")),
            ]

        wl = _make_workload(body_fn=body, threads=256, blocks=4, pressure=30)
        # High-watermark wants 48 regs/warp here; 320 registers hold only
        # 6 of the 8 warps, so the barrier deadlocks without a switch.
        cfg = dataclasses.replace(volta(), registers_per_sm=320,
                                  max_warps_per_sm=8, num_sms=2)
        stats = _run(wl, CARS_HIGH, cfg)
        assert stats.context_switches > 0
        assert stats.context_switch_regs > 0
        assert len(stats.blocks) == 4

    def test_dynamic_policy_records_allocations(self):
        wl = _make_workload(pressure=30, blocks=16)
        cfg = dataclasses.replace(volta(), registers_per_sm=256)
        stats = _run(wl, CARS, cfg)
        assert stats.allocation_log  # levels were chosen per block
        levels = {lvl for _, lvl, _ in stats.allocation_log}
        assert len(levels) >= 1


class TestStatsSanity:
    def test_mix_counts_cover_micro_ops(self):
        wl = _make_workload()
        stats = _run(wl, BASELINE)
        assert sum(stats.issued_by_kind.values()) == stats.micro_ops

    def test_timeline_populated(self):
        wl = _make_workload()
        stats = _run(wl, BASELINE)
        assert stats.timeline
        series = stats.global_bandwidth_timeline()
        assert all(g >= 0 and l >= 0 for _, g, l in series)

    def test_ipc_bounded_by_issue_width(self):
        wl = _make_workload(blocks=16)
        stats = _run(wl, BASELINE)
        cfg = volta()
        max_ipc = cfg.num_sms * cfg.schedulers_per_sm
        # µops per cycle can't beat total issue slots.
        assert stats.micro_ops / stats.cycles <= max_ipc + 1e-9
