"""Workload suite tests: Table I fidelity and generator correctness."""

import pytest

from repro.emu.trace import TraceKind
from repro.frontend.inliner import inline_program
from repro.isa.validator import validate_module
from repro.workloads import (
    SMOKE_NAMES,
    WORKLOAD_NAMES,
    SynthKernel,
    build_workload,
    growth_factor,
    make_workload,
)
from repro.workloads.fig1_data import FIG1_SURVEY, series


class TestSuiteDefinition:
    def test_has_22_workloads(self):
        assert len(WORKLOAD_NAMES) == 22

    def test_table1_names_present(self):
        for expected in ("PTA", "MST", "FIB", "LULESH", "SVR", "Bert_AtScore"):
            assert expected in WORKLOAD_NAMES

    def test_all_workloads_compile_and_validate(self):
        for name in WORKLOAD_NAMES:
            module = make_workload(name).module()
            validate_module(module)

    def test_inlined_variants_compile(self):
        for name in SMOKE_NAMES:
            module = make_workload(name).module(inlined=True)
            validate_module(module)

    def test_bottleneck_classes_assigned(self):
        classes = {make_workload(n).bottleneck for n in WORKLOAD_NAMES}
        assert "bandwidth" in classes
        assert "capacity" in classes
        assert "capacity+contention" in classes
        assert "low-occupancy" in classes

    def test_workloads_cached(self):
        assert make_workload("SSSP") is make_workload("SSSP")

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            make_workload("NOPE")


@pytest.mark.parametrize("name", SMOKE_NAMES)
class TestTraceFidelity:
    def test_call_depth_matches_table1(self, name):
        wl = make_workload(name)
        assert wl.measured_call_depth() == wl.paper_call_depth

    def test_cpki_within_2x_of_table1(self, name):
        wl = make_workload(name)
        measured = wl.measured_cpki()
        assert wl.paper_cpki / 2 <= measured <= wl.paper_cpki * 2

    def test_traces_are_cached(self, name):
        wl = make_workload(name)
        assert wl.traces() is wl.traces()


class TestPtaMultiKernel:
    def test_pta_has_multiple_kernels(self):
        pta = make_workload("PTA")
        assert len(pta.launches) >= 6

    def test_pta_k7_is_call_free(self):
        pta = make_workload("PTA")
        traces = {t.kernel: t for t in pta.traces()}
        assert traces["K7"].count(TraceKind.CALL) == 0

    def test_pta_k1_has_barriers(self):
        pta = make_workload("PTA")
        traces = {t.kernel: t for t in pta.traces()}
        assert traces["K1"].count(TraceKind.BAR) > 0


class TestSynthKnobs:
    def test_recursion_knob(self):
        wl = build_workload("r", "t", [SynthKernel(
            name="k", recursion_depth=5, iters=1, grid_blocks=1,
            loads_per_iter=1, stores_per_iter=0)])
        assert wl.measured_call_depth() == 5

    def test_depth_knob(self):
        for depth in (1, 4, 7):
            wl = build_workload(f"d{depth}", "t", [SynthKernel(
                name="k", depth=depth, iters=1, grid_blocks=1)])
            assert wl.measured_call_depth() == depth

    def test_call_free_kernel(self):
        wl = build_workload("cf", "t", [SynthKernel(
            name="k", calls_per_iter=0, iters=2, grid_blocks=1)])
        assert wl.traces()[0].count(TraceKind.CALL) == 0
        assert wl.measured_cpki() == 0.0

    def test_indirect_knob_produces_calli_dispatch(self):
        wl = build_workload("ind", "t", [SynthKernel(
            name="k", depth=2, use_indirect=True, iters=2, grid_blocks=1)])
        module = wl.module()
        from repro.isa import Opcode
        kernel = module.kernel("k")
        assert any(i.op is Opcode.CALLI for i in kernel.instructions)

    def test_local_array_knob(self):
        wl = build_workload("loc", "t", [SynthKernel(
            name="k", local_array=True, iters=2, grid_blocks=1)])
        trace = wl.traces()[0]
        assert trace.count(TraceKind.LOCAL_LD) > 0
        assert trace.count(TraceKind.LOCAL_ST) > 0

    def test_barrier_knob(self):
        wl = build_workload("bar", "t", [SynthKernel(
            name="k", barrier_iters=1, iters=3, grid_blocks=1)])
        warps = 64 // 32  # default threads_per_block
        assert wl.traces()[0].count(TraceKind.BAR) == 3 * warps

    def test_shared_mem_knob(self):
        wl = build_workload("sm", "t", [SynthKernel(
            name="k", shared_mem_bytes=1024, iters=2, grid_blocks=1)])
        assert wl.traces()[0].count(TraceKind.SMEM) > 0
        assert wl.module().kernel("k").shared_mem_bytes == 1024

    def test_bad_region_rejected(self):
        with pytest.raises(ValueError):
            build_workload("bad", "t", [SynthKernel(
                name="k", region_words=1000)]).traces()

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            build_workload("bad2", "t", [SynthKernel(
                name="k", pattern="wat")]).traces()

    def test_cpki_scales_with_alu_density(self):
        lean = build_workload("lean", "t", [SynthKernel(
            name="k", alu_per_level=0, iters=2, grid_blocks=1)])
        fat = build_workload("fat", "t", [SynthKernel(
            name="k", alu_per_level=30, iters=2, grid_blocks=1)])
        assert lean.measured_cpki() > fat.measured_cpki()

    def test_lto_variant_loses_calls(self):
        wl = build_workload("lt", "t", [SynthKernel(
            name="k", depth=3, iters=2, grid_blocks=1)])
        assert wl.traces(inlined=True)[0].count(TraceKind.CALL) == 0


class TestFig1Data:
    def test_growth_is_orders_of_magnitude(self):
        assert growth_factor() > 100

    def test_quoted_paper_numbers(self):
        by_name = {s.name: s for s in FIG1_SURVEY}
        assert by_name["Cutlass"].device_functions == 3760
        assert by_name["Cutlass"].code_files == 3129
        assert by_name["Rapids"].device_functions == 27469
        assert by_name["Rapids"].code_files == 6348

    def test_series_sorted_by_year(self):
        years = [y for y, _, _ in series()]
        assert years == sorted(years)

    def test_trend_is_monotonic_at_endpoints(self):
        data = series()
        assert data[-1][1] > data[0][1]  # SLOC grows
        assert data[-1][2] > data[0][2]  # device functions grow
