"""Unit tests for the observability layer (`repro.obs`) and its CLI."""

import json

import pytest

from repro.cli import main
from repro.core.techniques import BASELINE, CARS
from repro.harness._runner import run_workload
from repro.metrics.counters import SimStats
from repro.metrics.report import cpi_stack_report
from repro.obs import (
    BUCKET_EMPTY,
    BUCKET_ISSUED,
    BUCKET_L1_PORT,
    CPI_BUCKETS,
    DEFAULT_TRACE_LIMIT,
    EventTracer,
    MEM_BUCKETS,
    ObsSession,
    cpi_shares,
    ordered_buckets,
    read_jsonl,
)
from repro.workloads import make_workload


class TestEventTracer:
    def test_ring_keeps_newest_and_counts_drops(self):
        t = EventTracer(limit=3)
        for cycle in range(5):
            t.on_issue(cycle, 0, 0, cycle, "ALU")
        assert len(t) == 3
        assert t.dropped == 2
        assert [r["cycle"] for r in t.records()] == [2, 3, 4]

    def test_issue_and_stall_record_shapes(self):
        t = EventTracer()
        t.bind_kernel("k")
        t.on_issue(7, 1, 5, 42, "GLOBAL_LD")
        t.on_stall(8, 12, BUCKET_L1_PORT)
        issue, stall = t.records()
        assert issue == {"type": "issue", "cycle": 7, "kernel": "k",
                         "sm": 1, "warp": 5, "pc": 42, "uop": "GLOBAL_LD"}
        assert stall == {"type": "stall", "cycle": 8, "kernel": "k",
                         "span": 12, "cause": BUCKET_L1_PORT}

    def test_jsonl_round_trip(self, tmp_path):
        t = EventTracer()
        t.bind_kernel("main")
        t.on_issue(1, 0, 0, 0, "ALU")
        t.on_stall(2, 3, BUCKET_EMPTY)
        path = tmp_path / "trace.jsonl"
        assert t.write_jsonl(str(path)) == 2
        assert read_jsonl(str(path)) == t.records()
        # Each line is standalone JSON (greppable/streamable).
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_write_to_open_handle(self, tmp_path):
        t = EventTracer()
        t.on_issue(1, 0, 0, 0, "ALU")
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            t.write_jsonl(handle)
        assert len(read_jsonl(str(path))) == 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(limit=0)

    def test_session_defaults(self):
        off = ObsSession()
        assert off.tracer is None and not off.per_warp
        on = ObsSession(trace=True)
        assert on.tracer is not None
        assert on.tracer.limit == DEFAULT_TRACE_LIMIT
        assert ObsSession(trace=True, trace_limit=16).tracer.limit == 16


class TestCpiHelpers:
    def test_shares_sum_to_one(self):
        stack = {BUCKET_ISSUED: 75, BUCKET_L1_PORT: 25}
        shares = cpi_shares(stack)
        assert shares[BUCKET_ISSUED] == 0.75
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_stack_is_all_zero(self):
        assert set(cpi_shares({}).values()) == {0.0}

    def test_ordered_buckets_appends_unknown_keys(self):
        order = list(ordered_buckets({BUCKET_ISSUED: 1, "zz_custom": 2}))
        assert order[: len(CPI_BUCKETS)] == list(CPI_BUCKETS)
        assert order[-1] == "zz_custom"

    def test_mem_buckets_are_canonical(self):
        assert set(MEM_BUCKETS) <= set(CPI_BUCKETS)


class TestCpiStackReport:
    def test_rows_render_and_zero_buckets_are_omitted(self):
        stats = SimStats()
        stats.cycles = 100
        stats.cpi_stack.update({BUCKET_ISSUED: 80, BUCKET_L1_PORT: 20})
        text = cpi_stack_report(stats)
        assert BUCKET_ISSUED in text and "80.0%" in text
        assert BUCKET_EMPTY not in text
        assert "WARNING" not in text

    def test_mismatch_warns(self):
        stats = SimStats()
        stats.cycles = 999  # disagrees with the stack sum
        stats.cpi_stack[BUCKET_ISSUED] = 10
        assert "WARNING" in cpi_stack_report(stats)

    def test_empty_run(self):
        assert "no cycles" in cpi_stack_report(SimStats())


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_workload("FIB")

    def test_traced_run_matches_untraced(self, workload):
        """Observability must not perturb timing (Heisenberg check)."""
        plain = run_workload(workload, BASELINE)
        obs = ObsSession(trace=True, per_warp=True)
        traced = run_workload(workload, BASELINE, obs=obs)
        assert traced.stats.cycles == plain.stats.cycles
        assert traced.stats.cpi_stack == plain.stats.cpi_stack
        assert len(obs.tracer.records()) > 0

    def test_trace_cycles_are_monotonic(self, workload):
        obs = ObsSession(trace=True, trace_limit=4096)
        run_workload(workload, CARS, obs=obs)
        cycles = [r["cycle"] for r in obs.tracer.records()]
        assert cycles == sorted(cycles)

    def test_per_warp_stalls_only_when_requested(self, workload):
        assert not run_workload(workload, BASELINE).stats.warp_stalls
        obs = ObsSession(per_warp=True)
        stats = run_workload(workload, BASELINE, obs=obs).stats
        assert stats.warp_stalls
        # Per-warp keys carry the kernel name (stable across merges).
        assert all("/" in key for key in stats.warp_stalls)

    def test_profile_cli_conserves_and_reports(self, capsys, tmp_path):
        trace_path = tmp_path / "out.jsonl"
        rc = main([
            "profile", "--workload", "FIB", "--technique", "cars",
            "--trace", str(trace_path), "--per-warp", "--top-warps", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CPI stack" in out and "total" in out
        assert "spill/fill L1D share" in out
        assert "worst 2 warps" in out
        assert trace_path.exists()
        assert read_jsonl(str(trace_path))
