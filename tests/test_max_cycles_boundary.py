"""Pin the ``max_cycles`` boundary contract (the off-by-one audit).

The per-cycle guard fires when ``cycle > max_cycles`` with blocks
remaining, and the fast-forward clamp stops a skipped stretch at
``max_cycles + 1`` so the guard is reached.  Both paths therefore agree:
a run whose uninterrupted total is ``T`` cycles completes iff
``max_cycles >= T - 1`` — the final iteration of a T-cycle run executes
at ``cycle == T - 1``, so a budget of exactly ``T - 1`` finishes and
``T - 2`` raises.  These tests pin that boundary for both the
fast-forwarding loop and a single-stepped one.
"""

import pytest

from repro.core.gpu import GPU
from repro.core.techniques import BASELINE, CARS_LOW
from repro.resilience import MaxCyclesError, SimulationError

from tests.resilience_util import chained_load_workload, run_once


class _SingleStepGPU(GPU):
    """Idle stretches advance one cycle at a time (legacy per-cycle loop)."""

    __slots__ = ()

    def _next_event_after(self, cycle):
        bound = GPU._next_event_after(self, cycle)
        if bound is None:
            return None
        return cycle + 1


@pytest.fixture(scope="module")
def workload():
    return chained_load_workload()


@pytest.mark.parametrize("technique", [BASELINE, CARS_LOW],
                         ids=["baseline", "cars"])
@pytest.mark.parametrize("gpu_cls", [GPU, _SingleStepGPU],
                         ids=["fast_forward", "single_step"])
class TestBoundary:
    def test_budget_t_minus_1_completes(self, workload, technique, gpu_cls):
        _, free = run_once(workload, technique, gpu_cls=gpu_cls)
        total = free.cycles
        _, exact = run_once(workload, technique, gpu_cls=gpu_cls,
                            max_cycles=total - 1)
        assert exact.to_dict() == free.to_dict()

    def test_budget_t_minus_2_raises(self, workload, technique, gpu_cls):
        _, free = run_once(workload, technique, gpu_cls=gpu_cls)
        total = free.cycles
        with pytest.raises(MaxCyclesError) as info:
            run_once(workload, technique, gpu_cls=gpu_cls,
                     max_cycles=total - 2)
        # Message contract other tests regex against; dump attached.
        assert f"exceeded {total - 2} cycles" in str(info.value)
        assert info.value.diagnostics is not None
        assert info.value.diagnostics.warps
        # The failure cycle is exactly the budget boundary.
        assert info.value.diagnostics.cycle == total - 1

    def test_typed_and_legacy_catchable(self, workload, technique, gpu_cls):
        # MaxCyclesError still satisfies the historical SimulationError
        # contract (tests and callers catch the base class).
        with pytest.raises(SimulationError):
            run_once(workload, technique, gpu_cls=gpu_cls, max_cycles=5)


def test_budget_sweep_agrees_between_loops(workload):
    """Every budget below T behaves identically in both loop flavors."""
    _, free = run_once(workload, BASELINE)
    total = free.cycles
    for budget in (1, total // 3, total - 3, total - 2, total - 1, total):
        outcomes = []
        for gpu_cls in (GPU, _SingleStepGPU):
            try:
                _, stats = run_once(workload, BASELINE, gpu_cls=gpu_cls,
                                    max_cycles=budget)
                outcomes.append(("ok", stats.cycles))
            except MaxCyclesError as exc:
                outcomes.append(("raise", exc.diagnostics.cycle))
        assert outcomes[0] == outcomes[1], f"budget={budget}: {outcomes}"
