"""Inliner (LTO) tests: semantic equivalence and inlining policy."""

import numpy as np
import pytest

from repro.emu import Emulator, GlobalMemory, TraceKind
from repro.frontend import builder as b
from repro.frontend.ast import DslError
from repro.frontend.inliner import inline_program


def _run(prog, kernel="main", threads=32, params=(0,), blocks=1):
    module = b.compile(prog)
    gmem = GlobalMemory()
    trace = Emulator(module, gmem=gmem).launch(kernel, blocks, threads, params)
    return trace, gmem


def _equivalent(make_prog, out_words=32, threads=32):
    """Original and fully-inlined programs must compute identical outputs."""
    _, gmem_orig = _run(make_prog())
    inlined = inline_program(make_prog())
    trace, gmem_inl = _run(inlined)
    a = gmem_orig.read_array(0, out_words)
    c = gmem_inl.read_array(0, out_words)
    assert np.array_equal(a, c), f"{a} != {c}"
    return inlined, trace


class TestSemanticEquivalence:
    def test_simple_chain(self):
        def make():
            prog = b.program()
            b.device(prog, "leaf", ["x"], [b.ret(b.v("x") * 3 + 1)], reg_pressure=3)
            b.device(prog, "mid", ["x"], [
                b.let("t", b.call("leaf", b.v("x"))),
                b.ret(b.v("t") + b.call("leaf", b.v("t") + 2)),
            ])
            b.kernel(prog, "main", ["out"], [
                b.let("i", b.gid()),
                b.store(b.v("out") + b.v("i"), b.call("mid", b.v("i"))),
            ])
            return prog

        inlined, trace = _equivalent(make)
        assert trace.count(TraceKind.CALL) == 0

    def test_calls_inside_control_flow(self):
        def make():
            prog = b.program()
            b.device(prog, "f", ["x"], [b.ret(b.v("x") ^ 0x2A)], reg_pressure=2)
            b.kernel(prog, "main", ["out"], [
                b.let("i", b.gid()),
                b.let("s", b.c(0)),
                b.for_("k", 0, 3, [
                    b.if_((b.v("i") & 1) == 0, [
                        b.let("s", b.v("s") + b.call("f", b.v("k"))),
                    ], [
                        b.let("s", b.v("s") - 1),
                    ]),
                ]),
                b.store(b.v("out") + b.v("i"), b.v("s")),
            ])
            return prog

        inlined, trace = _equivalent(make)
        assert trace.count(TraceKind.CALL) == 0

    def test_call_free_kernel_unchanged(self):
        def make():
            prog = b.program()
            b.kernel(prog, "main", ["out"], [
                b.store(b.v("out") + b.gid(), b.gid() * 2),
            ])
            return prog

        _equivalent(make)


class TestInliningPolicy:
    def test_recursive_functions_not_inlined(self):
        prog = b.program()
        b.device(prog, "fib", ["n"], [
            b.if_(b.v("n") < 2, [b.ret(b.v("n"))]),
            b.ret(b.call("fib", b.v("n") - 1) + b.call("fib", b.v("n") - 2)),
        ], reg_pressure=3)
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out") + b.gid(), b.call("fib", b.c(6))),
        ])
        inlined = inline_program(prog)
        names = {f.name for f in inlined.functions}
        assert "fib" in names  # kept as a runtime call
        trace, gmem = _run(inlined)
        assert trace.count(TraceKind.CALL) > 0
        assert (gmem.read_array(0, 32) == 8).all()

    def test_indirect_targets_not_inlined(self):
        prog = b.program()
        b.device(prog, "fa", ["x"], [b.ret(b.v("x") + 1)], reg_pressure=2)
        b.device(prog, "fb", ["x"], [b.ret(b.v("x") + 2)], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.store(b.v("out") + b.v("i"),
                    b.icall(["fa", "fb"], b.v("i"), b.v("i"))),
        ])
        inlined = inline_program(prog)
        names = {f.name for f in inlined.functions}
        assert {"fa", "fb"} <= names
        trace, gmem = _run(inlined)
        i = np.arange(32)
        assert np.array_equal(gmem.read_array(0, 32), i + 1 + (i & 1))

    def test_early_return_functions_not_inlined(self):
        prog = b.program()
        b.device(prog, "clamp", ["x"], [
            b.if_(b.v("x") > 10, [b.ret(b.c(10))]),
            b.ret(b.v("x")),
        ], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out") + b.gid(), b.call("clamp", b.gid())),
        ])
        inlined = inline_program(prog)
        assert "clamp" in {f.name for f in inlined.functions}
        _, gmem = _run(inlined)
        assert np.array_equal(gmem.read_array(0, 32), np.minimum(np.arange(32), 10))

    def test_unreferenced_device_functions_dropped(self):
        prog = b.program()
        b.device(prog, "leaf", ["x"], [b.ret(b.v("x"))], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.store(b.v("out") + b.gid(), b.call("leaf", b.gid())),
        ])
        inlined = inline_program(prog)
        assert {f.name for f in inlined.functions} == {"main"}

    def test_inlined_binary_is_larger(self):
        prog = b.program()
        b.device(prog, "leaf", ["x"], [
            b.let("t", b.v("x") * 3),
            b.let("u", b.mufu(b.v("t"))),
            b.ret(b.v("t") + b.v("u")),
        ], reg_pressure=2)
        b.kernel(prog, "main", ["out"], [
            b.let("i", b.gid()),
            b.let("a", b.call("leaf", b.v("i"))),
            b.let("bb", b.call("leaf", b.v("a"))),
            b.let("cc", b.call("leaf", b.v("bb"))),
            b.store(b.v("out") + b.v("i"), b.v("cc")),
        ])
        baseline = b.compile(prog)
        inlined_mod = b.compile(inline_program(prog))
        # Three call sites each clone the body: footprint grows.
        assert inlined_mod.code_bytes > 0
        assert (
            inlined_mod.kernel("main").static_size
            > baseline.kernel("main").static_size
        )
